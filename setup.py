"""Shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``wheel`` for PEP 660
editable builds; offline environments that lack it can use the legacy
route this file enables::

    python setup.py develop

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A machine or workload specification is inconsistent.

    Examples: a cache smaller than one line, zero cores per chip, or a
    latency table missing an entry.
    """


class AddressError(ReproError):
    """An address is outside the allocated simulated address space."""


class AllocationError(ReproError):
    """The simulated address-space allocator ran out of room."""


class SimulationError(ReproError):
    """The simulator reached an impossible state.

    This indicates a bug in a scheduler or workload program rather than a
    user mistake — for example a thread releasing a lock it does not hold,
    or a core stepping a thread that is not assigned to it.
    """


class DeadlockError(SimulationError):
    """All cores are idle, no events are pending, and work remains."""


class SchedulerError(ReproError):
    """A scheduler produced an invalid decision (e.g. an unknown core id)."""


class PackingError(ReproError):
    """The cache-packing algorithm was given unsatisfiable input."""


class ProfileError(ReproError):
    """An offline-analysis input is malformed.

    Raised by :mod:`repro.obs.profile` for unparsable JSONL, unknown
    event kinds, field mismatches, or a stream whose schema version is
    newer than the analyzer understands, and by :mod:`repro.obs.stream`
    for invalid profile artifacts or merges of incompatible profiles
    (mismatched sampling parameters).  Messages name the offending file
    and line when the input came from disk, so a bad shard in a fleet
    merge is identifiable.
    """


class FilesystemError(ReproError):
    """An error in the simulated FAT file-system image."""


class LookupError_(FilesystemError):
    """A file name was not found in a directory.

    Named with a trailing underscore to avoid shadowing the builtin
    ``LookupError``; exported as :data:`repro.fs.FileNotFound`.
    """

"""Deterministic fault injection.

A :class:`FaultPlan` is the adversary that keeps the invariant checker
honest: attached via ``Simulator(..., faults=plan)`` it corrupts live
simulator state at a chosen point in the event stream, deterministically
(seeded through :func:`repro.sim.rng.make_rng`, so the same plan breaks
the same thing every run).  The mutation self-test
(:func:`repro.verify.fuzz.run_mutation`, ``tests/test_verify_faults.py``)
injects every kind and asserts its matching invariant trips — a checker
rule with no fault that can trip it is a blind spot.

Fault kinds and the invariant expected to catch each:

=================  =========================================  ===========
kind               corruption                                 caught by
=================  =========================================  ===========
drop_migration     remove an in-flight arrival event          migrations
delay_migration    push an arrival event ~1k cycles late      migrations
evict_line         drop a cached line, directory unaware      residency
corrupt_counter    negate (or inflate) a counter field        counters
stall_core         flip a core's ``in_heap`` flag             heap
=================  =========================================  ===========

A plan publishes :class:`~repro.obs.events.FaultInjected` (when a bus is
listening) *before* mutating, so the flight recorder shows the injected
fault right next to the violation it provokes.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.mem.counters import COUNTER_FIELDS
from repro.obs.events import FaultInjected
from repro.sim.rng import make_rng

FAULT_KINDS: Tuple[str, ...] = (
    "drop_migration", "delay_migration", "evict_line",
    "corrupt_counter", "stall_core",
)

#: The invariant rule each fault kind must trip (mutation self-test).
EXPECTED_RULE = {
    "drop_migration": "migrations",
    "delay_migration": "migrations",
    "evict_line": "residency",
    "corrupt_counter": "counters",
    "stall_core": "heap",
}

#: An injector returns (detail, apply) — the mutation prepared but not
#: yet applied — or None when no suitable target exists right now.
_Prepared = Optional[Tuple[str, Callable[[], None]]]


class FaultPlan:
    """A seeded schedule of state corruptions.

    ``seed``      drives every random choice (which arrival to drop,
                  which line to evict, ...);
    ``at_event``  earliest event count at which to inject; if the fault
                  is not applicable there (say, no migration in flight),
                  the plan retries on every following event;
    ``kinds``     candidate fault kinds (default: all); one is picked by
                  the seeded RNG per injection;
    ``count``     how many faults to inject (default 1).
    """

    def __init__(self, seed: int = 0, at_event: int = 200,
                 kinds: Optional[Tuple[str, ...]] = None,
                 count: int = 1) -> None:
        selected = tuple(kinds) if kinds else FAULT_KINDS
        unknown = set(selected) - set(FAULT_KINDS)
        if unknown:
            raise ConfigError(
                f"unknown fault kinds {sorted(unknown)}; "
                f"choose from {list(FAULT_KINDS)}")
        if at_event < 1 or count < 0:
            raise ConfigError("need at_event >= 1 and count >= 0")
        self.seed = seed
        self.at_event = at_event
        self.kinds = selected
        self.count = count
        #: (kind, ts, detail) per fault actually applied.
        self.injected: List[Tuple[str, int, str]] = []
        self._rng = None
        self._events = 0

    @classmethod
    def single(cls, kind: str, at_event: int = 200,
               seed: int = 0) -> "FaultPlan":
        """One fault of exactly ``kind`` (mutation self-tests)."""
        return cls(seed=seed, at_event=at_event, kinds=(kind,))

    # ------------------------------------------------------------------
    # engine attachment
    # ------------------------------------------------------------------

    def bind(self, sim: Any) -> None:
        """Attach to a simulator (called from ``Simulator.__init__``)."""
        self._rng = make_rng(self.seed, "faults")
        self._events = 0
        self.injected = []

    def after_event(self, sim: Any, now: int) -> None:
        """Called by the engine after every processed event."""
        if len(self.injected) >= self.count:
            return
        self._events += 1
        if self._events < self.at_event:
            return
        rng = self._rng
        kind = (self.kinds[0] if len(self.kinds) == 1
                else self.kinds[rng.randrange(len(self.kinds))])
        prepared: _Prepared = getattr(self, "_inject_" + kind)(sim, rng)
        if prepared is None:
            return  # nothing to break yet; retry on the next event
        detail, apply = prepared
        bus = sim._bus
        if bus is not None and bus.wants(FaultInjected):
            bus.publish(FaultInjected(now, kind, detail))
        apply()
        self.injected.append((kind, now, detail))

    # ------------------------------------------------------------------
    # injectors
    # ------------------------------------------------------------------

    def _inject_drop_migration(self, sim: Any, rng: Any) -> _Prepared:
        from repro.sim.engine import _KIND_ARRIVAL
        heap = sim._heap
        arrivals = [entry for entry in heap if entry[2] == _KIND_ARRIVAL]
        if not arrivals:
            return None
        entry = arrivals[rng.randrange(len(arrivals))]
        thread = entry[3][0]
        detail = (f"dropped in-flight arrival of {thread.name} "
                  f"(was due t={entry[0]})")

        def apply() -> None:
            heap.remove(entry)
            heapq.heapify(heap)

        return detail, apply

    def _inject_delay_migration(self, sim: Any, rng: Any) -> _Prepared:
        from repro.sim.engine import _KIND_ARRIVAL
        heap = sim._heap
        arrivals = [entry for entry in heap if entry[2] == _KIND_ARRIVAL]
        if not arrivals:
            return None
        entry = arrivals[rng.randrange(len(arrivals))]
        delay = 1000 + rng.randrange(1000)
        thread = entry[3][0]
        detail = (f"delayed arrival of {thread.name} by {delay} cycles "
                  f"(t={entry[0]} -> {entry[0] + delay}) without telling "
                  f"the engine")

        def apply() -> None:
            heap.remove(entry)
            heap.append((entry[0] + delay,) + entry[1:])
            heapq.heapify(heap)

        return detail, apply

    def _inject_evict_line(self, sim: Any, rng: Any) -> _Prepared:
        memory = sim.memory
        caches = [cache for cache
                  in memory.l1s + memory.l2s + memory.l3s if len(cache)]
        if not caches:
            return None
        cache = caches[rng.randrange(len(caches))]
        lines = sorted(cache.lines())
        line = lines[rng.randrange(len(lines))]
        detail = (f"evicted line {line} from {cache.cache_id} behind the "
                  f"sharing directory's back")

        def apply() -> None:
            cache.remove(line)

        return detail, apply

    def _inject_corrupt_counter(self, sim: Any, rng: Any) -> _Prepared:
        banks = sim.memory.counters
        bank = banks[rng.randrange(len(banks))]
        nonzero = [field for field in COUNTER_FIELDS
                   if getattr(bank, field) > 0]
        if nonzero:
            field = nonzero[rng.randrange(len(nonzero))]
            value = getattr(bank, field)
            detail = (f"negated core {bank.core_id} counter "
                      f"{field} ({value} -> {-(value + 1)})")

            def apply() -> None:
                setattr(bank, field, -(value + 1))
        else:
            detail = f"inflated core {bank.core_id} ops_completed by 1000"

            def apply() -> None:
                bank.ops_completed += 1000

        return detail, apply

    def _inject_stall_core(self, sim: Any, rng: Any) -> _Prepared:
        cores = sim.machine.cores
        core = cores[rng.randrange(len(cores))]
        detail = (f"flipped core {core.core_id} in_heap flag "
                  f"({core.in_heap} -> {not core.in_heap})")

        def apply() -> None:
            core.in_heap = not core.in_heap

        return detail, apply

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, at_event={self.at_event}, "
                f"kinds={list(self.kinds)}, injected={len(self.injected)})")

"""Command-line front end for the verification layer.

Subcommands::

    python -m repro.verify fuzz --seeds 25
        Generate and check 25 random cases (invariants on, same-seed
        determinism, three-way differential: generic memory path vs
        fast path vs batched engine kernel).  On failure, shrink to a
        minimal case and print a one-command repro; exit 1.

    python -m repro.verify fuzz --seeds 5 --inject evict_line
        Same, but inject a deterministic fault into each case and
        *expect* the invariant checker to catch it; the first detection
        is shrunk and printed as a repro command, exit 2.  (Used by CI
        to prove the repro workflow end to end.)

    python -m repro.verify run --case '<json>' [--inject KIND]
        Replay one exact case (the command the fuzzer prints).

    python -m repro.verify selftest
        Mutation self-test: inject every fault kind and assert the
        checker trips its matching invariant — no blind spots.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError, SimulationError
from repro.verify.faults import EXPECTED_RULE, FAULT_KINDS
from repro.verify.fuzz import (FuzzCase, check_case, generate_case,
                               repro_command, run_mutation, shrink)


def _describe(case: FuzzCase) -> str:
    workload = (f"scenario:{case.scenario}" if case.scenario
                else f"{case.n_objects}obj/{case.object_bytes}B")
    return (f"{case.n_chips}x{case.cores_per_chip} {case.scheduler} "
            f"{workload} horizon={case.horizon}")


def cmd_fuzz(args: argparse.Namespace) -> int:
    checked = 0
    for seed in range(args.seed_start, args.seed_start + args.seeds):
        case = generate_case(seed)
        if args.inject:
            # Injection needs a migration-generating scheduler so
            # drop/delay faults always find a target.
            case = case.replace(scheduler="coretime")
        failure = check_case(case, inject=args.inject)
        if failure is None:
            checked += 1
            if args.verbose:
                print(f"seed {seed}: ok ({_describe(case)})")
            continue
        if failure.kind == "not_applicable":
            if args.verbose:
                print(f"seed {seed}: skipped ({failure.detail})")
            continue
        if args.inject and failure.kind == "invariant":
            print(f"seed {seed}: injected fault {args.inject!r} detected "
                  f"by invariant {failure.rule!r}")
            minimal = shrink(case, lambda c: _still_detects(c, args.inject,
                                                            failure.rule))
            print(f"minimal case: {_describe(minimal)}")
            print(f"minimal repro: {repro_command(minimal, args.inject)}")
            return 2
        print(f"seed {seed}: FAILED ({_describe(case)})")
        print(f"  {failure}")
        minimal = shrink(case, lambda c: _still_fails(c, failure.kind))
        print(f"minimal case: {_describe(minimal)}")
        print(f"minimal repro: {repro_command(minimal)}")
        return 1
    print(f"fuzz: {checked}/{args.seeds} seeds clean "
          f"(start={args.seed_start})")
    return 0


def _still_fails(case: FuzzCase, kind: str) -> bool:
    failure = check_case(case)
    return failure is not None and failure.kind == kind


def _still_detects(case: FuzzCase, inject: str, rule: str) -> bool:
    failure = check_case(case, inject=inject)
    return (failure is not None and failure.kind == "invariant"
            and failure.rule == rule)


def cmd_run(args: argparse.Namespace) -> int:
    case = FuzzCase.from_json(args.case)
    print(f"case: {_describe(case)}")
    failure = check_case(case, inject=args.inject)
    if failure is None:
        print("result: clean")
        return 0
    if failure.kind == "not_applicable":
        print(f"result: {failure.detail}")
        return 0
    print(f"result: {failure}")
    return 1


def cmd_selftest(args: argparse.Namespace) -> int:
    """Every fault kind must trip its matching invariant."""
    missed = []
    for kind in FAULT_KINDS:
        expected = EXPECTED_RULE[kind]
        try:
            violation = run_mutation(kind)
        except SimulationError as exc:
            print(f"  {kind:<16} MISSED   {exc}")
            missed.append(kind)
            continue
        status = "ok" if violation.rule == expected else "WRONG RULE"
        print(f"  {kind:<16} {status:<8} rule={violation.rule} "
              f"(expected {expected}) t={violation.ts}")
        if violation.rule != expected:
            missed.append(kind)
    if missed:
        print(f"selftest: {len(missed)} blind spot(s): {missed}")
        return 1
    print(f"selftest: all {len(FAULT_KINDS)} fault kinds detected")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="invariant checking, fault injection and fuzzing")
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="fuzz random cases")
    fuzz.add_argument("--seeds", type=int, default=25,
                      help="number of seeds to check (default 25)")
    fuzz.add_argument("--seed-start", type=int, default=0,
                      help="first seed (default 0)")
    fuzz.add_argument("--inject", choices=FAULT_KINDS, default=None,
                      help="inject a fault and expect detection")
    fuzz.add_argument("-v", "--verbose", action="store_true")
    fuzz.set_defaults(func=cmd_fuzz)

    run = sub.add_parser("run", help="replay one exact case")
    run.add_argument("--case", required=True,
                     help="FuzzCase JSON (printed by a fuzz failure)")
    run.add_argument("--inject", choices=FAULT_KINDS, default=None)
    run.set_defaults(func=cmd_run)

    selftest = sub.add_parser(
        "selftest", help="mutation self-test of the invariant checker")
    selftest.set_defaults(func=cmd_selftest)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

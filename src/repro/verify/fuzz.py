"""Property-based simulation fuzzing.

``python -m repro.verify fuzz --seeds N`` generates N random
topology × workload × scheduler combinations and checks three
properties on each, with the invariant checker attached throughout:

* **no violations or crashes** — a clean run stays clean;
* **same-seed determinism** — two identical runs produce byte-identical
  JSONL event streams;
* **three-way differential** — the hand-flattened memory fast path
  (:meth:`~repro.mem.system.MemorySystem._load_line_fast`), the generic
  path, and the batched engine kernel
  (:func:`repro.sim.batch.run_batched`, run without a checker since the
  checker forces the generic loop) all produce byte-identical event
  streams and identical machine counters.

On failure the case is greedily shrunk — fewer objects, smaller caches,
shorter horizon, simpler scheduler — while the failure reproduces, and
the CLI prints a single ``python -m repro.verify run --case ...``
command that replays the minimal case.

Every case is a :class:`FuzzCase`: a flat, JSON-round-trippable record
of knobs over :meth:`repro.cpu.topology.MachineSpec.tiny` (the same
factory the test suite's ``tiny_spec`` uses) and
:class:`~repro.workloads.synthetic.ObjectOpsSpec`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.core.coretime import CoreTimeConfig, CoreTimeScheduler
from repro.cpu.machine import Machine
from repro.cpu.topology import MachineSpec
from repro.errors import ConfigError, SimulationError
from repro.mem.cache import LRUCache
from repro.mem.counters import aggregate
from repro.obs import Observability, events_to_jsonl
from repro.sched import registry
from repro.sched.timeshare import TimeSharingScheduler
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.verify.faults import FaultPlan
from repro.verify.invariants import InvariantChecker, InvariantViolation
from repro.workloads import scenarios as scenario_catalog
from repro.workloads.scenarios import ScenarioSpec
from repro.workloads.synthetic import ObjectOpsSpec, ObjectOpsWorkload

#: Historical scheduler spellings still accepted in saved repro commands.
_SCHEDULER_ALIASES = {"work_stealing": "work-stealing"}


def scheduler_axis() -> Tuple[str, ...]:
    """Scheduler names the case generator draws from: every registry
    entry marked fuzzable (config variants of an already-fuzzed
    scheduler opt out).  Registering a scheduler grows fuzz coverage
    automatically."""
    return registry.fuzzable_names()


def scenario_axis() -> Tuple[str, ...]:
    """Scenario names the case generator draws from (plus ``""`` for
    the raw ObjectOpsSpec knobs).  Registering a scenario in
    :mod:`repro.workloads.scenarios` grows fuzz coverage automatically."""
    return scenario_catalog.fuzzable_names()


class _GenericLRU(LRUCache):
    """Behaviour-identical subclass that defeats the memory system's
    fast path (its detection is an exact ``type() is LRUCache`` test),
    forcing every access through the generic code."""


def _generic_cache_factory(capacity: int, cache_id: str) -> LRUCache:
    return _GenericLRU(capacity, cache_id)


# ---------------------------------------------------------------------------
# cases
# ---------------------------------------------------------------------------

@dataclass
class FuzzCase:
    """One fuzzed configuration (flat and JSON-serialisable)."""

    seed: int = 0
    # -- topology (overrides on MachineSpec.tiny) ----------------------
    n_chips: int = 2
    cores_per_chip: int = 2
    l1_bytes: int = 512
    l2_bytes: int = 2048
    l3_bytes: int = 8192
    migration_cost: int = 200
    poll_interval: int = 0
    hetero_cores: bool = False
    # -- scheduler -----------------------------------------------------
    scheduler: str = "coretime"
    packing: str = "first_fit"
    return_home: bool = True
    rebalance: bool = True
    monitor_interval: int = 30_000
    #: Service-cycle quantum applied to time-sharing schedulers (rr,
    #: cfs, sjf, mlfq); ignored by the rest.
    quantum: int = 2500
    # -- workload (ObjectOpsSpec) --------------------------------------
    n_objects: int = 4
    object_bytes: int = 512
    think_cycles: int = 50
    write_fraction: float = 0.0
    pair_probability: float = 0.0
    popularity: str = "uniform"
    with_locks: bool = True
    #: Threads per core (>1 fills run queues, exercising preemption).
    threads_per_core: int = 1
    # -- run -----------------------------------------------------------
    horizon: int = 80_000
    #: Registered scenario name; "" runs the raw ObjectOpsSpec knobs
    #: above.  Last field with a default so stored cases from before
    #: the scenario axis load unchanged (missing -> "").
    scenario: str = ""

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        data = json.loads(text)
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown FuzzCase fields {sorted(unknown)}")
        return cls(**data)

    def replace(self, **changes: Any) -> "FuzzCase":
        return dataclasses.replace(self, **changes)


def generate_case(seed: int) -> FuzzCase:
    """Deterministically derive one random case from ``seed``."""
    # Same root->case derivation repro-sweep and bench sweeps use.
    rng = random.Random(derive_seed(seed, "fuzz-case"))
    n_chips, cores_per_chip = rng.choice(
        ((1, 2), (1, 4), (2, 1), (2, 2), (2, 4), (4, 2)))
    scheduler = rng.choice(scheduler_axis())
    case = FuzzCase(
        seed=seed,
        n_chips=n_chips,
        cores_per_chip=cores_per_chip,
        l1_bytes=rng.choice((256, 512)),
        l2_bytes=rng.choice((1024, 2048)),
        l3_bytes=rng.choice((4096, 8192)),
        migration_cost=rng.choice((100, 200, 500)),
        poll_interval=rng.choice((0, 0, 250)),
        hetero_cores=rng.random() < 0.2,
        scheduler=scheduler,
        packing=rng.choice(("first_fit", "balanced", "hash")),
        return_home=rng.random() < 0.8,
        rebalance=rng.random() < 0.8,
        monitor_interval=rng.choice((20_000, 30_000, 50_000)),
        quantum=rng.choice((1_000, 2_500, 5_000)),
        n_objects=rng.choice((2, 4, 8)),
        object_bytes=rng.choice((256, 512, 1024)),
        think_cycles=rng.choice((0, 50, 100)),
        write_fraction=rng.choice((0.0, 0.2, 0.5)),
        pair_probability=rng.choice((0.0, 0.0, 0.3)),
        popularity=rng.choice(("uniform", "zipf")),
        with_locks=rng.random() < 0.7,
        threads_per_core=rng.choice((1, 1, 2)),
        horizon=rng.choice((60_000, 100_000, 150_000)),
    )
    # The scenario axis is drawn *after* the full case so every draw
    # above — and therefore every stored case and coverage pin from
    # before the axis existed — stays byte-identical.  Half the cases
    # keep the raw knobs; the rest run a registered scenario.
    names = scenario_axis()
    scenario = rng.choice(("",) * len(names) + names)
    return case.replace(scenario=scenario)


# ---------------------------------------------------------------------------
# building and running a case
# ---------------------------------------------------------------------------

def build_machine(case: FuzzCase,
                  cache_factory: Optional[Callable] = None) -> Machine:
    speeds = None
    if case.hetero_cores:
        n_cores = case.n_chips * case.cores_per_chip
        speeds = tuple(2.0 if core % 2 else 1.0 for core in range(n_cores))
    spec = MachineSpec.tiny(
        n_chips=case.n_chips, cores_per_chip=case.cores_per_chip,
        l1_bytes=case.l1_bytes, l2_bytes=case.l2_bytes,
        l3_bytes=case.l3_bytes, migration_cost=case.migration_cost,
        poll_interval=case.poll_interval, core_speeds=speeds)
    if cache_factory is None:
        return Machine(spec)
    return Machine(spec, cache_factory=cache_factory)


def build_scheduler(case: FuzzCase):
    name = _SCHEDULER_ALIASES.get(case.scheduler, case.scheduler)
    if name == "coretime":
        # The fuzzer owns CoreTime's config knobs (the registry factory
        # carries benchmark defaults instead).
        return CoreTimeScheduler(CoreTimeConfig(
            monitor_interval=case.monitor_interval,
            packing=case.packing,
            return_home=case.return_home,
            rebalance=case.rebalance))
    scheduler = registry.create(name)     # raises ConfigError if unknown
    if isinstance(scheduler, TimeSharingScheduler):
        scheduler.quantum = case.quantum
    return scheduler


def build_workload(machine: Machine, case: FuzzCase) -> ObjectOpsWorkload:
    """The case's workload: a registered scenario when ``case.scenario``
    names one, the raw ObjectOpsSpec knobs otherwise."""
    if case.scenario:
        return scenario_catalog.build(
            machine, ScenarioSpec(name=case.scenario, seed=case.seed))
    return ObjectOpsWorkload(machine, workload_spec(case))


def workload_spec(case: FuzzCase) -> ObjectOpsSpec:
    return ObjectOpsSpec(
        n_objects=case.n_objects, object_bytes=case.object_bytes,
        think_cycles=case.think_cycles,
        write_fraction=case.write_fraction,
        pair_probability=case.pair_probability,
        popularity=case.popularity, with_locks=case.with_locks,
        annotated=True, seed=case.seed,
        threads_per_core=case.threads_per_core)


def run_case(case: FuzzCase, generic: bool = False,
             checker: Optional[InvariantChecker] = None,
             faults: Optional[FaultPlan] = None,
             kernel: Optional[str] = None) -> Tuple[str, dict, Any]:
    """One full simulation of ``case``.

    Returns ``(jsonl_stream, aggregated_counters, RunResult)``; raises
    whatever the simulator raises (crash dumps are routed to
    ``os.devnull`` — the caller owns the reporting).  ``kernel``
    selects the engine run loop (None = the engine default).
    """
    factory = _generic_cache_factory if generic else None
    machine = build_machine(case, cache_factory=factory)
    scheduler = build_scheduler(case)
    obs = Observability(events=True, metrics=False, flight=256,
                        capture_memory=True, flight_path=os.devnull)
    sim = Simulator(machine, scheduler, obs=obs,
                    checker=checker, faults=faults, kernel=kernel)
    workload = build_workload(machine, case)
    workload.spawn_all(sim)
    result = sim.run(until=case.horizon)
    stream = events_to_jsonl(obs.events())
    return stream, aggregate(machine.memory.counters), result


# ---------------------------------------------------------------------------
# the property checks
# ---------------------------------------------------------------------------

@dataclass
class FuzzFailure:
    """Why a case failed; ``kind`` is one of ``invariant`` / ``crash`` /
    ``determinism`` / ``differential`` / ``not_applicable``."""

    kind: str
    detail: str
    rule: Optional[str] = None

    def __str__(self) -> str:
        tag = f"{self.kind}:{self.rule}" if self.rule else self.kind
        return f"[{tag}] {self.detail}"


def _first_diff(a: str, b: str) -> str:
    for index, (line_a, line_b) in enumerate(zip(a.splitlines(),
                                                 b.splitlines())):
        if line_a != line_b:
            return (f"first divergence at line {index}: "
                    f"{line_a[:120]!r} != {line_b[:120]!r}")
    return (f"streams have different lengths "
            f"({len(a.splitlines())} vs {len(b.splitlines())} lines)")


def check_case(case: FuzzCase,
               inject: Optional[str] = None) -> Optional[FuzzFailure]:
    """Run every property on ``case``; None means it passed.

    With ``inject`` set, a fault of that kind is injected and the
    *expected* outcome is an ``invariant`` failure (returned so the
    caller can shrink and print a repro); a run that survives the
    injection is reported as ``not_applicable`` (the fault never found a
    target) — the checker-blind-spot case is covered by the mutation
    self-test, which controls applicability.
    """
    faults = (FaultPlan.single(inject, at_event=100, seed=case.seed)
              if inject else None)
    # interval=1 under injection: the checker must observe the broken
    # state before the simulator heals it (e.g. reloading an evicted
    # line re-adds the directory entry the fault orphaned).
    interval = 1 if inject else 128
    try:
        stream_a, counters_a, _ = run_case(
            case, checker=InvariantChecker(interval=interval),
            faults=faults)
    except InvariantViolation as exc:
        return FuzzFailure("invariant", str(exc), rule=exc.rule)
    except SimulationError as exc:
        return FuzzFailure("crash", f"{type(exc).__name__}: {exc}")
    if inject is not None:
        return FuzzFailure(
            "not_applicable",
            f"fault {inject!r} "
            + ("was injected but tripped nothing"
               if faults.injected else "never found a target"))
    try:
        stream_b, _, _ = run_case(
            case, checker=InvariantChecker(interval=interval))
    except SimulationError as exc:
        return FuzzFailure("crash",
                           f"rerun: {type(exc).__name__}: {exc}")
    if stream_a != stream_b:
        return FuzzFailure("determinism",
                           "same-seed reruns diverged — "
                           + _first_diff(stream_a, stream_b))
    try:
        stream_c, counters_c, _ = run_case(
            case, generic=True, checker=InvariantChecker(interval=interval))
    except SimulationError as exc:
        return FuzzFailure("crash",
                           f"generic path: {type(exc).__name__}: {exc}")
    if stream_a != stream_c:
        return FuzzFailure("differential",
                           "fast vs generic event streams diverge — "
                           + _first_diff(stream_a, stream_c))
    if counters_a != counters_c:
        diffs = {name: (counters_a[name], counters_c[name])
                 for name in counters_a
                 if counters_a[name] != counters_c.get(name)}
        return FuzzFailure("differential",
                           f"fast vs generic counters diverge: {diffs}")
    # Third leg: the batched kernel, run raw (no checker — the checker
    # inspects the tuple heap, so its presence makes Simulator.run fall
    # back to the generic loop and the leg would test nothing).
    try:
        stream_d, counters_d, _ = run_case(case, kernel="batched")
    except SimulationError as exc:
        return FuzzFailure("crash",
                           f"batched kernel: {type(exc).__name__}: {exc}")
    if stream_a != stream_d:
        return FuzzFailure("differential",
                           "batched vs generic event streams diverge — "
                           + _first_diff(stream_a, stream_d))
    if counters_a != counters_d:
        diffs = {name: (counters_a[name], counters_d[name])
                 for name in counters_a
                 if counters_a[name] != counters_d.get(name)}
        return FuzzFailure("differential",
                           f"batched vs generic counters diverge: {diffs}")
    return None


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

def _shrink_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Progressively simpler variants, most aggressive first."""
    if case.horizon > 20_000:
        yield case.replace(horizon=max(20_000, case.horizon // 2))
    if case.scenario:
        # Dropping the scenario falls back to the raw workload knobs —
        # a much simpler case when the failure isn't scenario-specific.
        yield case.replace(scenario="")
    if case.n_objects > 1:
        yield case.replace(n_objects=max(1, case.n_objects // 2))
    if case.n_chips > 1:
        yield case.replace(n_chips=case.n_chips // 2)
    if case.cores_per_chip > 1:
        yield case.replace(cores_per_chip=case.cores_per_chip // 2)
    if case.object_bytes > 64:
        yield case.replace(object_bytes=max(64, case.object_bytes // 2))
    if case.scheduler != "thread":
        yield case.replace(scheduler="thread")
    if case.threads_per_core > 1:
        yield case.replace(threads_per_core=1)
    if case.write_fraction:
        yield case.replace(write_fraction=0.0)
    if case.pair_probability:
        yield case.replace(pair_probability=0.0)
    if case.with_locks:
        yield case.replace(with_locks=False)
    if case.think_cycles:
        yield case.replace(think_cycles=0)
    if case.popularity != "uniform":
        yield case.replace(popularity="uniform")
    if case.hetero_cores:
        yield case.replace(hetero_cores=False)
    if case.poll_interval:
        yield case.replace(poll_interval=0)
    if case.scheduler == "coretime":
        if case.rebalance:
            yield case.replace(rebalance=False)
        if case.packing != "first_fit":
            yield case.replace(packing="first_fit")


def shrink(case: FuzzCase, still_fails: Callable[[FuzzCase], bool],
           max_attempts: int = 48) -> FuzzCase:
    """Greedy shrink: adopt any simpler variant that still fails."""
    current = case
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
            if attempts >= max_attempts:
                break
    return current


def repro_command(case: FuzzCase, inject: Optional[str] = None) -> str:
    """The one-liner that replays ``case`` from a fresh checkout."""
    command = ("PYTHONPATH=src python -m repro.verify run "
               f"--case '{case.to_json()}'")
    if inject:
        command += f" --inject {inject}"
    return command


# ---------------------------------------------------------------------------
# mutation self-test
# ---------------------------------------------------------------------------

def run_mutation(kind: str, seed: int = 11) -> InvariantViolation:
    """Inject one fault of ``kind`` into a migration-heavy simulation
    and return the :class:`InvariantViolation` it provoked.

    Raises :class:`~repro.errors.SimulationError` if the fault passed
    silently — the checker has a blind spot — or never applied.  Used by
    ``python -m repro.verify selftest`` and
    ``tests/test_verify_faults.py``; the expected rule per kind is
    :data:`repro.verify.faults.EXPECTED_RULE`.
    """
    machine = Machine(MachineSpec.tiny())
    scheduler = CoreTimeScheduler(CoreTimeConfig(monitor_interval=25_000))
    obs = Observability(events=True, metrics=False, flight=128,
                        flight_path=os.devnull)
    checker = InvariantChecker(interval=1)
    faults = FaultPlan.single(kind, at_event=60, seed=seed)
    sim = Simulator(machine, scheduler, obs=obs,
                    checker=checker, faults=faults)
    workload = ObjectOpsWorkload(machine, ObjectOpsSpec(
        n_objects=4, object_bytes=512, think_cycles=0, seed=seed))
    # Pre-assign objects round-robin so ct_start redirects cross-core
    # and migrations are continuously in flight (drop/delay targets).
    for index, obj in enumerate(workload.objects):
        scheduler.table.assign(obj, index % machine.n_cores)
    workload.spawn_all(sim)
    try:
        sim.run(until=400_000)
    except InvariantViolation as exc:
        return exc
    raise SimulationError(
        f"fault {kind!r} "
        + (f"({faults.injected[0][2]}) tripped no invariant — the "
           f"checker has a blind spot"
           if faults.injected else "never found a target to corrupt"))

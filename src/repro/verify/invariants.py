"""Machine-wide runtime invariants.

The simulator's figures are only as trustworthy as its internal
consistency: the fast memory path mutates the same caches the directory
describes, the engine heap is the only source of cross-core ordering,
and CoreTime's decisions ride on counters nobody re-checks.
:class:`InvariantChecker` is the opt-in safety net — attached via
``Simulator(..., checker=InvariantChecker())`` it re-derives the
machine-wide invariants from scratch every ``interval`` events and
raises a structured :class:`InvariantViolation` (carrying a bounded
flight-recorder dump) the moment one fails.

Rules (each individually selectable via the ``rules`` argument):

``cache_capacity``   no cache holds more lines than its capacity;
``residency``        sharing directory and actual cache contents agree,
                     and no line sits in both levels of a private
                     hierarchy (levels are exclusive);
``object_table``     object-table entries point at live cores, carry no
                     duplicate replicas, and match each object's own
                     ``assigned_cores`` view;
``threads``          thread state machine legality — READY threads sit
                     in exactly one runqueue, RUNNING threads are some
                     core's ``current``, MIGRATING/DONE threads are in
                     neither place;
``migrations``       every MIGRATING thread has exactly one in-flight
                     arrival event, scheduled at the time the engine
                     promised (``thread.arrive_at``), cross-checked
                     against the event bus when one is attached;
``heap``             event times never run backwards, and each core's
                     ``in_heap`` flag agrees with the step events
                     actually queued;
``counters``         counter banks are non-negative and monotonic, and
                     per-core deltas conserve the machine totals
                     (ops, migrations out/in vs. threads in flight);
``op_accounting``    per-operation attribution deltas published on
                     ``OperationFinished`` are non-negative (bus-fed;
                     inert without observability).

The checker is deliberately slow-but-thorough (O(cached lines) per
check); it is a verification tool, not a production monitor.  Disabled —
the default — it costs the engine a single ``is None`` test per event.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, SimulationError
from repro.mem.counters import COUNTER_FIELDS, aggregate
from repro.obs.events import (InvariantViolated, MigrationStarted,
                              OperationFinished, ThreadArrived)
from repro.threads.thread import ThreadState

#: Every rule name, in checking order.  ``op_accounting`` is event-bus
#: driven rather than periodic, but selected through the same list.
DEFAULT_RULES: Tuple[str, ...] = (
    "cache_capacity", "residency", "object_table", "threads",
    "migrations", "heap", "counters", "op_accounting",
)


class InvariantViolation(SimulationError):
    """A machine-wide invariant failed.

    Carries the failed ``rule``, a human-readable ``detail``, the
    simulated time ``ts``, and — when a flight recorder was attached —
    the last ``max_flight`` events as primitive dicts
    (``flight_events``) plus a rendered ``flight_text``, so the evidence
    survives the simulator that produced it.
    """

    def __init__(self, rule: str, detail: str, ts: int,
                 flight: Optional[Any] = None,
                 max_flight: int = 64) -> None:
        self.rule = rule
        self.detail = detail
        self.ts = ts
        self.flight_events: List[dict] = (
            flight.tail(max_flight) if flight is not None else [])
        self.flight_text = self._render_flight()
        super().__init__(f"invariant '{rule}' violated at t={ts}: {detail}")

    def _render_flight(self) -> str:
        if not self.flight_events:
            return ""
        lines = [f"--- last {len(self.flight_events)} recorded events ---"]
        for data in self.flight_events:
            data = dict(data)
            ts = data.pop("ts", "?")
            kind = data.pop("kind", "?")
            rest = " ".join(f"{key}={value}" for key, value in data.items())
            lines.append(f"[{ts:>10}] {kind:<10} {rest}")
        return "\n".join(lines)


class InvariantChecker:
    """Periodic whole-machine consistency checker.

    ``interval``    events between full checks (cheap per-event work —
                    time monotonicity — always runs);
    ``rules``       iterable of rule names from :data:`DEFAULT_RULES`
                    (default: all of them);
    ``max_flight``  flight-recorder events embedded in a violation.
    """

    def __init__(self, interval: int = 512,
                 rules: Optional[Iterable[str]] = None,
                 max_flight: int = 64) -> None:
        if interval < 1:
            raise ConfigError("checker interval must be >= 1 event")
        self.interval = interval
        selected = tuple(rules) if rules is not None else DEFAULT_RULES
        unknown = set(selected) - set(DEFAULT_RULES)
        if unknown:
            raise ConfigError(
                f"unknown invariant rules {sorted(unknown)}; "
                f"choose from {list(DEFAULT_RULES)}")
        self.rules = selected
        self.max_flight = max_flight
        #: Full checks performed / violations raised (test hooks).
        self.checks = 0
        self.violations = 0
        self.sim: Optional[Any] = None
        self._bus = None
        self._events = 0
        self._last_ts = 0
        #: thread name -> promised arrival time (event-bus fed).
        self._inflight: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # engine attachment
    # ------------------------------------------------------------------

    def bind(self, sim: Any) -> None:
        """Attach to a simulator (called from ``Simulator.__init__``)."""
        self.sim = sim
        self.machine = sim.machine
        self.memory = sim.memory
        self._events = 0
        self._last_ts = 0
        self._inflight.clear()
        # Baselines: the checker verifies *deltas*, so an invariant-laden
        # machine reused across simulators starts clean each time.
        self._base_values = [bank.snapshot().values
                             for bank in sim.memory.counters]
        self._base_agg = {
            field: sum(values[index] for values in self._base_values)
            for index, field in enumerate(COUNTER_FIELDS)}
        self._base_total_ops = sim.total_ops
        self._base_total_migrations = sim.total_migrations
        self._prev_agg: Optional[Dict[str, int]] = None
        self._bus = sim.obs.bus if sim.obs is not None else None
        if self._bus is not None:
            self._bus.subscribe(self._on_migration, MigrationStarted)
            self._bus.subscribe(self._on_arrival, ThreadArrived)
            if "op_accounting" in self.rules:
                self._bus.subscribe(self._on_op_finished, OperationFinished)

    # ------------------------------------------------------------------
    # bus handlers (independent record of promised arrivals)
    # ------------------------------------------------------------------

    def _on_migration(self, event: MigrationStarted) -> None:
        self._inflight[event.thread] = event.arrive_ts

    def _on_arrival(self, event: ThreadArrived) -> None:
        self._inflight.pop(event.thread, None)

    def _on_op_finished(self, event: OperationFinished) -> None:
        for name in ("cycles", "dram", "remote", "mem_stall", "spin"):
            value = getattr(event, name)
            if value is not None and value < 0:
                self._fail(
                    "op_accounting",
                    f"operation on {event.obj} (core {event.core}): "
                    f"{name} delta is negative ({value})", event.ts)

    # ------------------------------------------------------------------
    # the per-event hook
    # ------------------------------------------------------------------

    def after_event(self, now: int) -> None:
        """Called by the engine after every processed event."""
        self._events += 1
        if now < self._last_ts:
            self._fail("heap",
                       f"event time ran backwards: {now} after "
                       f"{self._last_ts}", now)
        self._last_ts = now
        if self._events % self.interval == 0:
            self.check(now)

    def check(self, now: int) -> None:
        """Run every selected periodic rule immediately."""
        self.checks += 1
        for rule in self.rules:
            runner = self._RUNNERS.get(rule)
            if runner is not None:
                runner(self, now)

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------

    def _check_cache_capacity(self, now: int) -> None:
        memory = self.memory
        for cache in memory.l1s + memory.l2s + memory.l3s:
            if len(cache) > cache.capacity:
                self._fail("cache_capacity",
                           f"{cache.cache_id} holds {len(cache)} lines, "
                           f"capacity {cache.capacity}", now)

    def _check_residency(self, now: int) -> None:
        memory = self.memory
        directory = memory.directory
        seen: Dict[int, set] = {}
        for core_id in range(memory.spec.n_cores):
            l1_lines = set(memory.l1s[core_id].lines())
            l2_lines = set(memory.l2s[core_id].lines())
            both = l1_lines & l2_lines
            if both:
                self._fail("residency",
                           f"core {core_id}: lines {sorted(both)[:4]} in "
                           f"both L1 and L2 (levels are exclusive)", now)
            for line in l1_lines | l2_lines:
                seen.setdefault(line, set()).add(core_id)
        for chip in range(memory.spec.n_chips):
            holder = directory.l3_holder(chip)
            for line in memory.l3s[chip].lines():
                seen.setdefault(line, set()).add(holder)
        recorded = {line: set(holders) for line, holders in directory.items()}
        if seen != recorded:
            for line in set(seen) | set(recorded):
                have = seen.get(line, set())
                claim = recorded.get(line, set())
                if have != claim:
                    self._fail(
                        "residency",
                        f"line {line}: caches hold {sorted(have)}, "
                        f"directory claims {sorted(claim)}", now)

    def _check_object_table(self, now: int) -> None:
        table = getattr(self.sim.scheduler, "table", None)
        entries = getattr(table, "entries", None)
        if entries is None:
            return
        n_cores = self.machine.n_cores
        for obj, cores in entries():
            if len(set(cores)) != len(cores):
                self._fail("object_table",
                           f"{obj.name}: duplicate replica cores {cores}",
                           now)
            for core_id in cores:
                if not 0 <= core_id < n_cores:
                    self._fail("object_table",
                               f"{obj.name} assigned to nonexistent core "
                               f"{core_id} (machine has {n_cores})", now)
            if list(obj.assigned_cores) != list(cores):
                self._fail("object_table",
                           f"{obj.name}: table says cores {cores}, object "
                           f"says {obj.assigned_cores}", now)

    def _check_threads(self, now: int) -> None:
        cores = self.machine.cores
        queued: Dict[int, int] = {}
        running = set()
        for core in cores:
            current = core.current
            if current is not None:
                running.add(id(current))
                if current.state is not ThreadState.RUNNING:
                    self._fail("threads",
                               f"core {core.core_id} runs {current.name} "
                               f"in state {current.state.value}", now)
            for thread in core.runqueue:
                queued[id(thread)] = queued.get(id(thread), 0) + 1
        for thread in self.sim.threads:
            n_queued = queued.get(id(thread), 0)
            state = thread.state
            if state is ThreadState.READY:
                if n_queued != 1:
                    self._fail("threads",
                               f"{thread.name} READY but on {n_queued} "
                               f"runqueues", now)
                if id(thread) in running:
                    self._fail("threads",
                               f"{thread.name} both queued and running",
                               now)
            elif state is ThreadState.RUNNING:
                if n_queued:
                    self._fail("threads",
                               f"{thread.name} RUNNING but also on a "
                               f"runqueue", now)
                if thread.core is None \
                        or cores[thread.core].current is not thread:
                    self._fail("threads",
                               f"{thread.name} RUNNING but not current on "
                               f"core {thread.core}", now)
            elif state is ThreadState.MIGRATING:
                if n_queued or id(thread) in running:
                    self._fail("threads",
                               f"{thread.name} MIGRATING while queued or "
                               f"running", now)
                if thread.arrive_at is None:
                    self._fail("threads",
                               f"{thread.name} MIGRATING with no promised "
                               f"arrival time", now)
            else:  # DONE
                if n_queued or id(thread) in running:
                    self._fail("threads",
                               f"{thread.name} DONE but still scheduled",
                               now)

    def _check_migrations(self, now: int) -> None:
        from repro.sim.engine import _KIND_ARRIVAL
        arrivals: Dict[int, List[tuple]] = {}
        for time, _seq, kind, payload in self.sim._heap:
            if kind == _KIND_ARRIVAL:
                thread, core_id = payload
                arrivals.setdefault(id(thread), []).append(
                    (time, core_id, thread))
        for thread in self.sim.threads:
            if thread.state is not ThreadState.MIGRATING:
                continue
            entries = arrivals.pop(id(thread), [])
            if len(entries) != 1:
                self._fail("migrations",
                           f"{thread.name} MIGRATING with {len(entries)} "
                           f"in-flight arrival events (want exactly 1)",
                           now)
            time, _core_id, _ = entries[0]
            if thread.arrive_at is not None and time != thread.arrive_at:
                self._fail("migrations",
                           f"{thread.name} arrival queued for t={time}, "
                           f"engine promised t={thread.arrive_at}", now)
            promised = self._inflight.get(thread.name)
            if promised is not None and promised != time:
                self._fail("migrations",
                           f"{thread.name} arrival queued for t={time}, "
                           f"bus recorded t={promised}", now)
        for entries in arrivals.values():
            _time, _core_id, thread = entries[0]
            self._fail("migrations",
                       f"{thread.name} has an in-flight arrival event but "
                       f"state {thread.state.value}", now)

    def _check_heap(self, now: int) -> None:
        from repro.sim.engine import _KIND_STEP
        step_counts: Dict[int, int] = {}
        for time, _seq, kind, payload in self.sim._heap:
            if time < self._last_ts:
                self._fail("heap",
                           f"queued event at t={time} behind the clock "
                           f"({self._last_ts})", now)
            if kind == _KIND_STEP:
                core_id = payload.core_id
                step_counts[core_id] = step_counts.get(core_id, 0) + 1
        for core in self.machine.cores:
            count = step_counts.get(core.core_id, 0)
            if count > 1:
                self._fail("heap",
                           f"core {core.core_id} has {count} step events "
                           f"queued (want at most 1)", now)
            if core.in_heap != (count == 1):
                self._fail("heap",
                           f"core {core.core_id}: in_heap={core.in_heap} "
                           f"but {count} step events queued", now)

    def _check_counters(self, now: int) -> None:
        banks = self.memory.counters
        for bank, base in zip(banks, self._base_values):
            values = bank.snapshot().values
            for index, field in enumerate(COUNTER_FIELDS):
                if values[index] < 0:
                    self._fail("counters",
                               f"core {bank.core_id}: {field} is negative "
                               f"({values[index]})", now)
                if values[index] < base[index]:
                    self._fail("counters",
                               f"core {bank.core_id}: {field} fell below "
                               f"its baseline ({values[index]} < "
                               f"{base[index]})", now)
        agg = aggregate(banks)
        if self._prev_agg is not None:
            for field in COUNTER_FIELDS:
                if agg[field] < self._prev_agg[field]:
                    self._fail("counters",
                               f"aggregate {field} decreased "
                               f"({self._prev_agg[field]} -> {agg[field]})",
                               now)
        self._prev_agg = agg
        sim = self.sim
        ops_delta = agg["ops_completed"] - self._base_agg["ops_completed"]
        sim_ops = sim.total_ops - self._base_total_ops
        if ops_delta != sim_ops:
            self._fail("counters",
                       f"per-core ops_completed sum to {ops_delta}, "
                       f"simulator counted {sim_ops}", now)
        out_delta = agg["migrations_out"] - self._base_agg["migrations_out"]
        sim_migrations = sim.total_migrations - self._base_total_migrations
        if out_delta != sim_migrations:
            self._fail("counters",
                       f"per-core migrations_out sum to {out_delta}, "
                       f"simulator counted {sim_migrations}", now)
        in_flight = sum(1 for t in sim.threads
                        if t.state is ThreadState.MIGRATING)
        in_delta = agg["migrations_in"] - self._base_agg["migrations_in"]
        if in_delta != out_delta - in_flight:
            self._fail("counters",
                       f"migrations_in ({in_delta}) != migrations_out "
                       f"({out_delta}) - in flight ({in_flight})", now)

    _RUNNERS = {
        "cache_capacity": _check_cache_capacity,
        "residency": _check_residency,
        "object_table": _check_object_table,
        "threads": _check_threads,
        "migrations": _check_migrations,
        "heap": _check_heap,
        "counters": _check_counters,
    }

    # ------------------------------------------------------------------

    def _fail(self, rule: str, detail: str, ts: int) -> None:
        self.violations += 1
        bus = self._bus
        if bus is not None and bus.wants(InvariantViolated):
            # Published before raising so the violation is the last
            # record in the flight ring drained into the exception.
            bus.publish(InvariantViolated(ts, rule, detail))
        flight = (self.sim.obs.flight
                  if self.sim is not None and self.sim.obs is not None
                  else None)
        raise InvariantViolation(rule, detail, ts, flight=flight,
                                 max_flight=self.max_flight)

"""repro.verify — the verification layer.

Three tools that keep the simulator honest (DESIGN.md §9):

* :class:`InvariantChecker` — opt-in machine-wide invariant assertions,
  hooked into the engine's event loop via
  ``Simulator(..., checker=InvariantChecker())``; violations raise a
  structured :class:`InvariantViolation` carrying a bounded
  flight-recorder dump.
* :class:`FaultPlan` — seeded, deterministic corruption of live
  simulator state (drop/delay a migration, evict a line behind the
  directory's back, corrupt a counter, stall a core), used to prove the
  checker catches real bugs.
* the property-based fuzzer (:mod:`repro.verify.fuzz`) — random
  topology × workload × scheduler cases checked for invariant
  cleanliness, same-seed determinism and fast-vs-generic memory-path
  equivalence, with greedy shrinking to a one-command repro:
  ``python -m repro.verify fuzz --seeds 25``.
"""

from __future__ import annotations

from repro.verify.faults import EXPECTED_RULE, FAULT_KINDS, FaultPlan
from repro.verify.fuzz import (FuzzCase, FuzzFailure, check_case,
                               generate_case, repro_command, run_case,
                               run_mutation, shrink)
from repro.verify.invariants import (DEFAULT_RULES, InvariantChecker,
                                     InvariantViolation)

__all__ = [
    "DEFAULT_RULES",
    "EXPECTED_RULE",
    "FAULT_KINDS",
    "FaultPlan",
    "FuzzCase",
    "FuzzFailure",
    "InvariantChecker",
    "InvariantViolation",
    "check_case",
    "generate_case",
    "repro_command",
    "run_case",
    "run_mutation",
    "shrink",
]

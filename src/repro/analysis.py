"""Multi-seed statistics for simulation experiments.

Single runs of a stochastic workload are point estimates; this module
runs an experiment across seeds and reports mean, spread, and whether a
speedup is robust.  Pure Python (no numpy dependency on the hot path) so
the core library stays importable anywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence


@dataclass(frozen=True)
class SampleStats:
    """Summary of repeated measurements."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        return self.stdev / math.sqrt(self.n) if self.n > 1 else 0.0

    def ci95(self) -> tuple:
        """~95% confidence interval (normal approximation)."""
        half = 1.96 * self.stderr
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        low, high = self.ci95()
        return (f"{self.mean:,.1f} +/- {1.96 * self.stderr:,.1f} "
                f"(n={self.n}, range {self.minimum:,.1f}"
                f"..{self.maximum:,.1f})")


def summarise(values: Sequence[float]) -> SampleStats:
    if not values:
        raise ValueError("no samples")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    return SampleStats(n=n, mean=mean, stdev=math.sqrt(variance),
                       minimum=min(values), maximum=max(values))


def run_seeds(experiment: Callable[[int], float],
              seeds: Sequence[int]) -> SampleStats:
    """Run ``experiment(seed)`` for every seed and summarise."""
    return summarise([experiment(seed) for seed in seeds])


@dataclass(frozen=True)
class SpeedupResult:
    """Comparison of two measured configurations across shared seeds."""

    baseline: SampleStats
    candidate: SampleStats
    per_seed_ratios: List[float]

    @property
    def mean_speedup(self) -> float:
        ratios = self.per_seed_ratios
        return sum(ratios) / len(ratios)

    @property
    def robust(self) -> bool:
        """True when the candidate wins on every seed."""
        return all(ratio > 1.0 for ratio in self.per_seed_ratios)

    def __str__(self) -> str:
        flag = "robust" if self.robust else "mixed"
        return (f"speedup {self.mean_speedup:.2f}x ({flag}; "
                f"ratios {['%.2f' % r for r in self.per_seed_ratios]})")


def compare(baseline: Callable[[int], float],
            candidate: Callable[[int], float],
            seeds: Sequence[int]) -> SpeedupResult:
    """Paired comparison: each seed measured under both configurations."""
    base_values = [baseline(seed) for seed in seeds]
    cand_values = [candidate(seed) for seed in seeds]
    ratios = [c / b if b else float("inf")
              for b, c in zip(base_values, cand_values)]
    return SpeedupResult(summarise(base_values), summarise(cand_values),
                         ratios)

"""Multi-seed statistics for simulation experiments.

Single runs of a stochastic workload are point estimates; this module
runs an experiment across seeds and reports mean, spread, and whether a
speedup is robust.  Pure Python (no numpy dependency on the hot path) so
the core library stays importable anywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence


@dataclass(frozen=True)
class SampleStats:
    """Summary of repeated measurements."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        return self.stdev / math.sqrt(self.n) if self.n > 1 else 0.0

    def ci95(self) -> tuple:
        """~95% confidence interval (normal approximation)."""
        half = 1.96 * self.stderr
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        low, high = self.ci95()
        return (f"{self.mean:,.1f} +/- {1.96 * self.stderr:,.1f} "
                f"(n={self.n}, range {self.minimum:,.1f}"
                f"..{self.maximum:,.1f})")


@dataclass
class RunningStats:
    """Streaming, mergeable count/sum/min/max accumulator.

    Unlike :func:`summarise` it never stores samples, so streaming
    reducers (:mod:`repro.obs.stream`) can keep one per key at constant
    memory; two partial aggregates over disjoint sample sets fold
    exactly with :meth:`merge` (integer sums stay integers, and min/max
    are order-free).  No variance — a mergeable stdev needs Welford-
    style moments and none of the streaming reports quote one.
    """

    n: int = 0
    total: float = 0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.n += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Fold ``other`` into self (in place); returns self."""
        self.n += other.n
        self.total += other.total
        if other.minimum is not None and (self.minimum is None
                                          or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None
                                          or other.maximum > self.maximum):
            self.maximum = other.maximum
        return self

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "RunningStats":
        stats = cls()
        for value in values:
            stats.add(value)
        return stats

    def state(self) -> dict:
        return {"n": self.n, "total": self.total,
                "min": self.minimum, "max": self.maximum}

    @classmethod
    def from_state(cls, state: dict) -> "RunningStats":
        return cls(n=state["n"], total=state["total"],
                   minimum=state["min"], maximum=state["max"])


def summarise(values: Sequence[float]) -> SampleStats:
    if not values:
        raise ValueError("no samples")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    return SampleStats(n=n, mean=mean, stdev=math.sqrt(variance),
                       minimum=min(values), maximum=max(values))


def run_seeds(experiment: Callable[[int], float],
              seeds: Sequence[int]) -> SampleStats:
    """Run ``experiment(seed)`` for every seed and summarise."""
    return summarise([experiment(seed) for seed in seeds])


@dataclass(frozen=True)
class SpeedupResult:
    """Comparison of two measured configurations across shared seeds."""

    baseline: SampleStats
    candidate: SampleStats
    per_seed_ratios: List[float]

    @property
    def mean_speedup(self) -> float:
        ratios = self.per_seed_ratios
        return sum(ratios) / len(ratios)

    @property
    def robust(self) -> bool:
        """True when the candidate wins on every seed."""
        return all(ratio > 1.0 for ratio in self.per_seed_ratios)

    def __str__(self) -> str:
        flag = "robust" if self.robust else "mixed"
        return (f"speedup {self.mean_speedup:.2f}x ({flag}; "
                f"ratios {['%.2f' % r for r in self.per_seed_ratios]})")


def compare(baseline: Callable[[int], float],
            candidate: Callable[[int], float],
            seeds: Sequence[int]) -> SpeedupResult:
    """Paired comparison: each seed measured under both configurations."""
    base_values = [baseline(seed) for seed in seeds]
    cand_values = [candidate(seed) for seed in seeds]
    ratios = [c / b if b else float("inf")
              for b, c in zip(base_values, cand_values)]
    return SpeedupResult(summarise(base_values), summarise(cand_values),
                         ratios)

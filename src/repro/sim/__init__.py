"""Discrete-event simulation engine."""

from repro.obs import Observability
from repro.sim.engine import RunResult, Simulator
from repro.sim.rng import make_rng, stream_seed
from repro.sim.trace import (PrintTracer, RecordingTracer, TraceEvent,
                             Tracer, subscribe_tracer)

__all__ = [
    "Observability",
    "PrintTracer",
    "RecordingTracer",
    "RunResult",
    "Simulator",
    "TraceEvent",
    "Tracer",
    "make_rng",
    "stream_seed",
    "subscribe_tracer",
]

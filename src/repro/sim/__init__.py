"""Discrete-event simulation engine."""

from repro.sim.engine import RunResult, Simulator
from repro.sim.rng import make_rng, stream_seed
from repro.sim.trace import (PrintTracer, RecordingTracer, TraceEvent,
                             Tracer)

__all__ = [
    "PrintTracer",
    "RecordingTracer",
    "RunResult",
    "Simulator",
    "TraceEvent",
    "Tracer",
    "make_rng",
    "stream_seed",
]

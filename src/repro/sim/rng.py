"""Deterministic random-number streams.

Every stochastic choice in the simulator draws from a stream derived from
(seed, *labels), so runs are reproducible and independent components do not
perturb each other's sequences when one of them draws more numbers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Key = Union[str, int]


def stream_seed(seed: int, *labels: Key) -> int:
    """Stable 64-bit sub-seed for the stream named by ``labels``."""
    text = ":".join([str(seed)] + [str(label) for label in labels])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(seed: int, *labels: Key) -> random.Random:
    """Independent :class:`random.Random` for the labelled stream."""
    return random.Random(stream_seed(seed, *labels))


def derive_seed(root: int, *axes: Key) -> int:
    """The canonical per-case seed for experiment grids.

    Every layer that expands one root seed into many per-case seeds —
    ``repro-sweep`` cells, ``repro.bench --seed`` sweeps and
    ``repro.verify fuzz`` cases — must derive them through this one
    helper so a case's seed depends only on (root, axis labels), never
    on expansion order, process boundaries or which tool ran it.  The
    derivation is :func:`stream_seed` (SHA-256 of the colon-joined
    labels); ``tests/test_sweep.py`` pins exact values so it cannot
    drift silently.
    """
    return stream_seed(root, *axes)

"""Deterministic random-number streams.

Every stochastic choice in the simulator draws from a stream derived from
(seed, *labels), so runs are reproducible and independent components do not
perturb each other's sequences when one of them draws more numbers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Key = Union[str, int]


def stream_seed(seed: int, *labels: Key) -> int:
    """Stable 64-bit sub-seed for the stream named by ``labels``."""
    text = ":".join([str(seed)] + [str(label) for label in labels])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(seed: int, *labels: Key) -> random.Random:
    """Independent :class:`random.Random` for the labelled stream."""
    return random.Random(stream_seed(seed, *labels))

"""Optional event tracing.

The engine reports interesting events (migrations, operations, thread
lifecycle) to a :class:`Tracer` when one is attached.  The default engine
runs without a tracer and pays nothing; tests and examples attach
:class:`RecordingTracer` to assert on behaviour, and
:class:`PrintTracer` gives a human-readable narration for debugging.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, List, TextIO


@dataclass(frozen=True)
class TraceEvent:
    """One traced simulator event."""

    time: int
    kind: str
    thread: str
    core: int
    detail: Any = None


class Tracer:
    """Base tracer: receives every event; default drops them."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        """Handle one event."""


@dataclass
class RecordingTracer(Tracer):
    """Stores events in memory for inspection (tests, notebooks)."""

    events: List[TraceEvent] = field(default_factory=list)

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Counter:
        return Counter(e.kind for e in self.events)

    def clear(self) -> None:
        self.events.clear()


class PrintTracer(Tracer):
    """Writes a one-line narration per event."""

    def __init__(self, out: TextIO = None) -> None:
        import sys

        self.out = out or sys.stdout

    def emit(self, event: TraceEvent) -> None:
        detail = f" {event.detail}" if event.detail is not None else ""
        self.out.write(
            f"[{event.time:>12}] core{event.core:<3} {event.kind:<12} "
            f"{event.thread}{detail}\n")

"""Legacy event tracing (thin compatibility layer over ``repro.obs``).

The first-class telemetry spine is :mod:`repro.obs`: a typed event bus,
metrics registry, exporters and a flight recorder.  This module keeps the
original small :class:`Tracer` API working — tests, notebooks and older
examples attach :class:`RecordingTracer` / :class:`PrintTracer` via
``Simulator(..., tracer=...)`` and still receive the familiar flat
:class:`TraceEvent` records.

Internally the engine no longer emits these directly; a
:func:`subscribe_tracer` bridge converts the bus's typed lifecycle events
(:class:`~repro.obs.events.ThreadSpawned`, ``ThreadFinished``,
``ThreadArrived``, ``MigrationStarted``) into ``TraceEvent`` on delivery.
When neither a tracer nor a bus is attached, no event object of either
kind is ever constructed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, List, TextIO

from repro.obs.bus import EventBus
from repro.obs.events import (Event, MigrationStarted, ThreadArrived,
                              ThreadFinished, ThreadSpawned)


@dataclass(frozen=True)
class TraceEvent:
    """One traced simulator event (legacy flat form)."""

    time: int
    kind: str
    thread: str
    core: int
    detail: Any = None


class Tracer:
    """Base tracer: receives every event; default drops them."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        """Handle one event."""


@dataclass
class RecordingTracer(Tracer):
    """Stores events in memory for inspection (tests, notebooks)."""

    events: List[TraceEvent] = field(default_factory=list)

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Counter:
        return Counter(e.kind for e in self.events)

    def clear(self) -> None:
        self.events.clear()


class PrintTracer(Tracer):
    """Writes a one-line narration per event."""

    def __init__(self, out: TextIO = None) -> None:
        import sys

        self.out = out or sys.stdout

    def emit(self, event: TraceEvent) -> None:
        detail = f" {event.detail}" if event.detail is not None else ""
        self.out.write(
            f"[{event.time:>12}] core{event.core:<3} {event.kind:<12} "
            f"{event.thread}{detail}\n")


#: Lifecycle events the legacy tracer format can express.
_LIFECYCLE = (ThreadSpawned, ThreadFinished, ThreadArrived,
              MigrationStarted)


class _TracerBridge:
    """Bus handler translating typed events into legacy TraceEvents."""

    __slots__ = ("tracer",)

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def __call__(self, event: Event) -> None:
        detail = (event.target if type(event) is MigrationStarted
                  else None)
        self.tracer.emit(TraceEvent(event.ts, event.kind, event.thread,
                                    event.core, detail))


def subscribe_tracer(bus: EventBus, tracer: Tracer) -> _TracerBridge:
    """Bridge ``bus`` lifecycle events into a legacy ``Tracer``.

    Returns the handler token (pass to ``bus.unsubscribe`` to detach).
    """
    handler = _TracerBridge(tracer)
    bus.subscribe(handler, *_LIFECYCLE)
    return handler

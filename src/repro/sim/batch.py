"""Batched execution kernel: macro-step quiescent cores.

This module is the ``kernel="batched"`` execution mode of
:class:`repro.sim.engine.Simulator`.  It replaces the generic run loop's
tuple heap with an array-backed :class:`IndexedEventHeap` and — the actual
speedup — executes *runs* of a core's events as one batch without
re-entering the global event loop.

Why this is exact (the invariants DESIGN.md §13 spells out):

* **Global-order horizon.**  When the generic loop pops a core's step at
  time ``T``, executes it, and re-arms the core at its new clock ``t``,
  the re-armed entry carries the newest sequence number.  It is therefore
  the next event popped *iff* ``t`` is strictly below the earliest pending
  event time (at equal times the older entry wins the tie-break).  So a
  popped core may keep executing micro-steps locally while
  ``core.time < heap-top`` — every one of them is exactly the event the
  generic loop would have popped next.  The heap top is re-read after
  every micro-step because a step may push new events (migration
  arrivals).

* **Run limits.**  ``until`` / ``max_ops`` / ``max_steps`` are re-checked
  between micro-steps with the same expressions the generic loop uses
  between events, so a batch never overruns a stopping condition.

* **Quiescent runs collapse.**  Within the horizon no other core can act,
  so event runs that touch only core-private state reduce to arithmetic:
  ``k`` consecutive spins of a thread on an L1-resident lock line are
  ``k`` identical events (constant latency, no stream output after the
  first contended spin, counter increments only) and are applied in O(1).
  Stores whose line the sharing directory reports *quiescent* for the
  core (:meth:`~repro.mem.sharing.SharingDirectory.quiescent_for`) cannot
  invalidate anything and skip the invalidation sweep.  The scheduler's
  :meth:`~repro.sched.base.SchedulerRuntime.next_boundary` additionally
  caps the collapse horizon at the next monitoring/rebalance epoch.

* **Streams stay byte-identical.**  Every publish site runs at the same
  simulated time with the same payload as in the generic kernel; sequence
  numbers are engine-internal and never leave the heap.

The kernel runs only when no invariant checker / fault plan is attached
(``Simulator.run`` falls back to the generic loop otherwise): both of
those are defined to run *between events* and to introspect the tuple
heap, which batching deliberately removes.  The differential fuzzer
covers the batched kernel by comparing its event streams and counters
byte-for-byte against the generic oracle instead.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional

from repro.errors import DeadlockError, SimulationError
from repro.obs import LockContended, ThreadArrived
from repro.sched.base import SchedulerRuntime
from repro.threads.program import Acquire, Compute, Release, Scan
from repro.threads.thread import ThreadState

#: Key layout: ``(time << SEQ_BITS) | seq``.  One int compare replaces the
#: generic heap's tuple compare; Python ints are unbounded so neither field
#: can overflow the packing.
SEQ_BITS = 48
SEQ_MASK = (1 << SEQ_BITS) - 1

# Event kinds, matching repro.sim.engine._KIND_STEP / _KIND_ARRIVAL (the
# engine imports this module, so the constants live here independently;
# tests pin the agreement).  Inside the indexed heap the kind is implicit:
# a step's payload is a Core, an arrival's payload is a (thread, core_id)
# tuple.
KIND_STEP = 0
KIND_ARRIVAL = 1


class IndexedEventHeap:
    """Array-backed indexed event heap.

    ``keys`` is a plain binary min-heap of packed ``time<<48 | seq`` ints
    (sifted by :mod:`heapq`'s C implementation with single int compares);
    ``payloads`` maps the sequence number — unique for the lifetime of a
    simulator — to the event payload.  Separating the two keeps the sift
    path free of tuple allocation and lets a pushed-back key (the
    ``until`` stop condition) keep its payload slot untouched.
    """

    __slots__ = ("keys", "payloads")

    def __init__(self) -> None:
        self.keys: List[int] = []
        self.payloads: Dict[int, Any] = {}

    def push(self, time: int, seq: int, payload: Any) -> None:
        self.payloads[seq] = payload
        heapq.heappush(self.keys, (time << SEQ_BITS) | seq)

    def pop(self) -> tuple:
        """Pop the earliest event; returns ``(time, seq, payload)``."""
        key = heapq.heappop(self.keys)
        seq = key & SEQ_MASK
        return key >> SEQ_BITS, seq, self.payloads.pop(seq)

    def peek_time(self) -> Optional[int]:
        return (self.keys[0] >> SEQ_BITS) if self.keys else None

    def __len__(self) -> int:
        return len(self.keys)

    def __bool__(self) -> bool:
        return bool(self.keys)


def heap_from_tuples(entries: List[tuple]) -> IndexedEventHeap:
    """Build an indexed heap from generic ``(time, seq, kind, payload)``
    tuples (both representations order identically, so conversion at run
    boundaries preserves resumability across kernels)."""
    heap = IndexedEventHeap()
    keys = heap.keys
    payloads = heap.payloads
    for time, seq, _kind, payload in entries:
        payloads[seq] = payload
        keys.append((time << SEQ_BITS) | seq)
    heapq.heapify(keys)
    return heap


def heap_to_tuples(heap: IndexedEventHeap) -> List[tuple]:
    """Convert back to the generic tuple representation (heap-ordered)."""
    payloads = heap.payloads
    entries = []
    for key in heap.keys:
        seq = key & SEQ_MASK
        payload = payloads[seq]
        kind = KIND_ARRIVAL if payload.__class__ is tuple else KIND_STEP
        entries.append((key >> SEQ_BITS, seq, kind, payload))
    heapq.heapify(entries)
    return entries


def run_batched(sim, until: Optional[int], max_ops: Optional[int],
                max_steps: Optional[int]):
    """Run ``sim`` to a stopping condition on the batched kernel.

    Drop-in replacement for ``Simulator._run`` (the caller guarantees no
    checker/faults are attached).  Event streams, counters and the
    returned :class:`~repro.sim.engine.RunResult` are byte-identical to
    the generic loop's.
    """
    machine = sim.machine
    cores = machine.cores
    scheduler = sim.scheduler
    # None when the scheduler inherits the base no-op next_boundary —
    # skips a Python call per batch for schedulers with no timed epochs.
    next_boundary = (
        scheduler.next_boundary
        if type(scheduler).next_boundary
        is not SchedulerRuntime.next_boundary else None)
    speeds = sim._speeds
    dispatch = sim._dispatch
    bus = sim._bus
    mem_ctx = sim._mem_ctx
    mem = sim.memory
    mem_scan = sim._mem_scan
    mem_load = sim._mem_load
    mem_store = sim._mem_store
    quiescent_for = mem.directory.quiescent_for
    line_size = mem.line_size
    # Flat per-core memory state for the single-line fast paths; None
    # under a custom cache factory (every access falls back to the
    # generic memory methods, exactly like the generic kernel).
    l1ds = mem._l1ds if mem._fast else None
    lat_l1 = mem._lat_l1
    spin_backoff = sim._spec.spin_backoff
    c_lock_spins = sim._c_lock_spins
    heappush = heapq.heappush
    heappop = heapq.heappop

    ops_target = (sim.total_ops + max_ops) if max_ops else None
    steps_left = max_steps if max_steps is not None else -1
    sim._ops_at_run_start = sim.total_ops

    heap = heap_from_tuples(sim._heap)
    keys = heap.keys
    payloads = heap.payloads
    del sim._heap[:]

    # Intercept Simulator._push for the duration of the run: migration
    # arrivals, idle polls and mid-run spawns land in the indexed heap.
    def _push(time: int, kind: int, payload: Any) -> None:
        sim._seq += 1
        seq = sim._seq
        payloads[seq] = payload
        heappush(keys, (time << SEQ_BITS) | seq)

    sim.__dict__["_push"] = _push
    total_steps = 0
    try:
        while keys:
            if ops_target is not None and sim.total_ops >= ops_target:
                break
            if steps_left == 0:
                break
            key = heappop(keys)
            time = key >> SEQ_BITS
            if until is not None and time > until:
                # Same entry (same seq) left queued, so a resumed run —
                # on either kernel — pops it in the original order.
                heappush(keys, key)
                break
            payload = payloads.pop(key & SEQ_MASK)
            if payload.__class__ is tuple:
                # Migration arrival.
                thread, core_id = payload
                core = cores[core_id]
                core.counters.migrations_in += 1
                thread.state = ThreadState.READY
                thread.arrive_at = None
                sim._enqueue_thread(thread, core_id, time)
                if bus is not None and bus.wants(ThreadArrived):
                    bus.publish(ThreadArrived(time, core_id, thread.name))
                steps_left -= 1
                continue

            # ---- step event: batch-execute this core ------------------
            core = payload
            core.in_heap = False
            cid = core.core_id
            counters = core.counters
            runqueue = core.runqueue
            l1d = l1ds[cid] if l1ds is not None else None
            # Local clock and busy-cycle accumulator; flushed to the core
            # before any call that can observe them (ct hooks, generic
            # item handlers, thread finish) and at batch exit.
            t = core.time
            now = time
            busy = 0
            csteps = 0
            boundary = (next_boundary(now)
                        if next_boundary is not None else None)
            while True:
                # -- one micro-step (engine._step semantics) ------------
                thread = core.current
                if thread is None:
                    thread = runqueue.pop()
                    if thread is None:
                        # core.time == t on every path that reaches here.
                        thread = scheduler.on_idle(core, t)
                        if thread is not None:
                            core.note_woken(now if now > t else t)
                            t = core.time
                    if thread is None:
                        steps_left -= 1
                        core.note_idle()
                        sim._maybe_poll_idle(core, now)
                        break
                    thread.state = ThreadState.RUNNING
                    thread.core = cid
                    core.current = thread
                    if mem_ctx is not None and thread.ct_object is not None:
                        mem_ctx[cid] = thread.ct_obj_name
                item = thread.pending
                if item is None:
                    try:
                        item = next(thread.program)
                        thread.pending = item
                    except StopIteration:
                        core.time = t
                        counters.busy_cycles += busy
                        busy = 0
                        sim._finish_thread(thread, core)
                        t = core.time
                        item = None
                if item is not None:
                    total_steps += 1
                    csteps += 1
                    cls = item.__class__
                    if cls is Acquire:
                        lock = item.lock
                        if lock.try_acquire(thread):
                            addr = lock.addr
                            line = addr // line_size
                            if (l1d is not None and line in l1d
                                    and quiescent_for(line, cid)):
                                # Quiescent store: sole holder, L1 hit —
                                # no invalidation sweep possible.
                                l1d.move_to_end(line)
                                counters.l1_hits += 1
                                counters.stores += 1
                                counters.mem_cycles += lat_l1
                                latency = lat_l1
                            else:
                                latency = mem_store(cid, addr, t)
                            counters.lock_acquires += 1
                            thread.spinning = False
                            thread.pending = None
                            busy += latency
                            t += latency
                        else:
                            line = lock.addr // line_size
                            if l1d is not None and line in l1d:
                                l1d.move_to_end(line)
                                counters.l1_hits += 1
                                counters.mem_cycles += lat_l1
                                latency = lat_l1 + spin_backoff
                                fast_spin = True
                            else:
                                latency = (mem_load(cid, lock.addr, t)
                                           + spin_backoff)
                                fast_spin = False
                            counters.lock_spins += 1
                            thread.spin_cycles += latency
                            if c_lock_spins is not None:
                                c_lock_spins.inc()
                            if not thread.spinning:
                                thread.spinning = True
                                if bus is not None \
                                        and bus.wants(LockContended):
                                    bus.publish(LockContended(
                                        t, cid, thread.name, lock.name))
                            busy += latency
                            t += latency
                            # -- collapse the quiescent spin run --------
                            # Each further spin is an identical event:
                            # constant L1 latency, no stream output, no
                            # program advance.  Apply k of them in O(1),
                            # where k is bounded by exactly the
                            # conditions the continuation check applies
                            # per event (heap horizon, epoch boundary,
                            # until, max_steps).
                            if fast_spin and c_lock_spins is None:
                                if keys:
                                    horizon = keys[0] >> SEQ_BITS
                                    if boundary is not None \
                                            and boundary < horizon:
                                        horizon = boundary
                                else:
                                    horizon = boundary
                                k = -1
                                if horizon is not None:
                                    d = horizon - t
                                    k = ((d + latency - 1) // latency
                                         if d > 0 else 0)
                                if until is not None:
                                    d = until - t
                                    ku = d // latency + 1 if d >= 0 else 0
                                    if k < 0 or ku < k:
                                        k = ku
                                if max_steps is not None \
                                        and (k < 0 or steps_left - 1 < k):
                                    k = steps_left - 1
                                if k > 0:
                                    lock.spin_attempts += k
                                    counters.lock_spins += k
                                    counters.l1_hits += k
                                    counters.mem_cycles += k * lat_l1
                                    spun = k * latency
                                    thread.spin_cycles += spun
                                    busy += spun
                                    t += spun
                                    total_steps += k
                                    csteps += k
                                    steps_left -= k
                    elif cls is Compute:
                        cycles = item.cycles
                        if speeds is not None and cycles:
                            cycles = max(1, round(cycles / speeds[cid]))
                        busy += cycles
                        t += cycles
                        thread.pending = None
                    elif cls is Scan:
                        latency = mem_scan(cid, item.addr, item.nbytes, t,
                                           item.per_line_compute)
                        busy += latency
                        t += latency
                        thread.pending = None
                    elif cls is Release:
                        lock = item.lock
                        lock.release(thread)
                        addr = lock.addr
                        line = addr // line_size
                        if (l1d is not None and line in l1d
                                and quiescent_for(line, cid)):
                            l1d.move_to_end(line)
                            counters.l1_hits += 1
                            counters.stores += 1
                            counters.mem_cycles += lat_l1
                            latency = lat_l1
                        else:
                            latency = mem_store(cid, addr, t)
                        busy += latency
                        t += latency
                        thread.pending = None
                    else:
                        # CtStart/CtEnd/Load/Store/Yield/OpDone and any
                        # unknown item: flush the flat state and run the
                        # generic handler (scheduler hooks may read the
                        # clock and counters, and may migrate the
                        # thread — pushing an arrival through the
                        # intercepted _push above).
                        core.time = t
                        counters.busy_cycles += busy
                        busy = 0
                        handler = dispatch.get(cls)
                        if handler is None:
                            raise SimulationError(
                                f"thread {thread.name} yielded unknown "
                                f"item {item!r}")
                        handler(core, thread, item)
                        t = core.time
                # -- continuation: the generic loop's between-event
                # checks, against the post-step clock ------------------
                steps_left -= 1
                if core.current is not None or runqueue:
                    if ((not keys or t < keys[0] >> SEQ_BITS)
                            and (until is None or t <= until)
                            and steps_left != 0
                            and (ops_target is None
                                 or sim.total_ops < ops_target)):
                        now = t
                        continue
                    # Re-arm: newest seq, exactly like the generic loop's
                    # inlined _push_step.
                    core.time = t
                    counters.busy_cycles += busy
                    core.in_heap = True
                    sim._seq += 1
                    seq = sim._seq
                    payloads[seq] = core
                    heappush(keys, (t << SEQ_BITS) | seq)
                else:
                    # core.time == t and busy == 0 on every idle path.
                    core.note_idle()
                    sim._maybe_poll_idle(core, now)
                break
            core.steps += csteps
        else:
            if any(not t.done for t in sim.threads):
                raise DeadlockError(
                    "event heap drained with live threads: "
                    + ", ".join(t.name for t in sim.threads if not t.done))
    finally:
        sim.total_steps += total_steps
        del sim.__dict__["_push"]
        sim._heap.extend(heap_to_tuples(heap))
    horizon = until if until is not None else machine.now
    machine.settle_idle(horizon)
    return sim._result(horizon)

"""The discrete-event simulation engine.

:class:`Simulator` drives a :class:`~repro.cpu.machine.Machine` under a
:class:`~repro.sched.base.SchedulerRuntime`.  Cores carry local clocks; a
heap of pending events (core steps and migration arrivals) executes them in
global time order, so cross-core interactions — lock hand-offs, coherence
invalidations, migrations — are causally ordered.

One *step* executes one instruction item of a core's current thread and
advances that core's clock by the item's simulated cost.  Threads are
cooperative: they run until they migrate, finish, or explicitly yield,
exactly like CoreTime's per-core user-level threading (§4).

Item dispatch is a precomputed per-class table (``_dispatch``) built at
construction: one dict lookup per step instead of a type-comparison chain,
with every :data:`~repro.threads.program.ITEM_TYPES` class guaranteed an
entry (enforced by tests).  An unknown item raises
:class:`~repro.errors.SimulationError` exactly as before.

Known approximation (documented in DESIGN.md): a ``Scan`` is charged in a
single step, so another core observes its cache-state effects at the scan's
start time rather than spread across it.  Scans are lock-protected in the
workloads we model, so this does not change the contention structure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.cpu.core import Core
from repro.cpu.machine import Machine
from repro.errors import DeadlockError, SimulationError
from repro.mem.counters import COUNTER_FIELDS, aggregate
from repro.obs import (MIGRATION_BUCKETS, OP_LATENCY_BUCKETS,
                       QUEUE_DEPTH_BUCKETS, HistogramSummary,
                       LockContended, MigrationStarted, Observability,
                       OperationFinished, OperationStarted, ThreadArrived,
                       ThreadFinished, ThreadSpawned)
from repro.sched.base import SchedulerRuntime
from repro.sim.batch import run_batched
from repro.sim.trace import Tracer, subscribe_tracer
from repro.threads.program import (Acquire, Compute, CtEnd, CtStart, Load,
                                   OpDone, Release, Scan, Store, YieldCore)
from repro.threads.thread import Program, SimThread, ThreadState

_KIND_STEP = 0
_KIND_ARRIVAL = 1

#: Selectable run-loop implementations.  ``generic`` is the tuple-heap
#: event loop below — the oracle every other kernel is differentially
#: verified against; ``batched`` is :func:`repro.sim.batch.run_batched`,
#: which macro-steps quiescent cores on an array-backed indexed heap and
#: produces byte-identical event streams and counters.
KERNELS = ("generic", "batched")

_default_kernel = "generic"


def set_default_kernel(name: str) -> None:
    """Set the kernel used by subsequently constructed simulators that
    don't pass ``kernel=`` explicitly (mirrors ``set_default_checker``:
    benchmark CLIs flip this once instead of threading a parameter
    through every figure runner)."""
    global _default_kernel
    if name not in KERNELS:
        raise SimulationError(
            f"unknown kernel {name!r} (choose from {', '.join(KERNELS)})")
    _default_kernel = name

# Factory consulted when a Simulator is built without an explicit
# ``checker`` — lets ``repro.bench --verify`` turn invariant checking on
# for every simulator an experiment constructs without threading a
# parameter through each figure runner.  The engine only duck-types the
# result (``bind``/``after_event``), so repro.verify stays un-imported
# here and no cycle forms.
_default_checker_factory: Optional[Callable[[], Any]] = None


def set_default_checker(factory: Optional[Callable[[], Any]]) -> None:
    """Install (or clear, with None) a checker factory applied to every
    subsequently constructed :class:`Simulator`."""
    global _default_checker_factory
    _default_checker_factory = factory

# Tuple indices into CounterSnapshot.values for the per-operation
# attribution deltas published on OperationFinished (tuple indexing beats
# the snapshot's name-lookup __getattr__ on the obs-enabled hot path).
_IDX_REMOTE = COUNTER_FIELDS.index("remote_hits")
_IDX_DRAM = COUNTER_FIELDS.index("dram_loads")
_IDX_MEM = COUNTER_FIELDS.index("mem_cycles")


@dataclass
class RunResult:
    """Summary of one :meth:`Simulator.run` call."""

    scheduler: str
    horizon_cycles: int
    ops: int
    throughput_ops_per_sec: float
    migrations: int
    steps: int
    counters: Dict[str, int] = field(default_factory=dict)
    dram_lines: int = 0
    dram_queued_cycles: int = 0
    cross_chip_messages: int = 0
    #: Operation-latency histogram (cycles between ``ct_start`` and
    #: ``ct_end``); populated when observability metrics are attached.
    op_latency: Optional[HistogramSummary] = None
    #: In-flight migration cycles histogram; same condition.
    migration_latency: Optional[HistogramSummary] = None
    #: Full metrics-registry snapshot (empty without observability).
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def kops_per_sec(self) -> float:
        """Thousands of operations per second (Figure 4's y-axis unit)."""
        return self.throughput_ops_per_sec / 1e3

    def __str__(self) -> str:
        return (f"RunResult({self.scheduler}: {self.ops} ops in "
                f"{self.horizon_cycles} cycles = "
                f"{self.kops_per_sec:,.0f} kops/s, "
                f"{self.migrations} migrations)")


class Simulator:
    """Event-driven executor for one machine + scheduler + thread set."""

    def __init__(self, machine: Machine, scheduler: SchedulerRuntime,
                 tracer: Optional[Tracer] = None,
                 obs: Optional[Observability] = None,
                 checker: Optional[Any] = None,
                 faults: Optional[Any] = None,
                 kernel: Optional[str] = None) -> None:
        if kernel is None:
            kernel = _default_kernel
        elif kernel not in KERNELS:
            raise SimulationError(
                f"unknown kernel {kernel!r} "
                f"(choose from {', '.join(KERNELS)})")
        #: Run-loop implementation: "generic" or "batched".  The batched
        #: kernel silently defers to the generic loop while a checker or
        #: fault plan is attached — both are defined to run between
        #: events and to introspect the tuple heap (see DESIGN.md §13).
        self.kernel = kernel
        self.machine = machine
        self.memory = machine.memory
        # Bound-method handles for the per-item handlers (one attribute
        # hop instead of two on every memory access).
        self._mem_load = machine.memory.load
        self._mem_store = machine.memory.store
        self._mem_scan = machine.memory.scan
        self.scheduler = scheduler
        self.obs = obs
        self.tracer = tracer
        if tracer is not None:
            # Legacy tracers ride the bus: a bridge converts typed
            # lifecycle events back into flat TraceEvents.
            if self.obs is None:
                self.obs = Observability(events=False, metrics=False,
                                         flight=0)
            subscribe_tracer(self.obs.bus, tracer)
        # Publishers hold these locals; None means "construct nothing".
        self._bus = self.obs.bus if self.obs is not None else None
        self._h_oplat = self._h_miglat = None
        self._c_ops = self._c_migrations = self._c_lock_spins = None
        # Memory-event attribution context: the memory system's per-core
        # current-object list when capture_memory is on, else None.
        self._mem_ctx = None
        scheduler.obs = self.obs
        scheduler.bind(machine)
        if self.obs is not None:
            self.obs.begin_run(scheduler.name)
            machine.memory.attach_observability(self.obs)
            self._mem_ctx = machine.memory.op_obj
            metrics = self.obs.metrics
            if metrics is not None:
                self._h_oplat = metrics.histogram(
                    "sim.op_latency_cycles", OP_LATENCY_BUCKETS)
                self._h_miglat = metrics.histogram(
                    "sim.migration_cycles", MIGRATION_BUCKETS)
                self._c_ops = metrics.counter("sim.ops")
                self._c_migrations = metrics.counter("sim.migrations")
                self._c_lock_spins = metrics.counter("sim.lock_spins")
                depth_hist = metrics.histogram(
                    "sim.runqueue_depth", QUEUE_DEPTH_BUCKETS)
                for core in machine.cores:
                    core.runqueue.depth_hist = depth_hist
        self.threads: List[SimThread] = []
        self._heap: List[tuple] = []
        self._seq = 0
        self.total_ops = 0
        self.total_migrations = 0
        self.total_steps = 0
        self._spec = machine.spec
        # Heterogeneous-core support (§6.1): per-core compute divisors,
        # or None for the homogeneous fast path.
        if machine.spec.core_speeds is None:
            self._speeds = None
        else:
            self._speeds = [machine.spec.speed_of(c)
                            for c in range(machine.n_cores)]
        self._ops_at_run_start = 0
        # Idle-poll interval is a static scheduler property (class
        # attribute on work stealing); hoisted out of the per-event path.
        self._idle_poll = getattr(scheduler, "idle_poll_interval", 0)
        # Precomputed per-item-class dispatch table.  One dict lookup per
        # step replaces the old type-comparison chain; the table covers
        # exactly ITEM_TYPES (tests assert this stays true).
        self._dispatch: Dict[type, Callable[[Core, SimThread, Any], None]] \
            = {
                Compute: self._do_compute,
                Scan: self._do_scan,
                Load: self._do_load,
                Store: self._do_store,
                Acquire: self._do_acquire,
                Release: self._do_release,
                CtStart: self._do_ct_start,
                CtEnd: self._do_ct_end,
                YieldCore: self._do_yield,
                OpDone: self._do_op_done,
            }
        # Verification layer (repro.verify), duck-typed so the engine
        # never imports it: both objects expose bind(sim) and
        # after_event(...).  When disabled (the default) the run loop
        # pays two ``is not None`` tests per event and nothing else.
        if checker is None and _default_checker_factory is not None:
            checker = _default_checker_factory()
        self.checker = checker
        self.faults = faults
        if faults is not None:
            faults.bind(self)
        if checker is not None:
            checker.bind(self)

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------

    def spawn(self, program: Union[Program, SimThread],
              name: Optional[str] = None,
              core_id: Optional[int] = None) -> SimThread:
        """Create a thread and place it on a core.

        ``core_id`` pins the thread explicitly; otherwise the scheduler's
        placement policy decides (round-robin for the thread scheduler).
        """
        thread = (program if isinstance(program, SimThread)
                  else SimThread(program, name))
        if core_id is None:
            core_id = self.scheduler.place_thread(thread)
        if not 0 <= core_id < self.machine.n_cores:
            raise SimulationError(
                f"scheduler placed {thread.name} on invalid core {core_id}")
        thread.home_core = core_id
        thread.created_at = self.machine.cores[core_id].time
        self.threads.append(thread)
        self._enqueue_thread(thread, core_id,
                             self.machine.cores[core_id].time)
        bus = self._bus
        if bus is not None and bus.wants(ThreadSpawned):
            bus.publish(ThreadSpawned(thread.created_at, core_id,
                                      thread.name))
        return thread

    def spawn_per_core(self, make_program, name_prefix: str = "thread"):
        """One thread per core, as in the paper's workloads.

        ``make_program(core_id)`` must return a fresh generator.
        """
        return [
            self.spawn(make_program(core_id), f"{name_prefix}-{core_id}",
                       core_id=core_id)
            for core_id in range(self.machine.n_cores)
        ]

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_ops: Optional[int] = None,
            max_steps: Optional[int] = None) -> RunResult:
        """Execute events until a limit is hit.

        ``until``     — stop before any event later than this cycle count
                        (the event is left queued, so ``run`` can resume);
        ``max_ops``   — stop once this many operations completed in this
                        call;
        ``max_steps`` — hard step bound (guards runaway programs in tests).

        A run that dies with a :class:`~repro.errors.SimulationError`
        (including :class:`~repro.errors.DeadlockError`) dumps the
        observability flight recorder first, so failed runs leave a
        post-mortem trail.
        """
        if until is None and max_ops is None and max_steps is None:
            raise SimulationError("run() needs a stopping condition")
        try:
            if self.kernel == "batched" and self.checker is None \
                    and self.faults is None:
                return run_batched(self, until, max_ops, max_steps)
            return self._run(until, max_ops, max_steps)
        except SimulationError as exc:
            if self.obs is not None:
                self.obs.on_crash(exc)
            raise

    def _run(self, until: Optional[int], max_ops: Optional[int],
             max_steps: Optional[int]) -> RunResult:
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        cores = self.machine.cores
        step = self._step
        checker = self.checker
        faults = self.faults
        ops_target = (self.total_ops + max_ops) if max_ops else None
        steps_left = max_steps if max_steps is not None else -1
        self._ops_at_run_start = self.total_ops
        while heap:
            if ops_target is not None and self.total_ops >= ops_target:
                break
            if steps_left == 0:
                break
            entry = heappop(heap)
            time, _, kind, payload = entry
            if until is not None and time > until:
                heappush(heap, entry)
                break
            if kind == _KIND_STEP:
                core: Core = payload
                core.in_heap = False
                step(core, time)
                if core.current is not None or core.runqueue:
                    # Inlined _push_step: re-arm the core's next step.
                    if not core.in_heap:
                        core.in_heap = True
                        self._seq += 1
                        heappush(heap,
                                 (core.time, self._seq, _KIND_STEP, core))
                else:
                    core.note_idle()
                    self._maybe_poll_idle(core, time)
            else:  # arrival
                thread, core_id = payload
                core = cores[core_id]
                core.counters.migrations_in += 1
                thread.state = ThreadState.READY
                thread.arrive_at = None
                self._enqueue_thread(thread, core_id, time)
                bus = self._bus
                if bus is not None and bus.wants(ThreadArrived):
                    bus.publish(ThreadArrived(time, core_id, thread.name))
            steps_left -= 1
            # Verification hooks run *after* the event: faults first (so
            # an injected bug is live state), then the checker that must
            # catch it.
            if faults is not None:
                faults.after_event(self, time)
            if checker is not None:
                checker.after_event(time)
        else:
            if any(not t.done for t in self.threads):
                raise DeadlockError(
                    "event heap drained with live threads: "
                    + ", ".join(t.name for t in self.threads if not t.done))
        horizon = until if until is not None else self.machine.now
        self.machine.settle_idle(horizon)
        return self._result(horizon)

    def _result(self, horizon: int) -> RunResult:
        memory = self.memory
        op_latency = migration_latency = None
        metrics_snapshot: Dict[str, Any] = {}
        if self._h_oplat is not None:
            op_latency = self._h_oplat.summary()
            migration_latency = self._h_miglat.summary()
            metrics_snapshot = self.obs.metrics_snapshot()
        return RunResult(
            op_latency=op_latency,
            migration_latency=migration_latency,
            metrics=metrics_snapshot,
            scheduler=self.scheduler.name,
            horizon_cycles=horizon,
            ops=self.total_ops,
            throughput_ops_per_sec=(
                self.total_ops / self._spec.seconds(horizon)
                if horizon > 0 else 0.0),
            migrations=self.total_migrations,
            steps=self.total_steps,
            counters=aggregate(memory.counters),
            dram_lines=memory.dram.total_lines_served,
            dram_queued_cycles=memory.dram.total_queued_cycles,
            cross_chip_messages=memory.interconnect.cross_chip_messages(),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _push(self, time: int, kind: int, payload: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, payload))

    def _push_step(self, core: Core) -> None:
        if not core.in_heap:
            core.in_heap = True
            self._push(core.time, _KIND_STEP, core)

    def _enqueue_thread(self, thread: SimThread, core_id: int,
                        at: int) -> None:
        core = self.machine.cores[core_id]
        core.runqueue.push(thread)
        if core.current is None and not core.in_heap:
            core.note_woken(max(at, core.time))
            self._push_step(core)
        elif len(core.runqueue) > 1:
            # Queued-up work: give parked cores a chance to scavenge it
            # (no-op unless the scheduler polls while idle).
            interval = self._idle_poll
            if interval:
                for other in self.machine.cores:
                    if other.current is None and not other.in_heap \
                            and not other.runqueue:
                        other.in_heap = True
                        self._push(max(other.time, at) + interval,
                                   _KIND_STEP, other)

    def _maybe_poll_idle(self, core: Core, now: int) -> None:
        """Schedule an idle-poll step for schedulers that scavenge work.

        A parked core receives no events, so a scheduler whose
        ``idle_poll_interval`` is positive (work stealing) gets the core
        re-woken periodically while other cores have queued threads.
        """
        interval = self._idle_poll
        if not interval or core.in_heap:
            return
        if any(c.runqueue for c in self.machine.cores if c is not core):
            core.in_heap = True
            self._push(max(core.time, now) + interval, _KIND_STEP, core)

    def _step(self, core: Core, now: int) -> None:
        thread = core.current
        if thread is None:
            thread = core.runqueue.pop()
            if thread is None:
                thread = self.scheduler.on_idle(core, core.time)
                if thread is not None:
                    # Stolen work starts when the poll fired, not at the
                    # stale clock of a long-idle core.
                    core.note_woken(max(now, core.time))
            if thread is None:
                return
            thread.state = ThreadState.RUNNING
            thread.core = core.core_id
            core.current = thread
            mem_ctx = self._mem_ctx
            if mem_ctx is not None and thread.ct_object is not None:
                # Resuming mid-operation (after a migration or yield):
                # repoint the core's memory-attribution context.
                mem_ctx[core.core_id] = thread.ct_obj_name
        item = thread.pending
        if item is None:
            # Inlined thread.advance(): the engine only steps live
            # threads, so the DONE guard in advance() cannot fire here.
            try:
                item = next(thread.program)
            except StopIteration:
                self._finish_thread(thread, core)
                return
            thread.pending = item
        self.total_steps += 1
        core.steps += 1
        handler = self._dispatch.get(item.__class__)
        if handler is None:
            raise SimulationError(
                f"thread {thread.name} yielded unknown item {item!r}")
        handler(core, thread, item)

    def _finish_thread(self, thread: SimThread, core: Core) -> None:
        thread.state = ThreadState.DONE
        thread.finished_at = core.time
        core.current = None
        if self._mem_ctx is not None:
            self._mem_ctx[core.core_id] = None
        self.scheduler.on_thread_done(thread, core, core.time)
        bus = self._bus
        if bus is not None and bus.wants(ThreadFinished):
            bus.publish(ThreadFinished(core.time, core.core_id,
                                       thread.name))

    # ------------------------------------------------------------------
    # per-item handlers (dispatch-table targets)
    # ------------------------------------------------------------------

    def _do_compute(self, core: Core, thread: SimThread, item: Any) -> None:
        cycles = item.cycles
        if self._speeds is not None and cycles:
            # A faster core retires the same work in fewer cycles.
            cycles = max(1, round(cycles / self._speeds[core.core_id]))
        core.counters.busy_cycles += cycles
        core.time += cycles
        thread.pending = None

    def _do_scan(self, core: Core, thread: SimThread, item: Any) -> None:
        latency = self._mem_scan(core.core_id, item.addr, item.nbytes,
                                 core.time, item.per_line_compute)
        core.counters.busy_cycles += latency
        core.time += latency
        thread.pending = None

    def _do_load(self, core: Core, thread: SimThread, item: Any) -> None:
        latency = self._mem_load(core.core_id, item.addr, core.time)
        core.counters.busy_cycles += latency
        core.time += latency
        thread.pending = None

    def _do_store(self, core: Core, thread: SimThread, item: Any) -> None:
        latency = self._mem_store(core.core_id, item.addr, core.time)
        core.counters.busy_cycles += latency
        core.time += latency
        thread.pending = None

    def _do_acquire(self, core: Core, thread: SimThread, item: Any) -> None:
        lock = item.lock
        counters = core.counters
        if lock.try_acquire(thread):
            latency = self._mem_store(core.core_id, lock.addr, core.time)
            counters.lock_acquires += 1
            thread.spinning = False
            thread.pending = None
        else:
            latency = (self._mem_load(core.core_id, lock.addr, core.time)
                       + self._spec.spin_backoff)
            counters.lock_spins += 1
            thread.spin_cycles += latency
            if self._c_lock_spins is not None:
                self._c_lock_spins.inc()
            if not thread.spinning:
                # One event per contended acquire, not per retry —
                # retries are counted by the lock_spins metric.
                thread.spinning = True
                bus = self._bus
                if bus is not None and bus.wants(LockContended):
                    bus.publish(LockContended(core.time, core.core_id,
                                              thread.name, lock.name))
            # pending stays set: the acquire retries next step.
        counters.busy_cycles += latency
        core.time += latency

    def _do_release(self, core: Core, thread: SimThread, item: Any) -> None:
        item.lock.release(thread)
        latency = self._mem_store(core.core_id, item.lock.addr, core.time)
        core.counters.busy_cycles += latency
        core.time += latency
        thread.pending = None

    def _do_yield(self, core: Core, thread: SimThread, item: Any) -> None:
        thread.pending = None
        core.current = None
        if self._mem_ctx is not None:
            self._mem_ctx[core.core_id] = None
        core.runqueue.push(thread)

    def _do_op_done(self, core: Core, thread: SimThread, item: Any) -> None:
        core.counters.ops_completed += 1
        thread.ops_completed += 1
        self.total_ops += 1
        if self._c_ops is not None:
            self._c_ops.inc()
        thread.pending = None

    def _do_ct_start(self, core: Core, thread: SimThread, item: Any) -> None:
        self._ct_start(core, thread, item.obj)

    def _do_ct_end(self, core: Core, thread: SimThread, item: Any) -> None:
        self._ct_end(core, thread)

    def _ct_start(self, core: Core, thread: SimThread, obj: Any) -> None:
        snapshot = core.counters.snapshot()
        target = self.scheduler.on_ct_start(thread, obj, core, core.time)
        thread.begin_operation(obj, snapshot, core.time)
        thread.ct_entry_core = core.core_id
        thread.ct_entry_migrations = thread.migrations
        thread.ct_entry_spin = thread.spin_cycles
        thread.pending = None
        name = None
        bus = self._bus
        if bus is not None and bus.wants(OperationStarted):
            name = getattr(obj, "name", None) or repr(obj)
            bus.publish(OperationStarted(core.time, core.core_id,
                                         thread.name, name))
        mem_ctx = self._mem_ctx
        if mem_ctx is not None:
            if name is None:
                name = getattr(obj, "name", None) or repr(obj)
            thread.ct_obj_name = name
            mem_ctx[core.core_id] = name
        if target is not None and target != core.core_id:
            self._migrate(core, thread, target)

    def _ct_end(self, core: Core, thread: SimThread) -> None:
        # The runtime sees the thread while ct_object / entry snapshot are
        # still set, so it can attribute misses to the object (§4).
        target = self.scheduler.on_ct_end(thread, core, core.time)
        obj = thread.ct_object
        cycles = core.time - thread.ct_started_at
        bus = self._bus
        finished = None
        if bus is not None and bus.wants(OperationFinished):
            # Attribution deltas are only meaningful when the whole
            # operation ran on the entry core; after a mid-operation
            # migration the entry snapshot belongs to another counter
            # bank and the fields stay None.
            dram = remote = mem_stall = spin = None
            snap = thread.ct_entry_snapshot
            if (snap is not None and thread.ct_entry_core == core.core_id
                    and thread.ct_entry_migrations == thread.migrations):
                values = snap.values
                counters = core.counters
                dram = counters.dram_loads - values[_IDX_DRAM]
                remote = counters.remote_hits - values[_IDX_REMOTE]
                mem_stall = counters.mem_cycles - values[_IDX_MEM]
                spin = thread.spin_cycles - thread.ct_entry_spin
            finished = OperationFinished(
                core.time, core.core_id, thread.name,
                getattr(obj, "name", None) or repr(obj), cycles,
                dram, remote, mem_stall, spin)
        thread.end_operation()
        core.counters.ops_completed += 1
        self.total_ops += 1
        thread.pending = None
        if self._h_oplat is not None:
            self._h_oplat.observe(cycles)
            self._c_ops.inc()
        if finished is not None:
            bus.publish(finished)
        if self._mem_ctx is not None:
            self._mem_ctx[core.core_id] = None
        if target is not None and target != core.core_id:
            self._migrate(core, thread, target)

    def _migrate(self, core: Core, thread: SimThread, target: int) -> None:
        if not 0 <= target < self.machine.n_cores:
            raise SimulationError(
                f"scheduler migrated {thread.name} to invalid core {target}")
        spec = self._spec
        thread.state = ThreadState.MIGRATING
        thread.core = None
        thread.migrations += 1
        core.counters.migrations_out += 1
        core.current = None
        if self._mem_ctx is not None:
            self._mem_ctx[core.core_id] = None
        arrive = core.time + spec.migration_cost
        if spec.poll_interval:
            grid = spec.poll_interval
            arrive = ((arrive + grid - 1) // grid) * grid
        thread.wait_cycles += arrive - core.time
        thread.arrive_at = arrive
        self.total_migrations += 1
        self.memory.interconnect.count_migration(
            core.chip_id, self._spec.chip_of(target))
        self._push(arrive, _KIND_ARRIVAL, (thread, target))
        if self._c_migrations is not None:
            self._c_migrations.inc()
            self._h_miglat.observe(arrive - core.time)
        bus = self._bus
        if bus is not None and bus.wants(MigrationStarted):
            bus.publish(MigrationStarted(core.time, core.core_id,
                                         thread.name, target, arrive))

"""Assembly of a complete simulated machine.

:class:`Machine` wires a :class:`~repro.cpu.topology.MachineSpec` into
concrete parts: the memory system (caches, coherence, DRAM, interconnect),
one :class:`~repro.cpu.core.Core` per hardware core, and a shared simulated
address space for workloads to allocate data in.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.core import Core
from repro.cpu.topology import MachineSpec
from repro.errors import ConfigError
from repro.mem.layout import AddressSpace
from repro.mem.system import CacheFactory, MemorySystem, _default_cache_factory


class Machine:
    """A ready-to-run simulated multicore machine."""

    def __init__(self, spec: Optional[MachineSpec] = None,
                 cache_factory: CacheFactory = _default_cache_factory) -> None:
        self.spec = spec or MachineSpec.amd16()
        self.spec.validate()
        self.memory = MemorySystem(self.spec, cache_factory)
        self.cores: List[Core] = [
            Core(core_id, self.spec.chip_of(core_id),
                 self.memory.counters[core_id])
            for core_id in range(self.spec.n_cores)
        ]
        self.address_space = AddressSpace(line_size=self.spec.line_size)

    @property
    def n_cores(self) -> int:
        return self.spec.n_cores

    def core(self, core_id: int) -> Core:
        if not 0 <= core_id < len(self.cores):
            raise ConfigError(f"no core {core_id} on {self.spec.name}")
        return self.cores[core_id]

    def cores_of_chip(self, chip_id: int) -> List[Core]:
        return [self.cores[i] for i in self.spec.cores_of_chip(chip_id)]

    @property
    def now(self) -> int:
        """Latest core clock (the machine-wide notion of elapsed time)."""
        return max(core.time for core in self.cores)

    def total_ops(self) -> int:
        return sum(bank.ops_completed for bank in self.memory.counters)

    def throughput(self, horizon_cycles: Optional[int] = None) -> float:
        """Completed operations per *second* of simulated time."""
        horizon = horizon_cycles if horizon_cycles is not None else self.now
        if horizon <= 0:
            return 0.0
        return self.total_ops() / self.spec.seconds(horizon)

    def settle_idle(self, horizon: Optional[int] = None) -> None:
        """Account trailing idle time on every core (end of a run)."""
        at = horizon if horizon is not None else self.now
        for core in self.cores:
            core.settle_idle(at)

    def __repr__(self) -> str:
        return (f"Machine({self.spec.name}: {self.spec.n_chips} chips x "
                f"{self.spec.cores_per_chip} cores)")

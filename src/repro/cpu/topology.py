"""Machine topology and timing specification.

The paper evaluates CoreTime on a 16-core AMD machine: four quad-core 2 GHz
Opteron chips connected by a square interconnect.  Each core has private L1
and L2 caches and the four cores of a chip share an L3.  The published
latencies are:

======================  =========
level                   cycles
======================  =========
L1 hit                  3
L2 hit                  14
L3 hit                  75
remote cache, same chip 127
remote, most distant    336
======================  =========

:class:`MachineSpec` captures all of that plus the knobs our simulator adds
(DRAM bandwidth, stream-prefetch discount, migration cost).  Three presets
are provided:

* :meth:`MachineSpec.amd16` — the paper's machine, full size.
* :meth:`MachineSpec.scaled` — the same machine with all capacities divided
  by a scale factor, preserving every ratio that shapes the results while
  keeping pure-Python simulations fast.
* :meth:`MachineSpec.future` — the §6.1 thought experiment: more cores,
  larger caches, relatively scarcer off-chip bandwidth and cheaper
  migration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigError

#: Cache line size used throughout the simulator (bytes).
DEFAULT_LINE_SIZE = 64


@dataclass(frozen=True)
class LatencySpec:
    """Access latencies in cycles, following the paper's Table in §5."""

    l1: int = 3
    l2: int = 14
    l3: int = 75
    #: Fetch from the cache of another core on the same chip.
    remote_same_chip: int = 127
    #: Added per interconnect hop when fetching from another chip's cache.
    remote_hop: int = 60
    #: Effective per-line cost of a remote-cache fetch that continues a
    #: sequential stream (the prefetcher pipelines coherent reads much as
    #: it pipelines DRAM reads).
    remote_stream: int = 70
    #: DRAM access through the local memory controller.
    dram_base: int = 230
    #: Added per interconnect hop to a remote DRAM bank (336 at 2 hops).
    dram_hop: int = 53
    #: Effective per-line cost of a DRAM access that continues a sequential
    #: stream (hardware prefetcher hides most of the latency).
    dram_stream: int = 55
    #: Cycles a line transfer occupies a memory controller; models off-chip
    #: bandwidth (64 B at ~8 B/cycle-equivalent by default).
    dram_occupancy: int = 8
    #: Cost charged to a store that must invalidate remote copies.
    invalidate: int = 100

    def validate(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ConfigError(f"latency {field.name} must be >= 0, got {value}")
        if not (self.l1 <= self.l2 <= self.l3):
            raise ConfigError("expected l1 <= l2 <= l3 latencies")


@dataclass(frozen=True)
class MachineSpec:
    """Complete description of a simulated multicore machine."""

    name: str = "amd16"
    n_chips: int = 4
    cores_per_chip: int = 4
    freq_hz: float = 2e9
    line_size: int = DEFAULT_LINE_SIZE
    #: Private per-core capacities and the per-chip shared L3, in bytes.
    l1_bytes: int = 64 * 1024
    l2_bytes: int = 512 * 1024
    l3_bytes: int = 2 * 1024 * 1024
    latency: LatencySpec = dataclasses.field(default_factory=LatencySpec)
    #: Cost of migrating a thread between cores (paper: measured 2000).
    migration_cost: int = 2000
    #: Destination cores notice pending migrations instantly by default;
    #: a positive value quantises arrivals to the polling grid (§4).
    poll_interval: int = 0
    #: Cycles a failed spin-lock attempt waits before retrying.
    spin_backoff: int = 50
    #: Per-core compute-speed factors for §6.1's heterogeneous-cores
    #: scenario: a factor of 2.0 executes Compute work in half the
    #: cycles.  None means homogeneous (every core 1.0).  Memory
    #: latencies are properties of the fabric and do not scale.
    core_speeds: Optional[Tuple[float, ...]] = None

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def n_cores(self) -> int:
        return self.n_chips * self.cores_per_chip

    @property
    def l1_lines(self) -> int:
        return self.l1_bytes // self.line_size

    @property
    def l2_lines(self) -> int:
        return self.l2_bytes // self.line_size

    @property
    def l3_lines(self) -> int:
        return self.l3_bytes // self.line_size

    @property
    def onchip_bytes(self) -> int:
        """Aggregate cache capacity the paper counts as "on-chip memory".

        The paper counts L2 and L3 only (16 MB = 4 x 2 MB L3 + 16 x 512 KB
        L2); our cache levels are exclusive so the sum is attainable.
        """
        return self.n_cores * self.l2_bytes + self.n_chips * self.l3_bytes

    @property
    def per_core_budget_bytes(self) -> int:
        """Cache capacity CoreTime may pack objects into, per core.

        A core owns its private L2 plus an even share of its chip's L3.
        """
        return self.l2_bytes + self.l3_bytes // self.cores_per_chip

    def chip_of(self, core_id: int) -> int:
        """Chip index owning ``core_id``."""
        return core_id // self.cores_per_chip

    def speed_of(self, core_id: int) -> float:
        """Compute-speed factor of ``core_id`` (1.0 when homogeneous)."""
        if self.core_speeds is None:
            return 1.0
        return self.core_speeds[core_id]

    def cores_of_chip(self, chip_id: int) -> range:
        """Core ids located on ``chip_id``."""
        start = chip_id * self.cores_per_chip
        return range(start, start + self.cores_per_chip)

    def chip_distance(self, chip_a: int, chip_b: int) -> int:
        """Interconnect hops between two chips on the square interconnect.

        The four chips sit on the corners of a square: adjacent corners are
        one hop apart, diagonal corners two.  Machines with a different chip
        count fall back to a ring distance, which preserves the property
        that some chips are farther than others.
        """
        if chip_a == chip_b:
            return 0
        if self.n_chips == 4:
            # Corners 0-1-3-2-0 form the square's edges; 0-3 and 1-2 are
            # the diagonals.
            return 2 if (chip_a ^ chip_b) == 3 else 1
        ring = abs(chip_a - chip_b)
        return min(ring, self.n_chips - ring)

    @property
    def max_hops(self) -> int:
        if self.n_chips == 1:
            return 0
        if self.n_chips == 4:
            return 2
        return self.n_chips // 2

    def seconds(self, cycles: float) -> float:
        """Convert simulated cycles to seconds at this machine's frequency."""
        return cycles / self.freq_hz

    def cycles(self, seconds: float) -> int:
        return int(seconds * self.freq_hz)

    def validate(self) -> None:
        if self.n_chips < 1 or self.cores_per_chip < 1:
            raise ConfigError("machine needs at least one chip and one core")
        if self.line_size < 8 or self.line_size & (self.line_size - 1):
            raise ConfigError("line_size must be a power of two >= 8")
        for label, size in (("l1", self.l1_bytes), ("l2", self.l2_bytes),
                            ("l3", self.l3_bytes)):
            if size < self.line_size:
                raise ConfigError(f"{label}_bytes smaller than one line")
        if self.freq_hz <= 0:
            raise ConfigError("freq_hz must be positive")
        if self.migration_cost < 0 or self.poll_interval < 0:
            raise ConfigError("migration_cost/poll_interval must be >= 0")
        if self.core_speeds is not None:
            if len(self.core_speeds) != self.n_cores:
                raise ConfigError(
                    f"core_speeds has {len(self.core_speeds)} entries "
                    f"for {self.n_cores} cores")
            if any(speed <= 0 for speed in self.core_speeds):
                raise ConfigError("core speeds must be positive")
        self.latency.validate()

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------

    @classmethod
    def amd16(cls, **overrides: object) -> "MachineSpec":
        """The paper's 16-core AMD machine (§5, Hardware)."""
        spec = cls(**overrides) if overrides else cls()
        spec.validate()
        return spec

    @classmethod
    def scaled(cls, factor: int = 8, **overrides: object) -> "MachineSpec":
        """The AMD machine with capacities divided by ``factor``.

        Latencies, core counts and migration cost are untouched; only cache
        capacities shrink.  Workloads built with the matching scale factor
        (see :class:`repro.workloads.dirlookup.DirWorkloadSpec.scaled`)
        exercise identical capacity ratios at a fraction of the wall-clock
        cost.
        """
        if factor < 1:
            raise ConfigError("scale factor must be >= 1")
        base = cls()
        fields = {
            "name": f"amd16/scaled{factor}",
            "l1_bytes": max(base.line_size * 4, base.l1_bytes // factor),
            "l2_bytes": max(base.line_size * 8, base.l2_bytes // factor),
            "l3_bytes": max(base.line_size * 16, base.l3_bytes // factor),
            # Operations shrink with the caches (scaled workloads scan
            # 1/factor as many lines), so the migration cost must shrink
            # too to preserve the migration-cost : operation-cost ratio
            # that decides whether O2 scheduling pays off.
            "migration_cost": max(100, base.migration_cost // factor),
            "spin_backoff": max(10, base.spin_backoff // 2),
        }
        fields.update(overrides)  # type: ignore[arg-type]
        spec = dataclasses.replace(base, **fields)  # type: ignore[arg-type]
        spec.validate()
        return spec

    @classmethod
    def tiny(cls, **overrides: object) -> "MachineSpec":
        """A 2-chip, 2-cores-per-chip machine with very small caches.

        Small enough that capacity effects appear within a few hundred
        accesses, with the paper's latency structure intact.  This is the
        one topology factory shared by the test suite
        (``tests/helpers.tiny_spec``) and the fuzzer
        (:mod:`repro.verify.fuzz`), so their machine-builder defaults
        cannot drift apart.
        """
        fields = {
            "name": "tiny", "n_chips": 2, "cores_per_chip": 2,
            "l1_bytes": 512, "l2_bytes": 2048, "l3_bytes": 8192,
            "migration_cost": 200, "spin_backoff": 20,
        }
        fields.update(overrides)  # type: ignore[arg-type]
        spec = cls(**fields)  # type: ignore[arg-type]
        spec.validate()
        return spec

    @classmethod
    def future(cls, n_chips: int = 8, cores_per_chip: int = 8,
               **overrides: object) -> "MachineSpec":
        """A §6.1 "future multicore": more cores, bigger caches, scarcer
        off-chip bandwidth, cheaper migration (active messages)."""
        base = cls()
        fields = {
            "name": f"future{n_chips}x{cores_per_chip}",
            "n_chips": n_chips,
            "cores_per_chip": cores_per_chip,
            "l2_bytes": 1024 * 1024,
            "l3_bytes": 8 * 1024 * 1024,
            "latency": dataclasses.replace(
                base.latency,
                dram_base=400, dram_hop=60, dram_stream=120,
                dram_occupancy=32,
            ),
            "migration_cost": 500,
        }
        fields.update(overrides)  # type: ignore[arg-type]
        spec = dataclasses.replace(base, **fields)  # type: ignore[arg-type]
        spec.validate()
        return spec

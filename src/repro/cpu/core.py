"""A simulated CPU core.

A core owns a local clock (``time``, in cycles), a run queue of cooperative
threads, and a reference to its event-counter bank.  The engine advances a
core by executing one instruction item of its current thread and moving the
clock by the item's cost; cores therefore progress at different rates, and
a heap in the engine keeps global order.
"""

from __future__ import annotations

from typing import Optional

from repro.mem.counters import CoreCounters
from repro.threads.runqueue import RunQueue
from repro.threads.thread import SimThread


class Core:
    """One core of the simulated machine."""

    __slots__ = ("core_id", "chip_id", "time", "runqueue", "current",
                 "counters", "idle_since", "in_heap", "steps")

    def __init__(self, core_id: int, chip_id: int,
                 counters: CoreCounters) -> None:
        self.core_id = core_id
        self.chip_id = chip_id
        #: Local clock, in cycles.
        self.time = 0
        self.runqueue = RunQueue(core_id)
        #: Thread currently executing, if any.
        self.current: Optional[SimThread] = None
        self.counters = counters
        #: Clock value when the core last became idle (None = not idle).
        #: Cores are born idle; the first enqueue ends the period.
        self.idle_since: Optional[int] = 0
        #: True while a step event for this core sits in the engine heap.
        self.in_heap = False
        #: Instruction items executed (engine statistics).
        self.steps = 0

    @property
    def busy(self) -> bool:
        return self.current is not None or bool(self.runqueue)

    @property
    def load(self) -> int:
        """Runnable threads on this core (queue plus current)."""
        return len(self.runqueue) + (1 if self.current is not None else 0)

    def note_idle(self) -> None:
        if self.idle_since is None:
            self.idle_since = self.time

    def note_woken(self, at: int) -> None:
        """Account idle time ending at ``at`` and move the clock there."""
        if self.idle_since is not None:
            if at > self.idle_since:
                self.counters.idle_cycles += at - self.idle_since
            self.idle_since = None
        if at > self.time:
            self.time = at

    def settle_idle(self, horizon: int) -> None:
        """Charge idle time up to ``horizon`` at the end of a run."""
        if self.idle_since is not None and horizon > self.idle_since:
            self.counters.idle_cycles += horizon - self.idle_since
            self.idle_since = horizon

    def __repr__(self) -> str:
        return (f"Core({self.core_id}, chip={self.chip_id}, t={self.time}, "
                f"load={self.load})")

"""CPU topology and machine assembly."""

from repro.cpu.core import Core
from repro.cpu.machine import Machine
from repro.cpu.topology import DEFAULT_LINE_SIZE, LatencySpec, MachineSpec

__all__ = [
    "Core",
    "DEFAULT_LINE_SIZE",
    "LatencySpec",
    "Machine",
    "MachineSpec",
]

"""FAT 8.3 short-name handling.

FAT directory entries store names as 11 bytes: 8 name characters plus a
3-character extension, space padded, upper case.  These helpers encode,
decode and validate short names, and generate the synthetic names the
benchmarks populate directories with.
"""

from __future__ import annotations

from repro.errors import FilesystemError

_VALID = set("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!#$%&'()-@^_`{}~")


def encode_name(name: str) -> bytes:
    """Encode ``NAME.EXT`` (or ``NAME``) into the 11-byte FAT form."""
    name = name.upper()
    if "." in name:
        stem, _, ext = name.rpartition(".")
    else:
        stem, ext = name, ""
    if not stem or len(stem) > 8 or len(ext) > 3:
        raise FilesystemError(f"invalid 8.3 name: {name!r}")
    for char in stem + ext:
        if char not in _VALID:
            raise FilesystemError(f"invalid character {char!r} in {name!r}")
    return (stem.ljust(8) + ext.ljust(3)).encode("ascii")


def decode_name(raw: bytes) -> str:
    """Decode an 11-byte FAT name field back into ``NAME.EXT`` form."""
    if len(raw) != 11:
        raise FilesystemError(f"name field must be 11 bytes, got {len(raw)}")
    stem = raw[:8].decode("ascii", "replace").rstrip()
    ext = raw[8:].decode("ascii", "replace").rstrip()
    return f"{stem}.{ext}" if ext else stem


def file_name(index: int) -> str:
    """Synthetic file name for entry ``index`` (stable across runs)."""
    return f"F{index:07d}.DAT"


def dir_name(index: int) -> str:
    """Synthetic directory name ``index`` (stable across runs)."""
    return f"DIR{index:05d}"

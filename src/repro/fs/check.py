"""FAT image consistency checking (an ``fsck`` for the substrate).

The benchmarks build large synthetic images; a silent corruption (a
crossed cluster chain, an entry that decodes to the wrong name) would
quietly change scan lengths and invalidate results.  :func:`fsck`
validates a :class:`~repro.fs.image.FatFilesystem` end to end and returns
a report; tests and the image builder's property tests run it.

Checks performed:

* boot-sector geometry matches the :class:`~repro.fs.fat.FatParams`;
* every FAT entry is FREE, EOC, or a link to an in-range cluster;
* no cluster is referenced by two chains (cross-linking);
* every directory's chain is long enough for its entry capacity;
* every used directory entry decodes and its name is unique within the
  directory;
* root entries point at valid chains.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List

from repro.fs.fat import DIR_ENTRY_SIZE, FIRST_CLUSTER, FREE, FatImage
from repro.fs.image import FatFilesystem


@dataclass
class FsckReport:
    """Outcome of a consistency check."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    directories_checked: int = 0
    entries_checked: int = 0
    clusters_used: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def __str__(self) -> str:
        status = "clean" if self.clean else f"{len(self.errors)} error(s)"
        lines = [f"fsck: {status}; {self.directories_checked} dirs, "
                 f"{self.entries_checked} entries, "
                 f"{self.clusters_used} clusters used"]
        lines.extend(f"  ERROR: {error}" for error in self.errors)
        lines.extend(f"  warn:  {warning}" for warning in self.warnings)
        return "\n".join(lines)


def _check_boot_sector(image: FatImage, report: FsckReport) -> None:
    params = image.params
    try:
        (_, oem, bytes_per_sector, sectors_per_cluster, reserved,
         n_fats, root_entries, _) = struct.unpack_from(
            "<3s8sHBHBHH", image.data, 0)
    except struct.error:
        report.error("boot sector truncated")
        return
    if image.data[510:512] != b"\x55\xaa":
        report.error("boot sector signature missing")
    if bytes_per_sector != params.bytes_per_sector:
        report.error(f"boot sector bytes/sector {bytes_per_sector} != "
                     f"params {params.bytes_per_sector}")
    if sectors_per_cluster != params.sectors_per_cluster:
        report.error("boot sector sectors/cluster mismatch")
    if root_entries != params.root_entries:
        report.error("boot sector root entry count mismatch")
    if n_fats != params.n_fats:
        report.error("boot sector FAT count mismatch")


def _check_fat_links(image: FatImage, report: FsckReport) -> None:
    params = image.params
    limit = FIRST_CLUSTER + params.n_clusters
    for cluster in range(FIRST_CLUSTER, limit):
        value = image.fat_read(cluster)
        if value == FREE or value >= 0xFFF8:
            continue
        if not FIRST_CLUSTER <= value < limit:
            report.error(
                f"cluster {cluster} links to out-of-range {value}")


def _walk_chain(image: FatImage, first: int, owner: str,
                owners: Dict[int, str], report: FsckReport) -> int:
    """Walk a chain claiming clusters for ``owner``; returns length."""
    length = 0
    cluster = first
    limit = FIRST_CLUSTER + image.params.n_clusters
    seen = set()
    while cluster < 0xFFF8:
        if not FIRST_CLUSTER <= cluster < limit:
            report.error(f"{owner}: chain reaches invalid cluster "
                         f"{cluster}")
            return length
        if cluster in seen:
            report.error(f"{owner}: chain cycles at cluster {cluster}")
            return length
        seen.add(cluster)
        previous_owner = owners.get(cluster)
        if previous_owner is not None:
            report.error(f"cluster {cluster} cross-linked between "
                         f"{previous_owner} and {owner}")
        owners[cluster] = owner
        length += 1
        cluster = image.fat_read(cluster)
    return length


def fsck(fs: FatFilesystem) -> FsckReport:
    """Validate an entire file system; never raises, always reports."""
    report = FsckReport()
    image = fs.image
    params = fs.params
    _check_boot_sector(image, report)
    _check_fat_links(image, report)

    owners: Dict[int, str] = {}
    for name, directory in sorted(fs.directories.items()):
        report.directories_checked += 1
        length = _walk_chain(image, directory.first_cluster,
                             f"dir:{name}", owners, report)
        needed = -(-directory.capacity_entries * DIR_ENTRY_SIZE
                   // params.cluster_bytes)
        if length < needed:
            report.error(f"dir:{name}: chain has {length} clusters, "
                         f"capacity needs {needed}")
            continue
        seen_names = set()
        for index in range(directory.n_entries):
            report.entries_checked += 1
            try:
                entry = directory.entry_at(index)
            except Exception as exc:     # decoding failure is the finding
                report.error(f"dir:{name}[{index}]: undecodable: {exc}")
                continue
            if entry is None:
                report.error(f"dir:{name}[{index}]: free slot below "
                             "n_entries")
                continue
            if entry.name in seen_names:
                report.error(f"dir:{name}: duplicate entry "
                             f"{entry.name!r}")
            seen_names.add(entry.name)
        # Slots past n_entries must be free.
        if directory.n_entries < directory.capacity_entries:
            probe = directory.entry_at(directory.n_entries)
            if probe is not None:
                report.warn(f"dir:{name}: data past n_entries")
    report.clusters_used = len(owners)
    return report

"""A FAT16-style in-memory file-system image.

The paper's evaluation substrate is "derived from the EFSL FAT
implementation, modified to use an in-memory image rather than disk
operations" (§5).  :class:`FatImage` is our equivalent: a real byte image
with a boot parameter block, a file-allocation table of 16-bit cluster
links, and a data region of clusters.  Directory contents are genuine
32-byte FAT entries, so "each entry uses 32 bytes of memory" holds by
construction.

The image is pure data — it knows nothing about the simulator.  The
simulation adapter (:mod:`repro.fs.efsl`) maps image offsets into the
simulated address space and charges memory costs for walking it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.errors import FilesystemError

#: FAT16 cluster-chain terminator (any value >= 0xFFF8).
EOC = 0xFFFF
#: Marker for a free cluster.
FREE = 0x0000
#: First allocatable cluster number (0 and 1 are reserved in FAT).
FIRST_CLUSTER = 2

#: Size of one directory entry, fixed by the FAT format (and quoted by the
#: paper: "each entry uses 32 bytes of memory").
DIR_ENTRY_SIZE = 32


@dataclass(frozen=True)
class FatParams:
    """Geometry of a FAT image."""

    bytes_per_sector: int = 512
    sectors_per_cluster: int = 8
    reserved_sectors: int = 1
    n_fats: int = 1
    root_entries: int = 512
    n_clusters: int = 4096

    @property
    def cluster_bytes(self) -> int:
        return self.bytes_per_sector * self.sectors_per_cluster

    @property
    def fat_bytes(self) -> int:
        # 2 bytes per cluster entry, plus the two reserved slots.
        return 2 * (self.n_clusters + FIRST_CLUSTER)

    @property
    def root_dir_bytes(self) -> int:
        return self.root_entries * DIR_ENTRY_SIZE

    @property
    def fat_offset(self) -> int:
        return self.reserved_sectors * self.bytes_per_sector

    @property
    def root_dir_offset(self) -> int:
        return self.fat_offset + self.n_fats * self.fat_bytes

    @property
    def data_offset(self) -> int:
        return self.root_dir_offset + self.root_dir_bytes

    @property
    def image_bytes(self) -> int:
        return self.data_offset + self.n_clusters * self.cluster_bytes

    def validate(self) -> None:
        if self.bytes_per_sector % DIR_ENTRY_SIZE:
            raise FilesystemError("sector size must hold whole entries")
        if self.sectors_per_cluster < 1 or self.n_clusters < 1:
            raise FilesystemError("need at least one sector and cluster")
        if self.n_clusters > 0xFFF0 - FIRST_CLUSTER:
            raise FilesystemError("too many clusters for FAT16 links")

    @classmethod
    def sized_for(cls, data_bytes: int, root_entries: int = 512,
                  cluster_bytes: int = 4096) -> "FatParams":
        """Geometry with enough clusters for ``data_bytes`` of payload."""
        sectors_per_cluster = max(1, cluster_bytes // 512)
        cluster_bytes = 512 * sectors_per_cluster
        n_clusters = max(4, -(-data_bytes // cluster_bytes) + 2)
        params = cls(sectors_per_cluster=sectors_per_cluster,
                     root_entries=root_entries, n_clusters=n_clusters)
        params.validate()
        return params


class FatImage:
    """The raw image plus cluster-chain operations."""

    def __init__(self, params: FatParams) -> None:
        params.validate()
        self.params = params
        self.data = bytearray(params.image_bytes)
        self._write_boot_sector()
        self._next_free = FIRST_CLUSTER

    # ------------------------------------------------------------------
    # boot sector
    # ------------------------------------------------------------------

    def _write_boot_sector(self) -> None:
        p = self.params
        struct.pack_into("<3s8sHBHBHH", self.data, 0,
                         b"\xeb\x3c\x90", b"REPROFAT",
                         p.bytes_per_sector, p.sectors_per_cluster,
                         p.reserved_sectors, p.n_fats, p.root_entries,
                         0)  # total sectors (16-bit slot; 0 = use 32-bit)
        self.data[510:512] = b"\x55\xaa"

    # ------------------------------------------------------------------
    # FAT entries
    # ------------------------------------------------------------------

    def _fat_entry_offset(self, cluster: int) -> int:
        if not FIRST_CLUSTER <= cluster < FIRST_CLUSTER + self.params.n_clusters:
            raise FilesystemError(f"cluster {cluster} out of range")
        return self.params.fat_offset + 2 * cluster

    def fat_read(self, cluster: int) -> int:
        offset = self._fat_entry_offset(cluster)
        return struct.unpack_from("<H", self.data, offset)[0]

    def fat_write(self, cluster: int, value: int) -> None:
        offset = self._fat_entry_offset(cluster)
        struct.pack_into("<H", self.data, offset, value)

    # ------------------------------------------------------------------
    # cluster allocation
    # ------------------------------------------------------------------

    def alloc_cluster(self) -> int:
        limit = FIRST_CLUSTER + self.params.n_clusters
        cluster = self._next_free
        while cluster < limit and self.fat_read(cluster) != FREE:
            cluster += 1
        if cluster >= limit:
            raise FilesystemError("image out of clusters")
        self._next_free = cluster + 1
        self.fat_write(cluster, EOC)
        return cluster

    def alloc_chain(self, n_clusters: int) -> int:
        """Allocate a chain of ``n_clusters``; returns the first cluster."""
        if n_clusters < 1:
            raise FilesystemError("chain needs at least one cluster")
        first = self.alloc_cluster()
        previous = first
        for _ in range(n_clusters - 1):
            cluster = self.alloc_cluster()
            self.fat_write(previous, cluster)
            previous = cluster
        return first

    def chain(self, first_cluster: int) -> List[int]:
        """Follow a cluster chain to its end-of-chain marker."""
        clusters = []
        cluster = first_cluster
        seen = set()
        while cluster < 0xFFF8:
            if cluster in seen:
                raise FilesystemError(
                    f"cluster chain cycle at {cluster}")
            seen.add(cluster)
            clusters.append(cluster)
            cluster = self.fat_read(cluster)
        return clusters

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------

    def cluster_offset(self, cluster: int) -> int:
        """Byte offset of a cluster's data in the image."""
        if cluster < FIRST_CLUSTER:
            raise FilesystemError(f"cluster {cluster} is reserved")
        index = cluster - FIRST_CLUSTER
        return self.params.data_offset + index * self.params.cluster_bytes

    def read(self, offset: int, nbytes: int) -> bytes:
        if offset < 0 or offset + nbytes > len(self.data):
            raise FilesystemError(
                f"read [{offset}, {offset + nbytes}) outside image")
        return bytes(self.data[offset:offset + nbytes])

    def write(self, offset: int, payload: bytes) -> None:
        if offset < 0 or offset + len(payload) > len(self.data):
            raise FilesystemError(
                f"write [{offset}, {offset + len(payload)}) outside image")
        self.data[offset:offset + len(payload)] = payload

    def chain_extents(self, first_cluster: int) -> List[tuple]:
        """Contiguous (offset, nbytes) runs covering a cluster chain.

        Sequentially allocated chains collapse to a single extent; a
        fragmented chain yields one extent per contiguous run.
        """
        clusters = self.chain(first_cluster)
        if not clusters:
            return []
        cluster_bytes = self.params.cluster_bytes
        extents = []
        run_start = clusters[0]
        run_length = 1
        for cluster in clusters[1:]:
            if cluster == run_start + run_length:
                run_length += 1
            else:
                extents.append((self.cluster_offset(run_start),
                                run_length * cluster_bytes))
                run_start, run_length = cluster, 1
        extents.append((self.cluster_offset(run_start),
                        run_length * cluster_bytes))
        return extents

"""FAT directory entries and directory handles.

A directory is the paper's *object*: a cluster chain holding 32-byte
entries that a lookup linearly scans.  :class:`DirEntry` is the on-disk
entry codec; :class:`FatDirectory` is the in-memory handle the file system
and the workloads use.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import FilesystemError
from repro.fs.fat import DIR_ENTRY_SIZE, FatImage
from repro.fs.names import decode_name, encode_name

#: Attribute flags (subset of the FAT spec).
ATTR_DIRECTORY = 0x10
ATTR_ARCHIVE = 0x20

_ENTRY_STRUCT = struct.Struct("<11sB10xHHHI")
assert _ENTRY_STRUCT.size == DIR_ENTRY_SIZE


@dataclass(frozen=True)
class DirEntry:
    """One decoded 32-byte directory entry."""

    name: str
    attributes: int
    first_cluster: int
    size: int

    @property
    def is_directory(self) -> bool:
        return bool(self.attributes & ATTR_DIRECTORY)

    def encode(self) -> bytes:
        return _ENTRY_STRUCT.pack(encode_name(self.name), self.attributes,
                                  0, 0, self.first_cluster, self.size)

    @classmethod
    def decode(cls, raw: bytes) -> Optional["DirEntry"]:
        """Decode an entry; None for a never-used slot (name[0] == 0)."""
        if len(raw) != DIR_ENTRY_SIZE:
            raise FilesystemError(
                f"directory entry must be {DIR_ENTRY_SIZE} bytes")
        if raw[0] == 0:
            return None
        name, attributes, _, _, first_cluster, size = _ENTRY_STRUCT.unpack(raw)
        return cls(decode_name(name), attributes, first_cluster, size)


class FatDirectory:
    """Handle on one directory's cluster chain inside an image."""

    def __init__(self, image: FatImage, name: str, first_cluster: int,
                 capacity_entries: int) -> None:
        self.image = image
        self.name = name
        self.first_cluster = first_cluster
        self.capacity_entries = capacity_entries
        self.n_entries = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    def extents(self) -> List[tuple]:
        """Contiguous (image_offset, nbytes) runs of this directory."""
        return self.image.chain_extents(self.first_cluster)

    @property
    def bytes_used(self) -> int:
        return self.n_entries * DIR_ENTRY_SIZE

    def entry_offset(self, index: int) -> int:
        """Image offset of entry ``index`` (walking the chain)."""
        if not 0 <= index < self.capacity_entries:
            raise FilesystemError(
                f"{self.name}: entry {index} out of range")
        byte_index = index * DIR_ENTRY_SIZE
        for offset, nbytes in self.extents():
            if byte_index < nbytes:
                return offset + byte_index
            byte_index -= nbytes
        raise FilesystemError(f"{self.name}: chain shorter than capacity")

    # ------------------------------------------------------------------
    # entries
    # ------------------------------------------------------------------

    def append(self, entry: DirEntry) -> int:
        """Write ``entry`` into the next free slot; returns its index."""
        if self.n_entries >= self.capacity_entries:
            raise FilesystemError(f"directory {self.name} is full")
        index = self.n_entries
        self.image.write(self.entry_offset(index), entry.encode())
        self.n_entries += 1
        return index

    def entry_at(self, index: int) -> Optional[DirEntry]:
        raw = self.image.read(self.entry_offset(index), DIR_ENTRY_SIZE)
        return DirEntry.decode(raw)

    def search(self, name: str) -> Optional[tuple]:
        """Linear scan for ``name``; returns (index, entry) or None.

        This is the byte-accurate reference search — the inner loop the
        paper's benchmark stresses.  The simulation adapter charges
        memory costs for exactly the bytes this walk touches.
        """
        wanted = encode_name(name)
        image = self.image
        index = 0
        for offset, nbytes in self.extents():
            position = offset
            end = offset + nbytes
            while position < end and index < self.n_entries:
                raw = image.read(position, DIR_ENTRY_SIZE)
                if raw[:11] == wanted:
                    entry = DirEntry.decode(raw)
                    return index, entry
                position += DIR_ENTRY_SIZE
                index += 1
        return None

    def __repr__(self) -> str:
        return (f"FatDirectory({self.name}, cluster={self.first_cluster}, "
                f"{self.n_entries}/{self.capacity_entries} entries)")

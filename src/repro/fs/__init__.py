"""FAT file system substrate (the paper's modified EFSL)."""

from repro.errors import FilesystemError
from repro.fs.check import FsckReport, fsck
from repro.fs.directory import (ATTR_ARCHIVE, ATTR_DIRECTORY, DirEntry,
                                FatDirectory)
from repro.fs.efsl import DEFAULT_COMPARE_CYCLES, EfslFat, SimDirectory
from repro.fs.fat import (DIR_ENTRY_SIZE, EOC, FIRST_CLUSTER, FREE,
                          FatImage, FatParams)
from repro.fs.image import FatFilesystem
from repro.fs.names import decode_name, dir_name, encode_name, file_name

#: Friendlier alias for the lookup-failure error.
FileNotFound = FilesystemError

__all__ = [
    "ATTR_ARCHIVE",
    "ATTR_DIRECTORY",
    "DEFAULT_COMPARE_CYCLES",
    "DIR_ENTRY_SIZE",
    "DirEntry",
    "EOC",
    "EfslFat",
    "FIRST_CLUSTER",
    "FREE",
    "FatDirectory",
    "FatFilesystem",
    "FatImage",
    "FatParams",
    "FileNotFound",
    "FilesystemError",
    "FsckReport",
    "fsck",
    "SimDirectory",
    "decode_name",
    "dir_name",
    "encode_name",
    "file_name",
]

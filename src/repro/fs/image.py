"""Building populated FAT images.

:class:`FatFilesystem` assembles an image with the directory structure the
paper's benchmark uses: N directories, each holding M files of 32-byte
entries, names generated deterministically so a workload can pick
``(directory index, file index)`` and reconstruct the name it must
resolve.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import FilesystemError
from repro.fs.directory import (ATTR_ARCHIVE, ATTR_DIRECTORY, DirEntry,
                                FatDirectory)
from repro.fs.fat import DIR_ENTRY_SIZE, FatImage, FatParams
from repro.fs.names import dir_name, file_name


class FatFilesystem:
    """A FAT image plus handles on its directories."""

    def __init__(self, params: Optional[FatParams] = None) -> None:
        self.params = params or FatParams()
        self.image = FatImage(self.params)
        self.directories: Dict[str, FatDirectory] = {}
        self._root_used = 0

    # ------------------------------------------------------------------
    # structure building
    # ------------------------------------------------------------------

    def mkdir(self, name: str, capacity_entries: int) -> FatDirectory:
        """Create a directory able to hold ``capacity_entries`` entries."""
        if name in self.directories:
            raise FilesystemError(f"directory {name} exists")
        if self._root_used >= self.params.root_entries:
            raise FilesystemError("root directory is full")
        nbytes = capacity_entries * DIR_ENTRY_SIZE
        n_clusters = max(1, -(-nbytes // self.params.cluster_bytes))
        first_cluster = self.image.alloc_chain(n_clusters)
        # Root directory entry for the new directory.
        root_offset = (self.params.root_dir_offset
                       + self._root_used * DIR_ENTRY_SIZE)
        entry = DirEntry(name, ATTR_DIRECTORY, first_cluster, 0)
        self.image.write(root_offset, entry.encode())
        self._root_used += 1
        directory = FatDirectory(self.image, name, first_cluster,
                                 capacity_entries)
        self.directories[name] = directory
        return directory

    def create_file(self, directory: FatDirectory, name: str,
                    size: int = 0) -> int:
        """Add a file entry (no data clusters; lookups read names only)."""
        entry = DirEntry(name, ATTR_ARCHIVE, 0, size)
        return directory.append(entry)

    # ------------------------------------------------------------------
    # lookups (byte-accurate reference path)
    # ------------------------------------------------------------------

    def lookup(self, directory_name: str, file_name_: str):
        """Resolve ``file_name_`` in ``directory_name``.

        Returns (index, :class:`DirEntry`).  Raises
        :class:`~repro.errors.FilesystemError` when either is missing.
        """
        directory = self.directories.get(directory_name)
        if directory is None:
            raise FilesystemError(f"no directory {directory_name}")
        found = directory.search(file_name_)
        if found is None:
            raise FilesystemError(
                f"{file_name_} not found in {directory_name}")
        return found

    # ------------------------------------------------------------------
    # canonical benchmark image
    # ------------------------------------------------------------------

    @classmethod
    def build_benchmark_image(cls, n_dirs: int, files_per_dir: int,
                              cluster_bytes: int = 4096) -> "FatFilesystem":
        """The paper's benchmark tree: ``n_dirs`` directories of
        ``files_per_dir`` files each, names from
        :func:`repro.fs.names.dir_name` / :func:`~repro.fs.names.file_name`.
        """
        if n_dirs < 1 or files_per_dir < 1:
            raise FilesystemError("need at least one directory and file")
        data_bytes = n_dirs * files_per_dir * DIR_ENTRY_SIZE
        params = FatParams.sized_for(
            data_bytes + n_dirs * cluster_bytes,  # per-dir rounding slack
            root_entries=max(512, n_dirs),
            cluster_bytes=cluster_bytes)
        fs = cls(params)
        for d in range(n_dirs):
            directory = fs.mkdir(dir_name(d), files_per_dir)
            for f in range(files_per_dir):
                fs.create_file(directory, file_name(f))
        return fs

    def directory_list(self) -> List[FatDirectory]:
        return [self.directories[name] for name in sorted(self.directories)]

    @property
    def total_entry_bytes(self) -> int:
        """Total directory-content bytes (Figure 4's x-axis quantity)."""
        return sum(d.bytes_used for d in self.directories.values())

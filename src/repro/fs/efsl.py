"""EFSL-style file system bound to the simulated machine.

§5 of the paper: *"The file system is derived from the EFSL FAT
implementation.  We modified EFSL to use an in-memory image rather than
disk operations, to not use a buffer cache, and to have a
higher-performance inner loop for file name lookup.  We focused on
directory search, adding per-directory spin locks and CoreTime
annotations."*

:class:`EfslFat` is that adaptation for our simulator: it maps a
:class:`~repro.fs.image.FatFilesystem` image into the simulated address
space (the in-memory image), gives each directory a spin lock and a
:class:`~repro.core.object_table.CtObject`, and emits the annotated
instruction stream for a name lookup — lock, linear scan of real directory
bytes up to the matching entry, unlock — with every byte charged through
the cache model.  There is deliberately no buffer cache: every lookup
walks the directory, exactly as modified EFSL did.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.core.object_table import CtObject
from repro.cpu.machine import Machine
from repro.errors import FilesystemError
from repro.fs.directory import FatDirectory
from repro.fs.fat import DIR_ENTRY_SIZE
from repro.fs.image import FatFilesystem
from repro.threads.program import (Acquire, CtEnd, CtStart,
                                   Release, Scan)

#: Cycles to compare one 32-byte entry against the wanted name (a couple
#: of 8-byte compares plus loop overhead in the "higher-performance inner
#: loop").
DEFAULT_COMPARE_CYCLES = 3


class SimDirectory:
    """A directory as the simulator sees it: object + lock + extents."""

    __slots__ = ("fat_dir", "object", "lock", "extents", "names",
                 "lookups")

    def __init__(self, fat_dir: FatDirectory, object_: CtObject, lock,
                 extents: List[tuple], names: Dict[str, int]) -> None:
        self.fat_dir = fat_dir
        self.object = object_
        self.lock = lock
        #: (simulated address, nbytes) runs covering the directory data.
        self.extents = extents
        #: name -> entry index, built once from the real image bytes (the
        #: reference ``search`` stays byte-accurate; this is the index the
        #: fast inner loop effectively embodies).
        self.names = names
        self.lookups = 0

    @property
    def name(self) -> str:
        return self.fat_dir.name

    @property
    def n_entries(self) -> int:
        return self.fat_dir.n_entries

    @property
    def bytes_used(self) -> int:
        return self.fat_dir.bytes_used


class EfslFat:
    """The paper's modified-EFSL file system on a simulated machine."""

    def __init__(self, machine: Machine, fs: FatFilesystem,
                 compare_cycles: int = DEFAULT_COMPARE_CYCLES,
                 region_name: str = "fat-image") -> None:
        self.machine = machine
        self.fs = fs
        self.compare_cycles = compare_cycles
        region = machine.address_space.alloc(region_name,
                                             len(fs.image.data))
        self.region = region
        line_size = machine.spec.line_size
        entries_per_line = max(1, line_size // DIR_ENTRY_SIZE)
        #: Fixed per-line compute charged while scanning entries.
        self.per_line_compute = compare_cycles * entries_per_line
        # Import here to avoid a package cycle at module import time.
        from repro.threads.sync import SpinLock

        self.directories: List[SimDirectory] = []
        self.by_name: Dict[str, SimDirectory] = {}
        for fat_dir in fs.directory_list():
            extents = [(region.base + offset, nbytes)
                       for offset, nbytes in fat_dir.extents()]
            names = self._index_names(fat_dir)
            obj = CtObject(f"dir:{fat_dir.name}", extents[0][0],
                           fat_dir.bytes_used, read_only=True)
            lock = SpinLock.allocate(machine.address_space,
                                     f"dirlock:{fat_dir.name}")
            sim_dir = SimDirectory(fat_dir, obj, lock, extents, names)
            self.directories.append(sim_dir)
            self.by_name[fat_dir.name] = sim_dir

    @staticmethod
    def _index_names(fat_dir: FatDirectory) -> Dict[str, int]:
        """Decode every entry once; doubles as an image validity check."""
        names: Dict[str, int] = {}
        for index in range(fat_dir.n_entries):
            entry = fat_dir.entry_at(index)
            if entry is None:
                raise FilesystemError(
                    f"{fat_dir.name}: unexpected free slot at {index}")
            names[entry.name] = index
        return names

    # ------------------------------------------------------------------
    # lookup instruction streams
    # ------------------------------------------------------------------

    def resolve_index(self, directory: SimDirectory, file_name: str) -> int:
        index = directory.names.get(file_name)
        if index is None:
            raise FilesystemError(
                f"{file_name} not in {directory.name}")
        return index

    def search_items(self, directory: SimDirectory,
                     file_name: str) -> Iterator:
        """Annotated lookup of ``file_name`` (the Figure 3 operation)."""
        return self.search_items_by_index(
            directory, self.resolve_index(directory, file_name))

    def search_items_by_index(self, directory: SimDirectory,
                              index: int) -> Iterator:
        """Annotated lookup that will match at entry ``index``.

        The scan covers every entry up to and including the match — the
        linear search of the paper's Figure 1 inner loop — charged through
        the cache model extent by extent.
        """
        if not 0 <= index < directory.n_entries:
            raise FilesystemError(
                f"{directory.name}: no entry {index}")
        directory.lookups += 1
        yield CtStart(directory.object)
        yield Acquire(directory.lock)
        remaining = (index + 1) * DIR_ENTRY_SIZE
        for addr, nbytes in directory.extents:
            chunk = min(remaining, nbytes)
            yield Scan(addr, chunk, self.per_line_compute)
            remaining -= chunk
            if remaining <= 0:
                break
        yield Release(directory.lock)
        yield CtEnd()

    def unannotated_search_items(self, directory: SimDirectory,
                                 index: int) -> Iterator:
        """The Figure 1 (no CoreTime) variant of the same lookup."""
        if not 0 <= index < directory.n_entries:
            raise FilesystemError(f"{directory.name}: no entry {index}")
        directory.lookups += 1
        yield Acquire(directory.lock)
        remaining = (index + 1) * DIR_ENTRY_SIZE
        for addr, nbytes in directory.extents:
            chunk = min(remaining, nbytes)
            yield Scan(addr, chunk, self.per_line_compute)
            remaining -= chunk
            if remaining <= 0:
                break
        yield Release(directory.lock)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def total_entry_bytes(self) -> int:
        return self.fs.total_entry_bytes

    def objects(self) -> List[CtObject]:
        return [directory.object for directory in self.directories]

    def __repr__(self) -> str:
        return (f"EfslFat({len(self.directories)} dirs, "
                f"{self.total_entry_bytes} entry bytes)")

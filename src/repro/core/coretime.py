"""CoreTime: the O2 scheduler runtime (§4 of the paper).

``ct_start(o)`` performs a table lookup; if the object is assigned to a
core, the thread migrates there, otherwise the operation runs locally
while the runtime measures its cache misses.  Objects whose operations
miss a lot are assigned to a cache by the greedy first-fit packing
algorithm; per-core counters drive periodic rebalancing.

:class:`CoreTimeScheduler` plugs into the engine through the common
:class:`~repro.sched.base.SchedulerRuntime` interface, so any benchmark
runs "with CoreTime" by swapping the scheduler argument.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.clustering import AffinityTracker
from repro.core.monitor import Monitor
from repro.core.object_table import CtObject, ObjectTable
from repro.core.packing import get_policy, make_budgets
from repro.core.policies import LfuReplacement, ReplicationPolicy
from repro.core.rebalancer import Rebalancer
from repro.errors import SchedulerError
from repro.obs.events import (ObjectAssigned, ObjectMoved, RebalanceRound,
                              SchedDecision)
from repro.sched.base import SchedulerRuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.threads.thread import SimThread


@dataclass(frozen=True)
class CoreTimeConfig:
    """Tunables of the CoreTime runtime.

    Defaults follow the paper's preliminary design: first-fit packing, no
    replication, no replacement policy, threads stay where an operation
    left them (migration is paid only when the next object demands it).
    """

    #: Expensive misses (remote + DRAM loads) per operation above which an
    #: object is "expensive to fetch" and gets assigned to a cache.
    miss_threshold: float = 8.0
    #: Decayed window operations observed before deciding an object's
    #: fate (fractional: window statistics decay instead of resetting).
    min_samples: float = 2.0
    #: Simulated cycles charged for the ct_start table lookup.
    lookup_cost: int = 20
    #: Cycles between monitoring windows (counter sampling + rebalance).
    monitor_interval: int = 200_000
    #: Per-window exponential decay applied to object heat.
    heat_decay: float = 0.5
    #: Fraction of the per-core cache budget packing may fill.
    headroom: float = 0.9
    #: Packing policy: first_fit (paper), balanced, hash, random.
    packing: str = "first_fit"
    #: Send a migrated thread back to its home core at ct_end — the
    #: paper's protocol ("sets a flag that indicates to the original core
    #: that the operation is complete").  Without it, threads drift onto
    #: the cores hosting assigned objects and the rest of the machine
    #: idles.
    return_home: bool = True
    #: Enable periodic rebalancing (§4's pathology repair).
    rebalance: bool = True
    overload_idle_frac: float = 0.05
    underload_idle_frac: float = 0.25
    rebalance_slack: float = 0.25
    #: §6.2 policies (off by default, as in the preliminary design).
    replicate_read_only: bool = False
    replication_heat_factor: float = 4.0
    max_replicas: int = 4
    lfu_replacement: bool = False
    lfu_margin: float = 1.5
    auto_cluster: bool = False
    auto_cluster_threshold: int = 32
    #: §6.2 fairness: no single owner may occupy more than this fraction
    #: of the total packable cache budget (1.0 = no limit).  Objects
    #: without an owner are unconstrained.
    per_owner_budget_frac: float = 1.0

    def replace(self, **changes: object) -> "CoreTimeConfig":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


class CoreTimeScheduler(SchedulerRuntime):
    """The O2 scheduler: schedules objects to caches, operations to
    objects."""

    name = "coretime"

    def __init__(self, config: Optional[CoreTimeConfig] = None) -> None:
        super().__init__()
        self.config = config or CoreTimeConfig()
        self.table = ObjectTable()
        self.monitor: Optional[Monitor] = None
        self.rebalancer = Rebalancer(
            overload_idle_frac=self.config.overload_idle_frac,
            underload_idle_frac=self.config.underload_idle_frac,
            slack=self.config.rebalance_slack,
        )
        self.replication = ReplicationPolicy(
            enabled=self.config.replicate_read_only,
            heat_factor=self.config.replication_heat_factor,
            max_replicas=self.config.max_replicas,
        )
        self.replacement = LfuReplacement(
            enabled=self.config.lfu_replacement,
            margin=self.config.lfu_margin,
        )
        self.affinity = (AffinityTracker(self.config.auto_cluster_threshold)
                         if self.config.auto_cluster else None)
        self.budgets: list = []
        self._pack_policy = get_policy(self.config.packing)
        self._next_core = 0
        self._last_monitor = 0
        #: cluster key -> core its members are packed onto.
        self._cluster_homes: Dict[str, int] = {}
        #: owner -> bytes of budget currently charged to that owner.
        self._owner_bytes: Dict[str, int] = {}
        self.fairness_declines = 0
        #: thread tid -> (object, origin core, migrations at ct_start).
        self._op_ctx: Dict[int, Tuple[CtObject, int, int]] = {}
        self.assignments = 0
        self.declined_assignments = 0
        #: Event bus (None until bound with observability attached).
        self._bus = None

    # ------------------------------------------------------------------
    # runtime wiring
    # ------------------------------------------------------------------

    def _on_bind(self) -> None:
        spec = self.machine.spec
        self.budgets = make_budgets(spec.per_core_budget_bytes,
                                    spec.n_cores, self.config.headroom)
        self.monitor = Monitor(self.machine, self.config.heat_decay)
        self._last_monitor = 0
        obs = self.obs
        if obs is not None:
            self._bus = obs.bus
            registry = obs.metrics
            if registry is not None:
                self.rebalancer.attach_metrics(registry)
                registry.gauge_fn("coretime.objects_assigned",
                                  lambda: len(self.table))
                registry.gauge_fn(
                    "coretime.objects_tracked",
                    lambda: len(self.monitor.tracked) if self.monitor else 0)
                registry.gauge_fn("coretime.table_lookups",
                                  lambda: self.table.lookups)

    def place_thread(self, thread: "SimThread") -> int:
        # One cooperative scheduling context per core, round-robin — the
        # paper pins one pthread per core and multiplexes above it.
        core_id = self._next_core % self.machine.n_cores
        self._next_core += 1
        return core_id

    # ------------------------------------------------------------------
    # ct_start / ct_end
    # ------------------------------------------------------------------

    def on_ct_start(self, thread: "SimThread", obj: CtObject, core: "Core",
                    now: int) -> Optional[int]:
        if not isinstance(obj, CtObject):
            raise SchedulerError(
                f"ct_start argument must be a CtObject, got {type(obj)!r}")
        # The table lookup itself costs time (§4: "performs a table
        # lookup").
        core.time += self.config.lookup_cost
        core.counters.busy_cycles += self.config.lookup_cost
        if self.affinity is not None:
            self.affinity.observe(thread.tid, obj)
        self._op_ctx[thread.tid] = (obj, core.core_id, thread.migrations)
        cores = self.table.lookup(obj)
        if not cores:
            return None
        if len(cores) == 1:
            target = cores[0]
        else:
            target = ReplicationPolicy.choose_replica(
                obj, core.chip_id, self.machine.spec)
        bus = self._bus
        if bus is not None and bus.wants(SchedDecision):
            bus.publish(SchedDecision(now, core.core_id, thread.name,
                                      obj.name, target))
        return None if target == core.core_id else target

    def on_ct_end(self, thread: "SimThread", core: "Core",
                  now: int) -> Optional[int]:
        ctx = self._op_ctx.pop(thread.tid, None)
        obj = thread.ct_object
        monitor = self.monitor
        if ctx is not None and obj is not None and monitor is not None:
            _, origin_core, migrations_at_start = ctx
            ran_locally = (origin_core == core.core_id
                           and thread.migrations == migrations_at_start)
            if ran_locally and thread.ct_entry_snapshot is not None:
                delta = core.counters.snapshot() - thread.ct_entry_snapshot
                monitor.record_operation(
                    obj, delta, now - thread.ct_started_at)
            else:
                monitor.record_use(obj)
        self._maybe_monitor(now)
        if self.config.return_home and thread.home_core is not None \
                and thread.home_core != core.core_id:
            return thread.home_core
        return None

    def next_boundary(self, now: int) -> Optional[int]:
        """Next monitoring-window / rebalance-epoch boundary.

        Used by the batched engine kernel to cap macro-step horizons.
        Monitoring itself fires synchronously inside ``on_ct_end``, so
        this is a conservative bound, never a correctness requirement.
        """
        return self.rebalancer.next_epoch(self._last_monitor,
                                          self.config.monitor_interval)

    # ------------------------------------------------------------------
    # assignment machinery
    # ------------------------------------------------------------------

    def _assign_expensive_objects(self, now: int = 0) -> None:
        """Assign every object whose *windowed* miss rate qualifies.

        Runs at each monitoring tick, before the window is reset.  Sorting
        candidates by popularity first reproduces the paper's batch
        first-fit behaviour: when budget runs out, the hottest objects are
        the ones on-chip.
        """
        config = self.config
        monitor = self.monitor
        candidates = [
            obj for obj in monitor.tracked.values()
            if not obj.assigned
            and monitor.is_expensive(obj, config.miss_threshold,
                                     config.min_samples)
        ]
        if not candidates:
            return
        candidates.sort(key=lambda o: (-o.window_ops, o.oid))
        mean_heat = monitor.mean_heat()
        spec = self.machine.spec
        for obj in candidates:
            size = obj.footprint_bytes(spec.line_size)
            if not self._owner_allows(obj, size):
                self.fairness_declines += 1
                continue
            core_id = self._find_room(obj)
            if core_id is None:
                self.declined_assignments += 1
                continue
            self.budgets[core_id].charge(size)
            if obj.owner is not None:
                self._owner_bytes[obj.owner] = \
                    self._owner_bytes.get(obj.owner, 0) + size
            self.table.assign(obj, core_id)
            self.assignments += 1
            bus = self._bus
            if bus is not None and bus.wants(ObjectAssigned):
                bus.publish(ObjectAssigned(now, core_id, obj.name))
            if obj.cluster_key is not None:
                self._cluster_homes.setdefault(obj.cluster_key, core_id)
            if self.replication.wants_replicas(obj, mean_heat):
                self.replication.replicate(obj, self.table, self.budgets,
                                           spec)

    def _owner_allows(self, obj: CtObject, size: int) -> bool:
        """§6.2 fairness: cap each owner's share of the packable budget."""
        frac = self.config.per_owner_budget_frac
        if obj.owner is None or frac >= 1.0:
            return True
        total = sum(budget.capacity_bytes for budget in self.budgets)
        used = self._owner_bytes.get(obj.owner, 0)
        return used + size <= total * frac

    def _find_room(self, obj: CtObject) -> Optional[int]:
        """Incremental first-fit (or configured policy) for one object."""
        spec = self.machine.spec
        size = obj.footprint_bytes(spec.line_size)
        if obj.cluster_key is not None:
            # §6.2 object clustering: co-locate with cluster mates when
            # the budget allows, whatever the base policy says.
            home = self._cluster_homes.get(obj.cluster_key)
            if home is not None and self.budgets[home].fits(size):
                return home
        if self.config.packing == "balanced":
            candidates = [b for b in self.budgets if b.fits(size)]
            if candidates:
                return max(candidates, key=lambda b: b.free_bytes).core_id
        elif self.config.packing == "hash":
            budget = self.budgets[obj.oid % len(self.budgets)]
            if budget.fits(size):
                return budget.core_id
        else:  # first_fit and random degrade to first-fit incrementally
            for budget in self.budgets:
                if budget.fits(size):
                    return budget.core_id
        return self.replacement.try_make_room(
            obj, self.table, self.budgets, spec.line_size)

    def repack(self) -> None:
        """Full batch re-pack of every tracked expensive object.

        Used by tests and by callers that change policy mid-run; the
        normal runtime packs incrementally as objects are discovered.
        """
        config = self.config
        spec = self.machine.spec
        self.table.clear()
        self.budgets = make_budgets(spec.per_core_budget_bytes,
                                    spec.n_cores, config.headroom)
        # Batch repacking judges on lifetime miss rates (windows may have
        # just been reset by a tick).
        expensive = [
            obj for obj in self.monitor.tracked.values()
            if obj.ops >= config.min_samples
            and obj.misses_per_op() >= config.miss_threshold
        ]
        result = self._pack_policy(expensive, self.budgets,
                                   line_size=spec.line_size)
        for obj, core_id in result.placed.items():
            self.table.assign(obj, core_id)
        self.assignments += len(result.placed)

    def _consolidate_clusters(self) -> None:
        """Move learned-cluster members onto one core.

        Affinity is discovered *after* objects are first assigned, so a
        freshly learned cluster usually spans several cores; each window
        the members are gathered onto the core hosting the hottest
        member, budget permitting.
        """
        spec = self.machine.spec
        groups: Dict[str, list] = {}
        for obj in self.table.objects():
            if obj.cluster_key is not None and len(obj.assigned_cores) == 1:
                groups.setdefault(obj.cluster_key, []).append(obj)
        for key, members in groups.items():
            if len(members) < 2:
                continue
            members.sort(key=lambda o: (-o.heat, o.oid))
            target = members[0].home
            self._cluster_homes[key] = target
            for obj in members[1:]:
                if obj.home == target:
                    continue
                size = obj.footprint_bytes(spec.line_size)
                if not self.budgets[target].fits(size):
                    break
                origin = obj.home
                self.table.move(obj, origin, target)
                self.budgets[origin].refund(size)
                self.budgets[target].charge(size)

    # ------------------------------------------------------------------
    # monitoring window
    # ------------------------------------------------------------------

    def _maybe_monitor(self, now: int) -> None:
        if now - self._last_monitor < self.config.monitor_interval:
            return
        self._last_monitor = now
        self._assign_expensive_objects(now)
        loads = self.monitor.tick(now)
        if self.config.rebalance:
            moved = self.rebalancer.rebalance(
                loads, self.table, self.budgets,
                self.machine.spec.line_size)
            bus = self._bus
            if moved and bus is not None:
                if bus.wants(RebalanceRound):
                    bus.publish(RebalanceRound(now, len(moved)))
                if bus.wants(ObjectMoved):
                    for event in moved:
                        bus.publish(ObjectMoved(now, event.from_core,
                                                event.obj_name,
                                                event.to_core, event.heat))
        if self.replication.enabled:
            self._consider_replication()
        if self.affinity is not None:
            self._consolidate_clusters()

    def _consider_replication(self) -> None:
        """Re-evaluate replication each window: popularity is only known
        after objects have run for a while, so the decision cannot be
        made once at assignment time."""
        mean_heat = self.monitor.mean_heat()
        if mean_heat <= 0:
            return
        spec = self.machine.spec
        for obj in self.monitor.tracked.values():
            if obj.assigned and self.replication.wants_replicas(obj,
                                                                mean_heat):
                self.replication.replicate(obj, self.table, self.budgets,
                                           spec)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "objects_tracked": len(self.monitor.tracked)
            if self.monitor else 0,
            "objects_assigned": len(self.table),
            "assignments": self.assignments,
            "declined_assignments": self.declined_assignments,
            "table_lookups": self.table.lookups,
            "rebalance_moves": self.rebalancer.moves,
            "replicas_created": self.replication.replicas_created,
            "lfu_evictions": self.replacement.evictions,
            "fairness_declines": self.fairness_declines,
            "monitor_windows": (self.monitor.windows_closed
                                if self.monitor else 0),
        }

    def owner_usage(self) -> Dict[str, int]:
        """Bytes of packed budget per owner (fairness accounting)."""
        return dict(self._owner_bytes)

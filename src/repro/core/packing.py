"""Cache packing: assigning objects to core caches.

§4 of the paper: *"CoreTime uses a greedy first fit 'cache packing'
algorithm to decide what core to assign an object to … assigning each
object that is expensive to fetch to a cache with free space.  The
algorithm executes in Θ(n log n) time."*

:func:`pack` implements exactly that — sort the expensive objects (most
popular first, so the hottest objects get on-chip space when it runs out)
and first-fit each into the per-core cache budgets.  Alternative placement
policies used by the ablation benchmarks live alongside it:

* ``balanced``  — place each object on the core with the most free budget
  (greedy best-fit-decreasing; smooths load without the rebalancer);
* ``hash``     — object id modulo core count, budget permitting (the
  "no-measurement" strawman);
* ``random``   — uniform random core with free budget.

All policies run in O(n log n) or better and share one output type so the
CoreTime runtime can swap them freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.object_table import CtObject
from repro.errors import PackingError
from repro.sim.rng import make_rng


@dataclass
class CacheBudget:
    """Packable capacity of one core's cache share."""

    core_id: int
    capacity_bytes: int
    used_bytes: int = 0

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def fits(self, size: int) -> bool:
        return size <= self.free_bytes

    def charge(self, size: int) -> None:
        self.used_bytes += size

    def refund(self, size: int) -> None:
        self.used_bytes = max(0, self.used_bytes - size)


@dataclass
class PackResult:
    """Outcome of a packing run."""

    #: object -> core id (first replica only; policies assign one core).
    placed: Dict[CtObject, int] = field(default_factory=dict)
    #: Objects that fit nowhere (left to the hardware / replacement policy).
    unplaced: List[CtObject] = field(default_factory=list)

    @property
    def placed_bytes(self) -> int:
        return sum(obj.size for obj in self.placed)


def make_budgets(per_core_bytes: int, n_cores: int,
                 headroom: float = 1.0) -> List[CacheBudget]:
    """Budgets for every core, scaled by ``headroom`` (≤ 1.0)."""
    if not 0.0 < headroom <= 1.0:
        raise PackingError(f"headroom must be in (0, 1], got {headroom}")
    capacity = int(per_core_bytes * headroom)
    return [CacheBudget(core, capacity) for core in range(n_cores)]


def _key_heat_desc(obj: CtObject) -> tuple:
    # Hotter first; ties broken by object id for determinism.
    return (-obj.heat, -obj.ops, obj.oid)


def pack(objects: Iterable[CtObject], budgets: Sequence[CacheBudget],
         line_size: int = 64) -> PackResult:
    """The paper's greedy first-fit cache packing (Θ(n log n)).

    Objects are sorted by measured popularity (decayed heat, then raw op
    count) and each is placed in the *first* budget that fits it.  Cluster
    keys are honoured: an object whose cluster already has a member placed
    is placed with its cluster when the budget allows (§6.2, object
    clustering).
    """
    result = PackResult()
    cluster_home: Dict[str, int] = {}
    by_core = {budget.core_id: budget for budget in budgets}
    ordered = sorted(objects, key=_key_heat_desc)   # the Θ(n log n) sort
    for obj in ordered:
        size = obj.footprint_bytes(line_size)
        target: Optional[int] = None
        if obj.cluster_key is not None:
            home = cluster_home.get(obj.cluster_key)
            if home is not None and by_core[home].fits(size):
                target = home
        if target is None:
            for budget in budgets:               # first fit
                if budget.fits(size):
                    target = budget.core_id
                    break
        if target is None:
            result.unplaced.append(obj)
            continue
        by_core[target].charge(size)
        result.placed[obj] = target
        if obj.cluster_key is not None:
            cluster_home.setdefault(obj.cluster_key, target)
    return result


def pack_balanced(objects: Iterable[CtObject],
                  budgets: Sequence[CacheBudget],
                  line_size: int = 64) -> PackResult:
    """Best-fit-decreasing variant: always use the emptiest budget."""
    result = PackResult()
    cluster_home: Dict[str, int] = {}
    by_core = {budget.core_id: budget for budget in budgets}
    for obj in sorted(objects, key=_key_heat_desc):
        size = obj.footprint_bytes(line_size)
        target: Optional[int] = None
        if obj.cluster_key is not None:
            home = cluster_home.get(obj.cluster_key)
            if home is not None and by_core[home].fits(size):
                target = home
        if target is None:
            candidates = [b for b in budgets if b.fits(size)]
            if candidates:
                target = max(candidates, key=lambda b: b.free_bytes).core_id
        if target is None:
            result.unplaced.append(obj)
            continue
        by_core[target].charge(size)
        result.placed[obj] = target
        if obj.cluster_key is not None:
            cluster_home.setdefault(obj.cluster_key, target)
    return result


def pack_hash(objects: Iterable[CtObject], budgets: Sequence[CacheBudget],
              line_size: int = 64) -> PackResult:
    """Placement by object id modulo core count (ignores popularity)."""
    result = PackResult()
    budget_list = list(budgets)
    for obj in sorted(objects, key=lambda o: o.oid):
        size = obj.footprint_bytes(line_size)
        budget = budget_list[obj.oid % len(budget_list)]
        if budget.fits(size):
            budget.charge(size)
            result.placed[obj] = budget.core_id
        else:
            result.unplaced.append(obj)
    return result


def pack_random(objects: Iterable[CtObject], budgets: Sequence[CacheBudget],
                line_size: int = 64, seed: int = 0) -> PackResult:
    """Uniform-random placement among budgets with room."""
    rng = make_rng(seed, "pack_random")
    result = PackResult()
    for obj in sorted(objects, key=lambda o: o.oid):
        size = obj.footprint_bytes(line_size)
        candidates = [b for b in budgets if b.fits(size)]
        if not candidates:
            result.unplaced.append(obj)
            continue
        budget = rng.choice(candidates)
        budget.charge(size)
        result.placed[obj] = budget.core_id
    return result


PackingPolicy = Callable[..., PackResult]

POLICIES: Dict[str, PackingPolicy] = {
    "first_fit": pack,
    "balanced": pack_balanced,
    "hash": pack_hash,
    "random": pack_random,
}


def get_policy(name: str) -> PackingPolicy:
    try:
        return POLICIES[name]
    except KeyError:
        raise PackingError(
            f"unknown packing policy {name!r}; "
            f"choose from {sorted(POLICIES)}") from None

"""Object clustering (§6.2).

*"It is likely that some workloads would benefit from object clustering:
if one thread or operation uses two objects simultaneously then it might
be best to place both objects in the same cache, if they fit."*

Two mechanisms are provided:

* **Declared clusters** — workloads set ``CtObject.cluster_key``; the
  packing algorithms co-locate members (see :mod:`repro.core.packing`).
* **Learned clusters** — :class:`AffinityTracker` watches the sequence of
  objects each thread operates on and, when two objects are used
  back-to-back often enough, merges them into one cluster (union-find)
  so the *next* packing or move co-locates them.  This is the "compilers
  might also infer object clusters" hook of §6.2, done at runtime.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.object_table import CtObject


class AffinityTracker:
    """Learns co-access affinity between objects from operation order."""

    def __init__(self, threshold: int = 32) -> None:
        #: Transitions (a then b, unordered) needed before clustering.
        self.threshold = threshold
        self._last_obj: Dict[int, CtObject] = {}     # thread tid -> object
        self._transitions: Dict[Tuple[int, int], int] = {}
        self._cluster_parent: Dict[int, int] = {}    # union-find over oids
        self.clusters_formed = 0

    # -- union-find ---------------------------------------------------------

    def _find(self, oid: int) -> int:
        parent = self._cluster_parent
        root = oid
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(oid, oid) != root:
            parent[oid], oid = root, parent[oid]
        return root

    def _union(self, a: CtObject, b: CtObject) -> None:
        root_a, root_b = self._find(a.oid), self._find(b.oid)
        if root_a == root_b:
            return
        self._cluster_parent[max(root_a, root_b)] = min(root_a, root_b)
        self.clusters_formed += 1

    # -- observation ---------------------------------------------------------

    def observe(self, thread_tid: int, obj: CtObject) -> None:
        """Record that ``thread_tid`` operated on ``obj``.

        When the same thread's previous operation touched a different
        object, the (previous, current) pair accumulates affinity; past
        the threshold both objects get a shared ``cluster_key``.
        """
        previous = self._last_obj.get(thread_tid)
        self._last_obj[thread_tid] = obj
        if previous is None or previous is obj:
            return
        key = (min(previous.oid, obj.oid), max(previous.oid, obj.oid))
        count = self._transitions.get(key, 0) + 1
        self._transitions[key] = count
        if count >= self.threshold:
            self._union(previous, obj)
            root = self._find(obj.oid)
            cluster_key = f"auto-{root}"
            previous.cluster_key = cluster_key
            obj.cluster_key = cluster_key

    def cluster_of(self, obj: CtObject) -> int:
        return self._find(obj.oid)

    def clustered_pairs(self) -> List[Tuple[int, int]]:
        return [pair for pair, count in self._transitions.items()
                if count >= self.threshold]

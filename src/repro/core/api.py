"""Annotation-style public API.

The paper's interface is two C annotations, ``ct_start(o)`` and
``ct_end()``.  In our generator-based programs those are instruction items
(:class:`~repro.threads.program.CtStart` /
:class:`~repro.threads.program.CtEnd`); this module provides the
programmer-facing sugar:

* :func:`ct_object` — declare a schedulable object over an address range;
* :func:`operation` — a sub-generator bracketing a body of items with
  ``ct_start`` / ``ct_end`` so forgetting the end bracket is impossible:

.. code-block:: python

    def program():
        while True:
            yield from operation(obj, body(obj))

The method-invocation alternative the paper mentions (migrate for a whole
method) is :func:`method_operation`, which wraps a complete item generator
as one operation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.object_table import CtObject
from repro.threads.program import CtEnd, CtStart


def ct_object(name: str, addr: int, size: int, read_only: bool = False,
              cluster_key: Optional[str] = None) -> CtObject:
    """Declare a schedulable object (address + extent identify it)."""
    return CtObject(name, addr, size, read_only=read_only,
                    cluster_key=cluster_key)


def operation(obj: CtObject, body: Iterable) -> Iterator:
    """Bracket ``body``'s items with ``ct_start(obj)`` … ``ct_end()``."""
    yield CtStart(obj)
    yield from body
    yield CtEnd()


# The paper's "alternative interface around method invocations" is the
# same bracketing applied to a whole method body; the distinction in the
# simulator is purely documentary.
method_operation = operation

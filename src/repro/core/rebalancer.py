"""Pathology detection and object rebalancing.

§4: *"Cache packing might assign several popular objects to a single core
and threads will stall waiting to operate on the objects… Our current
solution is to detect performance pathologies at runtime and to improve
performance by rearranging objects."* and *"If a core is rarely idle or
often loads from DRAM, CoreTime will periodically move a portion of the
objects from that core's cache to the cache of a core that has more idle
cycles."*

:class:`Rebalancer` implements that loop over the :class:`CoreLoad`
assessments produced by the monitor.  The move selection sheds *excess*
operation load: from each overloaded core it moves the largest-heat
objects that fit within the excess, to the idlest cores with cache budget,
so a single dominant object is not pointlessly bounced around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.monitor import CoreLoad
from repro.core.object_table import CtObject, ObjectTable
from repro.core.packing import CacheBudget


@dataclass
class RebalanceEvent:
    """One object move, for tracing and tests."""

    obj_name: str
    from_core: int
    to_core: int
    heat: float


class Rebalancer:
    """Moves objects from overloaded cores to idle ones."""

    def __init__(self, overload_idle_frac: float = 0.05,
                 underload_idle_frac: float = 0.25,
                 dram_overload_loads: int = 1 << 30,
                 slack: float = 0.25) -> None:
        #: A core with idle fraction below this is overloaded.
        self.overload_idle_frac = overload_idle_frac
        #: A core with idle fraction above this can take more work.
        self.underload_idle_frac = underload_idle_frac
        #: A core issuing more DRAM loads than this per window is
        #: overloaded regardless of idleness (overpacked cache).
        self.dram_overload_loads = dram_overload_loads
        #: Tolerated relative deviation from mean load before moving.
        self.slack = slack
        self.moves = 0
        self.invocations = 0
        self.history: List[RebalanceEvent] = []
        self._c_moves = None
        self._c_rounds = None

    # ------------------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Register push counters on an observability metrics registry."""
        self._c_moves = registry.counter("rebalance.moves")
        self._c_rounds = registry.counter("rebalance.rounds")

    @staticmethod
    def next_epoch(last_round: int, interval: int) -> int:
        """First cycle at which the next rebalance round may fire.

        Rounds piggyback on CoreTime's monitoring window, so the epoch
        grid is ``last_round + interval``.  The batched engine kernel
        uses this (via ``CoreTimeRuntime.next_boundary``) as a macro-step
        horizon: a quiescent core is never batch-executed across a
        rebalance epoch boundary.
        """
        return last_round + interval

    def rebalance(self, loads: Sequence[CoreLoad], table: ObjectTable,
                  budgets: Sequence[CacheBudget],
                  line_size: int) -> List[RebalanceEvent]:
        """One rebalancing pass; returns the moves performed."""
        self.invocations += 1
        if not loads:
            return []
        mean_ops = sum(load.ops for load in loads) / len(loads)
        if mean_ops <= 0:
            return []
        by_core: Dict[int, CacheBudget] = {b.core_id: b for b in budgets}
        overloaded = [
            load for load in loads
            if (load.idle_frac <= self.overload_idle_frac
                or load.dram_loads >= self.dram_overload_loads)
            and load.ops > mean_ops * (1.0 + self.slack)
        ]
        receivers = sorted(
            (load for load in loads
             if load.idle_frac >= self.underload_idle_frac
             and load.ops < mean_ops * (1.0 - self.slack)),
            key=lambda load: -load.idle_frac)
        if not overloaded or not receivers:
            return []
        events: List[RebalanceEvent] = []
        # Mutable view of receiver headroom in "window ops" units.
        headroom = {load.core_id: mean_ops - load.ops for load in receivers}
        for load in sorted(overloaded, key=lambda l: -l.ops):
            excess = load.ops - mean_ops
            objects = sorted(table.objects_on(load.core_id),
                             key=lambda o: (-o.heat, o.oid))
            for obj in objects:
                if excess <= 0:
                    break
                if len(objects) <= 1:
                    break  # never strip a core bare
                obj_load = obj.heat
                if obj_load > excess and obj_load >= mean_ops:
                    # A dominant object: it alone exceeds the average
                    # core load, so moving it only moves the hot spot.
                    # Leave it; the run queue serialises it.
                    continue
                target = self._pick_target(
                    receivers, headroom, by_core, obj, line_size)
                if target is None:
                    continue
                table.move(obj, load.core_id, target)
                size = obj.footprint_bytes(line_size)
                by_core[load.core_id].refund(size)
                by_core[target].charge(size)
                headroom[target] -= obj_load
                excess -= obj_load
                event = RebalanceEvent(obj.name, load.core_id, target,
                                       obj.heat)
                events.append(event)
                self.moves += 1
        self.history.extend(events)
        if len(self.history) > 10000:
            del self.history[:5000]
        if events and self._c_moves is not None:
            self._c_moves.inc(len(events))
            self._c_rounds.inc()
        return events

    def _pick_target(self, receivers: Sequence[CoreLoad],
                     headroom: Dict[int, float],
                     budgets: Dict[int, CacheBudget],
                     obj: CtObject, line_size: int):
        size = obj.footprint_bytes(line_size)
        for load in receivers:
            if headroom[load.core_id] <= 0:
                continue
            if budgets[load.core_id].fits(size):
                return load.core_id
        # No receiver has budget: accept the best-effort idlest receiver
        # with remaining headroom (its cache will overflow to DRAM, but
        # cores stop stalling — matching the paper's priority of balance).
        for load in receivers:
            if headroom[load.core_id] > 0:
                return load.core_id
        return None

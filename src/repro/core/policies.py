"""Placement policies from the paper's §6.2 ("O2 Improvements").

The preliminary CoreTime design assigns each object to exactly one core
and stops assigning when caches are full.  §6.2 sketches two refinements,
both implemented here as pluggable policies and measured by benchmarks E8
and E9:

* **Replication** — "sometimes it is better to replicate read-only objects
  and other times it might be better to schedule more distinct objects."
  :class:`ReplicationPolicy` replicates very hot read-only objects one
  replica per chip, trading cache capacity for shorter migrations.
* **Replacement** — "working sets larger than the total on-chip memory…
  O2 schedulers might want a cache replacement policy that stores the
  objects accessed most frequently on-chip."  :class:`LfuReplacement`
  evicts the least-frequently-used assigned object when a hotter object
  arrives and no budget is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.object_table import CtObject, ObjectTable
from repro.core.packing import CacheBudget
from repro.cpu.topology import MachineSpec


@dataclass
class ReplicationPolicy:
    """Replicate hot read-only objects across chips."""

    enabled: bool = False
    #: An object is replication-worthy when its heat exceeds the mean
    #: heat by this factor.
    heat_factor: float = 4.0
    #: Upper bound on replicas (defaults to one per chip at apply time).
    max_replicas: int = 4
    replicas_created: int = 0

    def wants_replicas(self, obj: CtObject, mean_heat: float) -> bool:
        if not self.enabled or not obj.read_only:
            return False
        if mean_heat <= 0:
            return False
        return obj.heat >= self.heat_factor * mean_heat

    def replicate(self, obj: CtObject, table: ObjectTable,
                  budgets: Sequence[CacheBudget],
                  spec: MachineSpec) -> List[int]:
        """Add replicas of ``obj``, at most one per chip, budget allowing.

        Returns the cores replicas were added to.
        """
        if not obj.assigned:
            return []
        size = obj.footprint_bytes(spec.line_size)
        have_chips = {spec.chip_of(core) for core in obj.assigned_cores}
        added: List[int] = []
        budget_by_core = {budget.core_id: budget for budget in budgets}
        limit = min(self.max_replicas, spec.n_chips)
        for chip in range(spec.n_chips):
            if len(obj.assigned_cores) >= limit:
                break
            if chip in have_chips:
                continue
            # Emptiest budget on this chip.
            candidates = [budget_by_core[c] for c in spec.cores_of_chip(chip)]
            best = max(candidates, key=lambda budget: budget.free_bytes)
            if not best.fits(size):
                continue
            best.charge(size)
            table.assign(obj, best.core_id)
            added.append(best.core_id)
            have_chips.add(chip)
            self.replicas_created += 1
        return added

    @staticmethod
    def choose_replica(obj: CtObject, core_chip: int,
                       spec: MachineSpec) -> int:
        """Replica nearest to the requesting core's chip."""
        return min(
            obj.assigned_cores,
            key=lambda core: (spec.chip_distance(core_chip,
                                                 spec.chip_of(core)),
                              core))


@dataclass
class LfuReplacement:
    """Evict the coldest assigned object to admit a hotter one."""

    enabled: bool = False
    #: New object must be hotter than the victim by this factor.
    margin: float = 1.5
    evictions: int = 0

    def try_make_room(self, obj: CtObject, table: ObjectTable,
                      budgets: Sequence[CacheBudget],
                      line_size: int) -> Optional[int]:
        """Evict victims until ``obj`` fits somewhere; returns the core
        with room, or None if ``obj`` is not hot enough to displace
        anything."""
        if not self.enabled:
            return None
        size = obj.footprint_bytes(line_size)
        budget_by_core = {budget.core_id: budget for budget in budgets}
        victims = sorted(
            (candidate for candidate in table.objects()
             if candidate is not obj),
            key=lambda candidate: (candidate.heat, candidate.oid))
        for victim in victims:
            if victim.heat * self.margin >= obj.heat:
                return None  # nothing cold enough — keep the status quo
            victim_size = victim.footprint_bytes(line_size)
            for core in list(victim.assigned_cores):
                budget = budget_by_core[core]
                table.unassign(victim, core)
                budget.refund(victim_size)
                self.evictions += 1
                if budget.fits(size):
                    return core
        return None

"""CoreTime objects and the object→core lookup table.

A :class:`CtObject` is what the programmer names in ``ct_start(o)``: an
address range identifying the data an operation manipulates (a directory,
a hash-table shard, a tree node).  The :class:`ObjectTable` is the table
``ct_start`` consults (§4, Interface): it maps objects to the core whose
cache they are packed into.  Objects not in the table execute locally and
are left to the shared-memory hardware.

Per-object statistics (operation counts, expensive-miss counts, decayed
heat) live on the object; they are the measurements the monitor uses to
decide what is "expensive to fetch" and the rebalancer uses to equalise
load.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from repro.errors import SchedulerError

_object_ids = itertools.count()


class CtObject:
    """A schedulable data object (the paper's unit of cache packing)."""

    __slots__ = (
        "oid", "name", "addr", "size",
        "read_only", "cluster_key", "owner",
        "ops", "expensive_misses", "op_cycles",
        "window_ops", "window_expensive_misses", "heat",
        "assigned_cores", "measured_footprint_lines",
    )

    def __init__(self, name: str, addr: int, size: int,
                 read_only: bool = False,
                 cluster_key: Optional[str] = None,
                 owner: Optional[str] = None) -> None:
        self.oid = next(_object_ids)
        self.name = name
        self.addr = addr
        #: Size hint in bytes.  The paper lists finding object sizes as a
        #: challenge (§3); applications that know the size provide it, and
        #: the monitor refines it from measured footprints.
        self.size = size
        self.read_only = read_only
        #: Objects sharing a cluster key prefer co-location (§6.2).
        self.cluster_key = cluster_key
        #: Process/tenant owning the object.  §6.2: "the O2 scheduler
        #: must track which process owns an object and its operations.
        #: With this information the O2 scheduler could implement
        #: priorities and fairness."  The CoreTime runtime enforces a
        #: per-owner cache-budget share when configured.
        self.owner = owner
        # -- measurements -------------------------------------------------
        self.ops = 0
        self.expensive_misses = 0
        self.op_cycles = 0
        #: Operations observed in the current monitoring window.
        self.window_ops = 0
        #: Expensive misses observed in the current monitoring window.
        #: Windowed rates (not lifetime averages) drive assignment, so a
        #: one-time cold-start miss burst does not condemn an object that
        #: caches perfectly well to permanent migration.
        self.window_expensive_misses = 0
        #: Exponentially decayed popularity, updated per window.
        self.heat = 0.0
        # -- placement -----------------------------------------------------
        #: Cores this object is assigned to (usually 0 or 1; >1 when the
        #: replication policy replicates a hot read-only object).
        self.assigned_cores: List[int] = []
        self.measured_footprint_lines = 0

    @property
    def assigned(self) -> bool:
        return bool(self.assigned_cores)

    @property
    def home(self) -> Optional[int]:
        return self.assigned_cores[0] if self.assigned_cores else None

    def misses_per_op(self) -> float:
        return self.expensive_misses / self.ops if self.ops else 0.0

    def window_misses_per_op(self) -> float:
        if not self.window_ops:
            return 0.0
        return self.window_expensive_misses / self.window_ops

    def footprint_bytes(self, line_size: int) -> int:
        """Best available size estimate for packing.

        An application-provided size hint wins (it is exact); the
        miss-count footprint — which over-counts by lock lines and line
        rounding — is the fallback for objects declared without a size,
        the "find sizes of objects" challenge of §3.
        """
        if self.size > 0:
            return self.size
        return self.measured_footprint_lines * line_size

    def __repr__(self) -> str:
        where = self.assigned_cores if self.assigned else "unassigned"
        return (f"CtObject({self.name}, {self.size}B, ops={self.ops}, "
                f"cores={where})")


class ObjectTable:
    """The object→core table consulted by ``ct_start``.

    Lookup is a dict access; the simulated cost of the lookup is charged
    separately by the CoreTime runtime (``lookup_cost`` in its config).
    """

    def __init__(self) -> None:
        self._assignment: Dict[int, List[int]] = {}
        self._objects: Dict[int, CtObject] = {}
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, obj: CtObject) -> bool:
        return obj.oid in self._assignment

    def lookup(self, obj: CtObject) -> Optional[List[int]]:
        """Cores ``obj`` is assigned to, or None if unscheduled."""
        self.lookups += 1
        cores = self._assignment.get(obj.oid)
        if cores is not None:
            self.hits += 1
        return cores

    def assign(self, obj: CtObject, core_id: int) -> None:
        """Assign (or add a replica of) ``obj`` to ``core_id``."""
        cores = self._assignment.setdefault(obj.oid, [])
        if core_id in cores:
            return
        cores.append(core_id)
        obj.assigned_cores = cores
        self._objects[obj.oid] = obj

    def move(self, obj: CtObject, from_core: int, to_core: int) -> None:
        cores = self._assignment.get(obj.oid)
        if not cores or from_core not in cores:
            raise SchedulerError(
                f"moving {obj.name}: not assigned to core {from_core}")
        cores[cores.index(from_core)] = to_core
        obj.assigned_cores = cores

    def unassign(self, obj: CtObject, core_id: Optional[int] = None) -> None:
        """Remove one replica (or the whole entry when ``core_id`` is
        None or the last replica disappears)."""
        cores = self._assignment.get(obj.oid)
        if cores is None:
            return
        if core_id is not None and core_id in cores:
            cores.remove(core_id)
        elif core_id is None:
            cores.clear()
        if not cores:
            self._assignment.pop(obj.oid, None)
            self._objects.pop(obj.oid, None)
            obj.assigned_cores = []

    def objects_on(self, core_id: int) -> List[CtObject]:
        return [obj for obj in self._objects.values()
                if core_id in obj.assigned_cores]

    def objects(self) -> Iterable[CtObject]:
        return self._objects.values()

    def entries(self) -> Iterable[tuple]:
        """(CtObject, assigned-core list) pairs for every table entry.

        The invariant checker walks these to confirm the table and the
        per-object ``assigned_cores`` views never diverge.
        """
        return ((self._objects[oid], cores)
                for oid, cores in self._assignment.items())

    def clear(self) -> None:
        for obj in list(self._objects.values()):
            obj.assigned_cores = []
        self._assignment.clear()
        self._objects.clear()

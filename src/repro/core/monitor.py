"""Runtime monitoring: what CoreTime learns from event counters.

§4, *Runtime monitoring*: CoreTime counts the cache misses between a pair
of annotations and attributes them to the object being manipulated; many
misses mean the object is expensive to fetch and worth assigning to a
cache.  Per-core counters (idle cycles, DRAM loads, L2 loads) reveal
overloaded cores and overpacked caches.

:class:`Monitor` implements both halves against the simulated counters:

* :meth:`record_operation` consumes the counter delta the engine measured
  across one locally-executed operation and updates the object's
  statistics (op count, expensive misses, footprint estimate);
* :meth:`tick` closes a monitoring window — decaying per-object heat and
  producing one :class:`CoreLoad` per core for the rebalancer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.object_table import CtObject
from repro.cpu.machine import Machine
from repro.mem.counters import CounterDelta, CounterSnapshot


@dataclass(frozen=True)
class CoreLoad:
    """One core's behaviour over the last monitoring window."""

    core_id: int
    window_cycles: int
    idle_frac: float
    dram_loads: int
    l2_hits: int
    ops: int

    @property
    def busy_frac(self) -> float:
        return 1.0 - self.idle_frac

    @property
    def rarely_idle(self) -> bool:
        """The paper's overload signal ("a core is rarely idle")."""
        return self.idle_frac < 0.05


class Monitor:
    """Counter-based measurement of objects and cores."""

    def __init__(self, machine: Machine, heat_decay: float = 0.5) -> None:
        self.machine = machine
        self.heat_decay = heat_decay
        #: Every object ever observed (assigned or not).
        self.tracked: Dict[int, CtObject] = {}
        self._window_start: List[CounterSnapshot] = [
            bank.snapshot() for bank in machine.memory.counters]
        self._window_started_at = 0
        self.windows_closed = 0
        self.operations_recorded = 0

    # ------------------------------------------------------------------
    # per-operation measurement
    # ------------------------------------------------------------------

    def record_operation(self, obj: CtObject, delta: CounterDelta,
                         cycles: int) -> None:
        """Attribute one locally-executed operation's misses to ``obj``.

        "Expensive" misses are those served beyond the chip's caches —
        remote fetches and DRAM loads — since those are what migration can
        beat (§4: migration pays off only against DRAM/remote fetch cost).
        """
        self.tracked.setdefault(obj.oid, obj)
        expensive = delta.remote_hits + delta.dram_loads
        obj.ops += 1
        obj.window_ops += 1
        obj.expensive_misses += expensive
        obj.window_expensive_misses += expensive
        obj.op_cycles += cycles
        # Footprint estimate: an operation that touches N lines bounds the
        # object's active size from below.
        if delta.loads > obj.measured_footprint_lines:
            obj.measured_footprint_lines = delta.loads
        self.operations_recorded += 1

    def record_use(self, obj: CtObject) -> None:
        """Count an operation that ran remotely (no valid miss delta)."""
        self.tracked.setdefault(obj.oid, obj)
        obj.ops += 1
        obj.window_ops += 1
        self.operations_recorded += 1

    def is_expensive(self, obj: CtObject, miss_threshold: float,
                     min_samples: float) -> bool:
        """Does the object deserve a cache assignment?

        Judged on the *current window's* miss rate: an object that missed
        only while caches were cold stops qualifying as soon as a window
        passes without sustained misses, which is what keeps CoreTime
        inert in the regime where the data fits in local caches
        (Figure 4(a), 512 KB–2 MB).
        """
        if obj.window_ops < min_samples:
            return False
        return obj.window_misses_per_op() >= miss_threshold

    # ------------------------------------------------------------------
    # windowed core assessment
    # ------------------------------------------------------------------

    def tick(self, now: int) -> List[CoreLoad]:
        """Close the current window: decay heat, assess every core."""
        machine = self.machine
        loads: List[CoreLoad] = []
        window = max(1, now - self._window_started_at)
        new_start: List[CounterSnapshot] = []
        for core_id, bank in enumerate(machine.memory.counters):
            snapshot = bank.snapshot()
            delta = snapshot - self._window_start[core_id]
            # A core idle right now has un-accounted idle time since
            # idle_since; include it so fully-idle cores read as idle.
            idle = delta.idle_cycles
            core = machine.cores[core_id]
            if core.idle_since is not None and now > core.idle_since:
                idle += now - max(core.idle_since, self._window_started_at)
            idle_frac = min(1.0, idle / window)
            loads.append(CoreLoad(
                core_id=core_id,
                window_cycles=window,
                idle_frac=idle_frac,
                dram_loads=delta.dram_loads,
                l2_hits=delta.l2_hits,
                ops=delta.ops_completed,
            ))
            new_start.append(snapshot)
        self._window_start = new_start
        self._window_started_at = now
        # Window statistics decay rather than reset, so an object touched
        # once per window still accumulates enough samples to be judged,
        # while stale evidence (cold-start miss bursts) washes out.  Heat
        # is the decayed operation rate — the popularity signal packing
        # and rebalancing sort by.
        decay = self.heat_decay
        for obj in self.tracked.values():
            obj.window_ops *= decay
            obj.window_expensive_misses *= decay
            obj.heat = obj.window_ops
        self.windows_closed += 1
        return loads

    def hottest(self, limit: int = 10) -> List[CtObject]:
        return sorted(self.tracked.values(),
                      key=lambda o: (-o.heat, o.oid))[:limit]

    def mean_heat(self) -> float:
        if not self.tracked:
            return 0.0
        return sum(o.heat for o in self.tracked.values()) / len(self.tracked)

"""CoreTime — the paper's O2 scheduler (primary contribution).

Public surface:

* :class:`CoreTimeScheduler` / :class:`CoreTimeConfig` — the runtime;
* :func:`ct_object` / :func:`operation` — annotation API;
* :mod:`repro.core.packing` — cache packing algorithms;
* :class:`Monitor`, :class:`Rebalancer` — counter-driven adaptation;
* §6.2 extensions: :class:`ReplicationPolicy`, :class:`LfuReplacement`,
  :class:`AffinityTracker`.
"""

from repro.core.api import ct_object, method_operation, operation
from repro.core.clustering import AffinityTracker
from repro.core.coretime import CoreTimeConfig, CoreTimeScheduler
from repro.core.monitor import CoreLoad, Monitor
from repro.core.object_table import CtObject, ObjectTable
from repro.core.packing import (CacheBudget, PackResult, get_policy,
                                make_budgets, pack, pack_balanced,
                                pack_hash, pack_random)
from repro.core.policies import LfuReplacement, ReplicationPolicy
from repro.core.rebalancer import RebalanceEvent, Rebalancer

__all__ = [
    "AffinityTracker",
    "CacheBudget",
    "CoreLoad",
    "CoreTimeConfig",
    "CoreTimeScheduler",
    "CtObject",
    "LfuReplacement",
    "Monitor",
    "ObjectTable",
    "PackResult",
    "RebalanceEvent",
    "Rebalancer",
    "ReplicationPolicy",
    "ct_object",
    "get_policy",
    "make_budgets",
    "method_operation",
    "operation",
    "pack",
    "pack_balanced",
    "pack_hash",
    "pack_random",
]

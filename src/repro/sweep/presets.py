"""Built-in sweep grids for the paper's figures and CI smoke tests.

Each preset is a function returning a fresh :class:`SweepSpec`; the CLI
exposes them as ``repro-sweep run <name>``.  ``--seeds``/``--seed``
override the seed axis without editing code, so the same grid scales
from a one-seed sanity pass to the multi-seed matrices the comparison
tables want.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cpu.topology import MachineSpec
from repro.sweep.spec import MachineAxis, SweepSpec, WorkloadAxis
from repro.workloads.dirlookup import DirWorkloadSpec
from repro.workloads.scenarios import ScenarioSpec
from repro.workloads.webserver import WebServerSpec

#: Default root seed for presets (any integer works; fixed so two hosts
#: computing the same preset produce the same cells).
PRESET_ROOT_SEED = 42


def _dir_axis(label: str, spec: DirWorkloadSpec) -> WorkloadAxis:
    return WorkloadAxis(label, "dirlookup", spec,
                        x=spec.total_data_bytes / 1024)


def smoke(n_seeds: int = 2,
          root_seed: Optional[int] = PRESET_ROOT_SEED) -> SweepSpec:
    """2 schedulers x 2 workloads x 2 seeds on ``MachineSpec.tiny()``.

    Small enough to finish in seconds; the CI sweep-smoke job runs it,
    kills it mid-run, and asserts ``repro-sweep resume`` completes with
    the finished cells cached.
    """
    tiny = MachineSpec.tiny()
    workloads = tuple(
        _dir_axis(f"dirs{n}", DirWorkloadSpec(
            n_dirs=n, files_per_dir=32, cluster_bytes=512,
            think_cycles=10, threads_per_core=2))
        for n in (4, 12))
    return SweepSpec(
        name="smoke",
        machines=(MachineAxis("tiny", tiny),),
        schedulers=("thread", "coretime"),
        workloads=workloads,
        n_seeds=n_seeds, root_seed=root_seed,
        warmup_cycles=30_000, measure_cycles=60_000)


def fig2(n_seeds: int = 2,
         root_seed: Optional[int] = PRESET_ROOT_SEED) -> SweepSpec:
    """Thread vs CoreTime on the Figure 2 machine across data sizes.

    The single-chip four-core geometry of the paper's Figure 2 (a core's
    private caches hold ~3 directories, the shared L3 ~8), swept over
    directory counts spanning fits-in-private to exceeds-on-chip.
    """
    machine = MachineSpec(
        name="fig2-4core", n_chips=1, cores_per_chip=4,
        l1_bytes=2048, l2_bytes=12 * 1024, l3_bytes=32 * 1024,
        migration_cost=250)
    workloads = tuple(
        _dir_axis(f"dirs{n}", DirWorkloadSpec(
            n_dirs=n, files_per_dir=128, cluster_bytes=512,
            think_cycles=12, threads_per_core=4))
        for n in (8, 20, 32))
    return SweepSpec(
        name="fig2",
        machines=(MachineAxis("fig2-4core", machine),),
        schedulers=("thread", "coretime"),
        workloads=workloads,
        n_seeds=n_seeds, root_seed=root_seed,
        warmup_cycles=1_000_000, measure_cycles=1_500_000)


def fig4a(n_seeds: int = 3,
          root_seed: Optional[int] = PRESET_ROOT_SEED) -> SweepSpec:
    """Figure 4(a)'s quick-profile matrix with a real seed axis."""
    machine = MachineSpec.scaled(8)
    workloads = tuple(
        _dir_axis(f"dirs{n}", DirWorkloadSpec.scaled(8, n_dirs=n))
        for n in (16, 64, 160, 320, 512))
    return SweepSpec(
        name="fig4a",
        machines=(MachineAxis("amd16-scaled8", machine),),
        schedulers=("thread", "coretime"),
        workloads=workloads,
        n_seeds=n_seeds, root_seed=root_seed,
        warmup_cycles=1_500_000, measure_cycles=1_500_000)


def fig4b(n_seeds: int = 3,
          root_seed: Optional[int] = PRESET_ROOT_SEED) -> SweepSpec:
    """Figure 4(b): the oscillating-popularity matrix."""
    machine = MachineSpec.scaled(8)
    workloads = tuple(
        _dir_axis(f"dirs{n}", DirWorkloadSpec.scaled(
            8, n_dirs=n, popularity="oscillating",
            oscillation_period=1_000_000, oscillation_rotate=True))
        for n in (16, 64, 160, 320, 512))
    return SweepSpec(
        name="fig4b",
        machines=(MachineAxis("amd16-scaled8", machine),),
        schedulers=("thread", "coretime"),
        workloads=workloads,
        n_seeds=n_seeds, root_seed=root_seed,
        warmup_cycles=1_500_000, measure_cycles=1_500_000)


def web(n_seeds: int = 3,
        root_seed: Optional[int] = PRESET_ROOT_SEED) -> SweepSpec:
    """The web-server workload (paper's motivating app) as a sweep axis."""
    machine = MachineSpec.scaled(8)
    workloads = tuple(
        WorkloadAxis(f"dirs{n}", "webserver",
                     WebServerSpec(n_dirs=n, files_per_dir=64),
                     x=float(n))
        for n in (16, 64))
    return SweepSpec(
        name="web",
        machines=(MachineAxis("amd16-scaled8", machine),),
        schedulers=("thread", "coretime"),
        workloads=workloads,
        n_seeds=n_seeds, root_seed=root_seed,
        warmup_cycles=1_000_000, measure_cycles=1_500_000)


def tournament(n_seeds: int = 2,
               root_seed: Optional[int] = PRESET_ROOT_SEED) -> SweepSpec:
    """Every registry scheduler x shared workloads x seeds on tiny.

    The scheduler-zoo headline grid: O2 against the whole field —
    placement baselines, locality clustering, and the time-sharing
    classics — on one machine and workload set, seed-paired so
    ``repro-sweep report --rank`` can render the speedup matrix with
    coretime as the pivot.  Cells are tiny-machine sized (the CI
    ``tournament-smoke`` job runs the full grid), and the seed axis
    scales it up via ``--seeds`` like every other preset.
    """
    from repro.sched import registry
    names = registry.names()
    # Baselines first: render_report's pairwise tables use the first
    # entry as the baseline, and thread-vs-everything is the classic cut.
    schedulers = ("thread", "coretime") + tuple(
        name for name in names if name not in ("thread", "coretime"))
    tiny = MachineSpec.tiny()
    workloads = tuple(
        _dir_axis(f"dirs{n}", DirWorkloadSpec(
            n_dirs=n, files_per_dir=32, cluster_bytes=512,
            think_cycles=10, threads_per_core=2))
        for n in (4, 12, 24))
    return SweepSpec(
        name="tournament",
        machines=(MachineAxis("tiny", tiny),),
        schedulers=schedulers,
        workloads=workloads,
        n_seeds=n_seeds, root_seed=root_seed,
        warmup_cycles=30_000, measure_cycles=60_000)


def scenarios(n_seeds: int = 2,
              root_seed: Optional[int] = PRESET_ROOT_SEED) -> SweepSpec:
    """Every registered scenario x every registry scheduler on tiny.

    The adversarial counterpart of the tournament grid: instead of the
    steady-state directory workload, each column is one named scenario
    from :mod:`repro.workloads.scenarios` — cache pressure, coherence
    handoffs, invalidation storms, bursty arrivals, a migrating hot
    set, and an oversubscribed storm.  Seed-paired like the tournament
    so ``repro-sweep report --rank`` renders the speedup matrix.  The
    measurement window is sized so CoreTime's benchmark monitor
    interval elapses during warmup — the rebalancer actually reacts
    inside the measured region (the E12 tiny grid never reached it).
    """
    from repro.sched import registry
    from repro.workloads import scenarios as catalog
    names = registry.names()
    schedulers = ("thread", "coretime") + tuple(
        name for name in names if name not in ("thread", "coretime"))
    workloads = tuple(
        WorkloadAxis(name, "scenario", ScenarioSpec(name=name),
                     x=float(index))
        for index, name in enumerate(catalog.names()))
    return SweepSpec(
        name="scenarios",
        machines=(MachineAxis("tiny", MachineSpec.tiny()),),
        schedulers=schedulers,
        workloads=workloads,
        n_seeds=n_seeds, root_seed=root_seed,
        warmup_cycles=120_000, measure_cycles=200_000)


PRESETS: Dict[str, Callable[..., SweepSpec]] = {
    "smoke": smoke,
    "fig2": fig2,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "web": web,
    "tournament": tournament,
    "scenarios": scenarios,
}

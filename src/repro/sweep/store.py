"""On-disk result store and crash journal for one sweep.

Layout, under ``benchmarks/results/sweeps/<name>/`` by default::

    spec.json             the SweepSpec (so ``repro-sweep resume DIR``
                          needs nothing but the directory)
    cases/<key>.json      one record per computed cell, named by the
                          case's content hash (SweepCase.key())
    journal.jsonl         append-only progress log (started / finished /
                          failed / cached / interrupted), flushed per
                          line so a SIGKILL loses at most one entry

Case records hold only *deterministic* fields (the case, its
:class:`~repro.bench.harness.BenchPoint` result or failure evidence, and
the code fingerprint they were computed under) so a cell computed by a
parallel worker is byte-identical to the same cell computed serially —
the property the acceptance tests pin.  Wall-clock timings and retry
counts are observability, not results; they live in the journal.

Lookups are content-addressed on ``(case key, code fingerprint)``: a
record whose fingerprint no longer matches the current source tree is
treated as missing and recomputed in place.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.sweep.spec import SweepSpec

#: Version of the per-case record layout.
RECORD_VERSION = 1


class StoreError(ReproError):
    """A sweep store is missing, locked or malformed."""


def default_sweep_root() -> Path:
    """``benchmarks/results/sweeps`` under the repo root (cwd fallback)."""
    for parent in Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            return parent / "benchmarks" / "results" / "sweeps"
    return Path.cwd() / "benchmarks" / "results" / "sweeps"


def make_record(case_key: str, case_dict: dict, fingerprint: str,
                status: str, point: Optional[dict] = None,
                error: Optional[str] = None,
                flight: Optional[List[dict]] = None) -> dict:
    """Canonical per-case record (deterministic fields only)."""
    if status not in ("ok", "failed"):
        raise StoreError(f"bad record status {status!r}")
    return {
        "record_version": RECORD_VERSION,
        "case_key": case_key,
        "fingerprint": fingerprint,
        "status": status,
        "case": case_dict,
        "point": point,
        "error": error,
        "flight": flight,
    }


class ResultStore:
    """One sweep's results directory (single-writer, many readers)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.cases_dir = self.root / "cases"
        self._journal_handle = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def create(self, spec: SweepSpec) -> "ResultStore":
        self.cases_dir.mkdir(parents=True, exist_ok=True)
        self._write_atomic(self.root / "spec.json", spec.to_json() + "\n")
        return self

    def exists(self) -> bool:
        return (self.root / "spec.json").is_file()

    def load_spec(self) -> SweepSpec:
        path = self.root / "spec.json"
        if not path.is_file():
            raise StoreError(
                f"{self.root} is not a sweep store (no spec.json); "
                "run `repro-sweep run` first")
        return SweepSpec.from_json(path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # case records
    # ------------------------------------------------------------------

    def _case_path(self, case_key: str) -> Path:
        return self.cases_dir / f"{case_key}.json"

    def get(self, case_key: str,
            fingerprint: Optional[str] = None) -> Optional[dict]:
        """The stored record for ``case_key``, or None.

        With ``fingerprint`` given, a record computed under different
        code is treated as missing (it will be recomputed and replaced).
        """
        path = self._case_path(case_key)
        if not path.is_file():
            return None
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            return None          # torn write from a killed run: recompute
        if fingerprint is not None \
                and record.get("fingerprint") != fingerprint:
            return None
        return record

    def put(self, record: dict) -> Path:
        """Atomically persist one case record."""
        self.cases_dir.mkdir(parents=True, exist_ok=True)
        path = self._case_path(record["case_key"])
        text = json.dumps(record, indent=1, sort_keys=True) + "\n"
        self._write_atomic(path, text)
        return path

    def records(self) -> Iterator[dict]:
        if not self.cases_dir.is_dir():
            return
        for path in sorted(self.cases_dir.glob("*.json")):
            try:
                yield json.loads(path.read_text(encoding="utf-8"))
            except ValueError:
                continue         # torn write: ignored, will be recomputed

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    def journal(self, event: str, **fields) -> None:
        """Append one journal line and flush it to the OS immediately."""
        if self._journal_handle is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._journal_handle = open(self.journal_path, "a",
                                        encoding="utf-8")
        entry = {"event": event}
        entry.update(fields)
        self._journal_handle.write(
            json.dumps(entry, sort_keys=True, separators=(",", ":"))
            + "\n")
        self._journal_handle.flush()

    def close(self) -> None:
        if self._journal_handle is not None:
            self._journal_handle.close()
            self._journal_handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def journal_entries(self) -> List[dict]:
        if not self.journal_path.is_file():
            return []
        entries = []
        with open(self.journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue     # torn tail line from a kill
        return entries

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    def status(self, fingerprint: Optional[str] = None) -> Dict[str, int]:
        """Counts of computed cells vs the stored spec's full grid."""
        spec = self.load_spec()
        cases = spec.expand()
        done = failed = stale = 0
        for case in cases:
            record = self.get(case.key())
            if record is None:
                continue
            if fingerprint is not None \
                    and record.get("fingerprint") != fingerprint:
                stale += 1
            elif record["status"] == "ok":
                done += 1
            else:
                failed += 1
        return {"total": len(cases), "ok": done, "failed": failed,
                "stale": stale,
                "pending": len(cases) - done - failed - stale}

"""``repro-sweep`` — run, resume and report experiment sweeps.

Quick tour::

    repro-sweep run fig4a --workers 8 --seeds 3
        Expand the fig4a preset into its grid and shard it over 8
        worker processes; results land under
        benchmarks/results/sweeps/fig4a/.

    repro-sweep run smoke --stop-after 3 --out /tmp/sw
    repro-sweep resume /tmp/sw --workers 4
        A killed (or deliberately stopped) run resumes from its journal
        and content-addressed cells; finished cells are never recomputed
        as long as the repro sources are unchanged.

    repro-sweep serve smoke --port 7463 --out /tmp/sw
    repro-sweep work --connect host:7463
        Distributed execution: ``serve`` coordinates the grid over TCP,
        leasing cells to any number of ``work`` processes (same source
        tree, any machine); a worker that crashes or goes silent
        forfeits its leases and the cells are requeued.  ``status
        --connect host:7463`` asks the live coordinator; ``tail
        --connect host:7463`` streams the obs event feed as JSONL.

    repro-sweep status /tmp/sw --watch 2
        Cells: done / failed / stale (computed under different code) /
        pending, plus the last journal entry; ``--watch`` polls until
        the sweep completes.

    repro-sweep report /tmp/sw -o report.txt --events-out sweep.jsonl
        Per-cell statistics (mean, 95% CI, p50/p95 over seeds), A/B
        scheduler tables, failure list; the JSONL export is a
        schema-v5 obs event stream repro-analyze can ingest.

    repro-sweep diff /tmp/base /tmp/cand
        Cell-by-cell mean deltas between two sweeps (two commits, two
        machines, two configs), flagging CI-separated changes.

Exit codes: 0 success, 1 usage/failed cells, 3 stopped early
(``--stop-after`` hit before the grid finished).
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import time
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.sweep.aggregate import (export_events_jsonl, fold_records,
                                   diff_cells, render_rank_report,
                                   render_report)
from repro.sweep.presets import PRESETS
from repro.sweep.runner import RunnerOptions, run_sweep
from repro.sweep.spec import SweepSpec, code_fingerprint
from repro.sweep.store import ResultStore, default_sweep_root


def _store_for(args_out: Optional[str], name: str) -> ResultStore:
    root = Path(args_out) if args_out else default_sweep_root() / name
    return ResultStore(root)


def _runner_options(args) -> RunnerOptions:
    workers = args.workers
    if workers is None:
        workers = os.cpu_count() or 1
    options = RunnerOptions(
        workers=workers, timeout_s=args.timeout, retries=args.retries,
        verify=args.verify, stop_after=args.stop_after,
        lease_ttl_s=args.ttl,
        profile_dir=getattr(args, "profile_dir", None))
    options.validate()
    return options


def _progress(quiet: bool):
    if quiet:
        return lambda message: None
    return lambda message: print(f"  {message}")


def _records_in_grid_order(store: ResultStore, spec: SweepSpec) -> list:
    return [store.get(case.key()) for case in spec.expand()]


def _merge_shard_profiles(profile_dir: str) -> None:
    """Fold every ``*.profile.json`` shard into ``fleet.profile.json``."""
    import glob

    from repro.obs.stream import load_profile, merge_profiles
    fleet_path = os.path.join(profile_dir, "fleet.profile.json")
    shard_paths = sorted(
        path for path in glob.glob(
            os.path.join(profile_dir, "*.profile.json"))
        if os.path.abspath(path) != os.path.abspath(fleet_path))
    if not shard_paths:
        print(f"profiles: no shard profiles under {profile_dir} "
              "(all cells cached?)")
        return
    merged = merge_profiles([load_profile(path) for path in shard_paths])
    with open(fleet_path, "w", encoding="utf-8") as handle:
        handle.write(merged.to_json() + "\n")
    print(f"profiles: {len(shard_paths)} shard(s) merged -> {fleet_path} "
          f"({merged.total_events:,} events)")


def _finish(store: ResultStore, spec: SweepSpec, outcome,
            args) -> int:
    print(f"sweep {spec.name}: {outcome.computed} computed, "
          f"{outcome.cached} cached, {outcome.failed} failed, "
          f"{outcome.remaining} remaining "
          f"({outcome.elapsed_s:.1f}s wall)")
    if getattr(args, "events_out", None):
        records = _records_in_grid_order(store, spec)
        export_events_jsonl(args.events_out, records)
        print(f"events -> {args.events_out}")
    if getattr(args, "profile_dir", None):
        _merge_shard_profiles(args.profile_dir)
    if outcome.stopped:
        print("stopped early (--stop-after); run `repro-sweep resume "
              f"{store.root}` to finish")
        return 3
    if outcome.failed:
        return 1
    if not getattr(args, "quiet", False) and outcome.remaining == 0:
        records = _records_in_grid_order(store, spec)
        print()
        print(render_report(spec.name, records, spec.schedulers))
    return 0


def _spec_and_store(args):
    """Expand the preset and open (or create) its result store.

    Returns ``(spec, store)`` or an int exit code on a usage error.
    """
    name = args.preset if args.preset is not None else args.preset_opt
    if name is None:
        print(f"no preset given; choose from {sorted(PRESETS)}",
              file=sys.stderr)
        return 1
    if args.preset is not None and args.preset_opt is not None \
            and args.preset != args.preset_opt:
        print(f"conflicting presets: {args.preset!r} vs --preset "
              f"{args.preset_opt!r}", file=sys.stderr)
        return 1
    try:
        preset = PRESETS[name]
    except KeyError:
        print(f"unknown preset {name!r}; "
              f"choose from {sorted(PRESETS)}", file=sys.stderr)
        return 1
    kwargs = {}
    if args.seeds is not None:
        kwargs["n_seeds"] = args.seeds
    if args.seed is not None:
        kwargs["root_seed"] = args.seed
    spec = preset(**kwargs)
    if getattr(args, "kernel", None):
        spec.kernel = args.kernel
        spec.validate()
    store = _store_for(args.out, spec.name)
    if store.exists():
        stored = store.load_spec()
        if stored.as_dict() != spec.as_dict():
            print(f"{store.root} holds a different sweep "
                  f"({stored.name}); pass a fresh --out directory "
                  "or resume it instead", file=sys.stderr)
            return 1
    else:
        store.create(spec)
    return spec, store


def cmd_run(args: argparse.Namespace) -> int:
    prepared = _spec_and_store(args)
    if isinstance(prepared, int):
        return prepared
    spec, store = prepared
    with store:
        outcome = run_sweep(spec, store, _runner_options(args),
                            progress=_progress(args.quiet))
        return _finish(store, spec, outcome, args)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import Observability
    from repro.sweep.dist.transport import TcpTransport
    prepared = _spec_and_store(args)
    if isinstance(prepared, int):
        return prepared
    spec, store = prepared
    # The bus powers the live `tail` feed; flight/metrics are per-case
    # concerns that live inside the workers, not here.
    obs = Observability(metrics=False, flight=0)
    transport = TcpTransport(
        args.host, args.port,
        on_bound=lambda t: print(f"serving {spec.name} on "
                                 f"{t.host}:{t.port}", flush=True))
    with store:
        outcome = run_sweep(spec, store, _runner_options(args), obs=obs,
                            progress=_progress(args.quiet),
                            transport=transport)
        return _finish(store, spec, outcome, args)


def cmd_work(args: argparse.Namespace) -> int:
    from repro.sweep.dist.transport import connect
    from repro.sweep.dist.worker import work_loop
    name = args.name or f"{socket.gethostname()}-{os.getpid()}"
    recorder = None
    if args.profile_dir is not None:
        from repro.obs.stream import ShardRecorder
        recorder = ShardRecorder(args.profile_dir, name)
    channel = connect(args.connect)
    try:
        computed = work_loop(
            channel, name, fingerprint=code_fingerprint(),
            say=_progress(args.quiet), max_cases=args.max_cases,
            fail_after=args.fail_after,
            event_sink=recorder.record if recorder is not None else None)
    finally:
        if recorder is not None:
            shard = recorder.close()
            if shard is not None:
                print(f"shard profile -> {shard}")
    print(f"worker {name}: {computed} case(s) computed")
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    from repro.sweep.dist.transport import connect
    channel = connect(args.connect)
    channel.send({"type": "watch"})
    try:
        while True:
            frame = channel.recv()
            if frame is None or frame.get("type") == "drain":
                return 0
            if frame.get("type") == "meta":
                # Same header events_to_jsonl writes, so a captured tail
                # is a valid repro-analyze input.
                line = {"kind": "meta",
                        "schema_version": frame.get("schema_version"),
                        "source": "repro.obs"}
            elif frame.get("type") == "event":
                line = frame["event"]
            else:
                continue
            print(json.dumps(line, separators=(",", ":"),
                             sort_keys=True), flush=True)
    finally:
        channel.close()


def cmd_resume(args: argparse.Namespace) -> int:
    store = ResultStore(args.dir)
    spec = store.load_spec()
    with store:
        outcome = run_sweep(spec, store, _runner_options(args),
                            progress=_progress(args.quiet))
        return _finish(store, spec, outcome, args)


def _status_connect(args: argparse.Namespace) -> int:
    """Ask a live ``repro-sweep serve`` coordinator for its counters."""
    from repro.sweep.dist.transport import connect
    while True:
        try:
            channel = connect(args.connect, timeout_s=5.0)
        except ReproError:
            if args.watch is not None:
                # Polling a coordinator that has finished and exited.
                print(f"coordinator at {args.connect} is gone")
                return 0
            raise
        channel.send({"type": "status"})
        reply = channel.recv()
        channel.close()
        if reply is None or reply.get("type") != "status":
            print(f"no status reply from {args.connect}",
                  file=sys.stderr)
            return 1
        done, total = reply["done"], reply["total"]
        print(f"sweep at {args.connect}: {done}/{total} done "
              f"({reply['computed']} computed, {reply['cached']} cached, "
              f"{reply['failed']} failed), {reply['leased']} leased, "
              f"{reply['pending']} pending")
        for name, info in sorted(reply.get("workers", {}).items()):
            print(f"  worker {name}: {info['leases']} lease(s), "
                  f"seen {info['seen_s_ago']:.1f}s ago")
        if done >= total:
            return 0 if reply["failed"] == 0 else 3
        if args.watch is None:
            return 3
        time.sleep(args.watch)


def cmd_status(args: argparse.Namespace) -> int:
    if args.connect:
        return _status_connect(args)
    if not args.dir:
        print("status needs a sweep store directory or --connect",
              file=sys.stderr)
        return 1
    store = ResultStore(args.dir)
    spec = store.load_spec()
    while True:
        counts = store.status(fingerprint=code_fingerprint())
        print(f"sweep {spec.name} at {store.root}")
        print(f"  cells: {counts['ok']} ok, {counts['failed']} failed, "
              f"{counts['stale']} stale, {counts['pending']} pending "
              f"(of {counts['total']})")
        entries = store.journal_entries()
        if entries:
            last = entries[-1]
            detail = ", ".join(f"{k}={v}" for k, v in sorted(last.items())
                               if k != "event")
            print(f"  journal: {len(entries)} entries, "
                  f"last = {last['event']} ({detail})")
        if counts["pending"] == 0 or args.watch is None:
            return (0 if counts["pending"] == 0
                    and counts["failed"] == 0 else 3)
        time.sleep(args.watch)


def cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.dir)
    spec = store.load_spec()
    records = _records_in_grid_order(store, spec)
    if args.rank:
        text = render_rank_report(spec.name, records, args.pivot)
    else:
        text = render_report(spec.name, records, spec.schedulers)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"report -> {args.out}")
    else:
        print(text)
    if args.events_out:
        export_events_jsonl(args.events_out, records)
        print(f"events -> {args.events_out}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    base_store = ResultStore(args.baseline)
    cand_store = ResultStore(args.candidate)
    base_cells = fold_records(
        _records_in_grid_order(base_store, base_store.load_spec()))
    cand_cells = fold_records(
        _records_in_grid_order(cand_store, cand_store.load_spec()))
    print(diff_cells(base_cells, cand_cells))
    return 0


def _add_exec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: host cores; "
                             "0 = serial, in-process)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-case wall-clock budget in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts after a crash/timeout "
                             "(default 1)")
    parser.add_argument("--verify", action="store_true",
                        help="attach the repro.verify invariant checker "
                             "inside every worker")
    parser.add_argument("--stop-after", type=int, default=None,
                        help="stop dispatching after N computed cases "
                             "(simulates a killed run; resume finishes)")
    parser.add_argument("--ttl", type=float, default=15.0,
                        help="lease TTL in seconds: a worker silent this "
                             "long forfeits its cells (default 15)")
    parser.add_argument("--events-out", metavar="PATH", default=None,
                        help="write the sweep as a schema-v5 obs event "
                             "stream (JSONL)")
    parser.add_argument("--profile-dir", metavar="DIR", default=None,
                        help="record per-worker shard event streams "
                             "(.events.jsonl.gz) and streaming profiles "
                             "here; shards auto-merge into "
                             "fleet.profile.json (see repro-analyze "
                             "merge)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress and the final "
                             "report")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Parallel, resumable experiment sweeps with "
                    "content-addressed result caching.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a preset sweep (see `run --help` for presets)")
    run.add_argument("preset", nargs="?", choices=sorted(PRESETS),
                     default=None, help="which grid to run")
    run.add_argument("--preset", dest="preset_opt", metavar="NAME",
                     choices=sorted(PRESETS), default=None,
                     help="which grid to run (same as the positional)")
    run.add_argument("--out", metavar="DIR", default=None,
                     help="result-store directory (default: "
                          "benchmarks/results/sweeps/<preset>)")
    run.add_argument("--seeds", type=int, default=None,
                     help="seeds per cell (overrides the preset)")
    run.add_argument("--kernel", choices=("generic", "batched"),
                     default=None,
                     help="engine run loop for every cell (default: "
                          "the preset's, normally 'generic'; 'batched' "
                          "computes identical results faster)")
    run.add_argument("--seed", type=int, default=None,
                     help="root seed; per-cell seeds derive from it via "
                          "repro.sim.rng.derive_seed")
    _add_exec_options(run)
    run.set_defaults(func=cmd_run)

    resume = sub.add_parser(
        "resume", help="continue a killed or stopped sweep from its "
                       "store directory")
    resume.add_argument("dir", help="sweep store directory")
    _add_exec_options(resume)
    resume.set_defaults(func=cmd_resume)

    serve = sub.add_parser(
        "serve", help="coordinate a sweep over TCP, leasing cells to "
                      "`repro-sweep work` processes")
    serve.add_argument("preset", nargs="?", choices=sorted(PRESETS),
                       default=None, help="which grid to serve")
    serve.add_argument("--preset", dest="preset_opt", metavar="NAME",
                       choices=sorted(PRESETS), default=None,
                       help="which grid to serve (same as the positional)")
    serve.add_argument("--out", metavar="DIR", default=None,
                       help="result-store directory (default: "
                            "benchmarks/results/sweeps/<preset>)")
    serve.add_argument("--seeds", type=int, default=None,
                       help="seeds per cell (overrides the preset)")
    serve.add_argument("--kernel", choices=("generic", "batched"),
                       default=None,
                       help="engine run loop for every cell")
    serve.add_argument("--seed", type=int, default=None,
                       help="root seed; per-cell seeds derive from it")
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default 127.0.0.1; use "
                            "0.0.0.0 for a multi-machine fleet)")
    serve.add_argument("--port", type=int, default=7463,
                       help="listen port (default 7463; 0 picks a free "
                            "port, printed at startup)")
    _add_exec_options(serve)
    serve.set_defaults(func=cmd_serve)

    work = sub.add_parser(
        "work", help="join a served sweep as a worker")
    work.add_argument("--connect", required=True, metavar="HOST:PORT",
                      help="coordinator address")
    work.add_argument("--name", default=None,
                      help="worker name (default: <hostname>-<pid>)")
    work.add_argument("--max-cases", type=int, default=None,
                      help="disconnect cleanly after N cases (fleet "
                           "churn test hook)")
    work.add_argument("--fail-after", type=int, default=None,
                      help="hard-exit while holding a lease after N "
                           "cases (crash test hook)")
    work.add_argument("--profile-dir", metavar="DIR", default=None,
                      help="record this worker's shard event stream and "
                           "streaming profile here (merge shards with "
                           "repro-analyze merge)")
    work.add_argument("--quiet", action="store_true",
                      help="suppress per-case progress")
    work.set_defaults(func=cmd_work)

    tail = sub.add_parser(
        "tail", help="stream a serving coordinator's obs event feed "
                     "as JSONL")
    tail.add_argument("--connect", required=True, metavar="HOST:PORT",
                      help="coordinator address")
    tail.set_defaults(func=cmd_tail)

    status = sub.add_parser(
        "status", help="cell counts and journal tail for a sweep store "
                       "(or a live coordinator via --connect)")
    status.add_argument("dir", nargs="?", default=None,
                        help="sweep store directory")
    status.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="query a live `repro-sweep serve` "
                             "coordinator instead of a store directory")
    status.add_argument("--watch", type=float, metavar="SECONDS",
                        default=None,
                        help="poll every SECONDS until the sweep "
                             "completes")
    status.set_defaults(func=cmd_status)

    report = sub.add_parser(
        "report", help="statistics + A/B tables for a sweep store")
    report.add_argument("dir", help="sweep store directory")
    report.add_argument("-o", "--out", default=None,
                        help="write the report to a file")
    report.add_argument("--events-out", metavar="PATH", default=None,
                        help="also export the schema-v5 JSONL stream")
    report.add_argument("--rank", action="store_true",
                        help="render the ranked scheduler x workload "
                             "speedup matrix instead of the pairwise "
                             "tables (the tournament view)")
    report.add_argument("--pivot", default="coretime", metavar="NAME",
                        help="baseline scheduler for --rank speedups "
                             "(default: coretime)")
    report.set_defaults(func=cmd_report)

    diff = sub.add_parser(
        "diff", help="cell-by-cell mean deltas between two sweep stores")
    diff.add_argument("baseline", help="baseline sweep store directory")
    diff.add_argument("candidate", help="candidate sweep store directory")
    diff.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted — `repro-sweep resume` continues from the "
              "journal", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())

"""Fold per-case sweep records into statistics, tables and exports.

A sweep's unit of truth is one record per (machine, scheduler, workload,
seed) cell.  Reports want the seed axis collapsed:
:func:`fold_records` groups records into :class:`SweepCell`s whose
``stats`` is a :class:`repro.analysis.SampleStats` over the per-seed
throughputs (mean, stdev, 95% CI) plus p50/p95 quantiles.  A/B scheduler
comparisons reuse :class:`repro.analysis.SpeedupResult`: seeds are
paired, so a "robust" speedup means the candidate won on *every* seed.

``export_events_jsonl`` writes the sweep as a schema-version-5 obs event
stream (``sweep_start``/``sweep_end``/``sweep_fail``), loadable by the
same ``repro.obs.profile`` ingest that ``repro-analyze diff`` uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis import SampleStats, SpeedupResult, summarise
from repro.obs.events import (Event, SweepCaseFailed, SweepCaseFinished,
                              SweepCaseStarted)
from repro.obs.export import write_jsonl


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile (q in [0, 1]) of ``values``."""
    if not values:
        raise ValueError("no samples")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


#: Grouping key of one aggregated cell: the grid minus the seed axis.
CellKey = Tuple[str, str, str]          # (machine, scheduler, workload)


@dataclass
class SweepCell:
    """All seeds of one (machine, scheduler, workload) coordinate."""

    machine: str
    scheduler: str
    workload: str
    x: Optional[float]
    #: kops/s per seed, in seed_index order.
    values: List[float]
    seeds: List[int]
    stats: SampleStats

    @property
    def p50(self) -> float:
        return percentile(self.values, 0.50)

    @property
    def p95(self) -> float:
        return percentile(self.values, 0.95)

    @property
    def key(self) -> CellKey:
        return (self.machine, self.scheduler, self.workload)


def ok_records(records: Iterable[Optional[dict]]) -> List[dict]:
    return [r for r in records
            if r is not None and r.get("status") == "ok"]


def failed_records(records: Iterable[Optional[dict]]) -> List[dict]:
    return [r for r in records
            if r is not None and r.get("status") == "failed"]


def fold_records(records: Iterable[Optional[dict]]) -> List[SweepCell]:
    """Collapse the seed axis: one cell per grid coordinate."""
    grouped: Dict[CellKey, List[dict]] = {}
    for record in ok_records(records):
        case = record["case"]
        key = (case["machine_label"], case["scheduler"],
               case["workload_label"])
        grouped.setdefault(key, []).append(record)
    cells = []
    for key in sorted(grouped):
        group = sorted(grouped[key],
                       key=lambda r: r["case"]["seed_index"])
        values = [r["point"]["kops_per_sec"] for r in group]
        case = group[0]["case"]
        cells.append(SweepCell(
            machine=key[0], scheduler=key[1], workload=key[2],
            x=case.get("x"), values=values,
            seeds=[r["case"]["seed_index"] for r in group],
            stats=summarise(values)))
    return cells


def compare_schedulers(cells: Sequence[SweepCell], baseline: str,
                       candidate: str) -> Dict[Tuple[str, str],
                                               SpeedupResult]:
    """Seed-paired A/B comparison per (machine, workload) coordinate."""
    by_key = {cell.key: cell for cell in cells}
    comparisons: Dict[Tuple[str, str], SpeedupResult] = {}
    for cell in cells:
        if cell.scheduler != baseline:
            continue
        other = by_key.get((cell.machine, candidate, cell.workload))
        if other is None or other.seeds != cell.seeds:
            continue
        ratios = [c / b if b else float("inf")
                  for b, c in zip(cell.values, other.values)]
        comparisons[(cell.machine, cell.workload)] = SpeedupResult(
            cell.stats, other.stats, ratios)
    return comparisons


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_cells(cells: Sequence[SweepCell]) -> str:
    """Per-cell statistics table (kops/s across seeds)."""
    if not cells:
        return "(no completed cells)"
    rows = []
    for cell in cells:
        low, high = cell.stats.ci95()
        rows.append([
            cell.machine, cell.workload, cell.scheduler,
            str(cell.stats.n),
            f"{cell.stats.mean:,.0f}",
            f"[{low:,.0f}, {high:,.0f}]",
            f"{cell.p50:,.0f}", f"{cell.p95:,.0f}",
        ])
    return _format_table(
        ["machine", "workload", "scheduler", "seeds", "mean kops/s",
         "95% CI", "p50", "p95"], rows)


def render_comparison(cells: Sequence[SweepCell], baseline: str,
                      candidate: str) -> str:
    """A/B table: ``candidate`` vs ``baseline`` per grid coordinate."""
    comparisons = compare_schedulers(cells, baseline, candidate)
    if not comparisons:
        return (f"(no paired cells for {candidate} vs {baseline} — "
                "check scheduler names and that both completed)")
    rows = []
    for (machine, workload), result in sorted(comparisons.items()):
        rows.append([
            machine, workload,
            f"{result.baseline.mean:,.0f}",
            f"{result.candidate.mean:,.0f}",
            f"{result.mean_speedup:.2f}x",
            "robust" if result.robust else "mixed",
        ])
    return _format_table(
        ["machine", "workload", f"{baseline} kops/s",
         f"{candidate} kops/s", "speedup", "across seeds"], rows)


def render_failures(records: Iterable[Optional[dict]],
                    limit: int = 10) -> str:
    failures = failed_records(records)
    if not failures:
        return ""
    lines = [f"{len(failures)} failed cell(s):"]
    for record in failures[:limit]:
        case = record["case"]
        label = (f"{case['machine_label']}/{case['scheduler']}/"
                 f"{case['workload_label']}/s{case['seed_index']}")
        lines.append(f"  {label}: {record.get('error')}")
    if len(failures) > limit:
        lines.append(f"  ... and {len(failures) - limit} more")
    return "\n".join(lines)


def render_report(name: str, records: Iterable[Optional[dict]],
                  schedulers: Sequence[str]) -> str:
    """Full sweep report: stats per cell + every pairwise A/B table."""
    records = list(records)
    cells = fold_records(records)
    parts = [f"sweep report: {name}", "", render_cells(cells)]
    baseline = schedulers[0] if schedulers else None
    for candidate in list(schedulers)[1:]:
        parts.extend(["",
                      f"-- {candidate} vs {baseline} --",
                      render_comparison(cells, baseline, candidate)])
    failures = render_failures(records)
    if failures:
        parts.extend(["", failures])
    return "\n".join(parts)


def render_rank(cells: Sequence[SweepCell], pivot: str) -> str:
    """Ranked scheduler x workload speedup matrix against ``pivot``.

    One row per scheduler, one column per (machine, workload)
    coordinate the pivot completed, each cell the seed-paired mean
    speedup of that scheduler over the pivot (``compare_schedulers``
    pairing — a '*' marks a robust cell, i.e. the scheduler won or
    lost on *every* seed the same way).  Rows are ranked by the
    geometric mean across coordinates, so the table reads top-to-bottom
    as the tournament result.
    """
    pivot_cells = [cell for cell in cells if cell.scheduler == pivot]
    if not pivot_cells:
        return f"(no completed cells for pivot {pivot!r})"
    # Columns in sweep-axis order: by machine, then x coordinate.
    coords = [(cell.machine, cell.workload)
              for cell in sorted(
                  pivot_cells,
                  key=lambda c: (c.machine,
                                 c.x if c.x is not None else float("inf"),
                                 c.workload))]
    many_machines = len({machine for machine, _ in coords}) > 1
    def coord_label(machine: str, workload: str) -> str:
        return f"{machine}/{workload}" if many_machines else workload
    schedulers = sorted({cell.scheduler for cell in cells})
    rows = []                     # (geomean, name, per-coord cells, text)
    for scheduler in schedulers:
        if scheduler == pivot:
            continue
        comparisons = compare_schedulers(cells, pivot, scheduler)
        texts = []
        ratios = []
        for coord in coords:
            result = comparisons.get(coord)
            if result is None:
                texts.append("-")
                continue
            ratios.append(result.mean_speedup)
            consistent = (all(r > 1.0 for r in result.per_seed_ratios)
                          or all(r < 1.0 for r in result.per_seed_ratios))
            texts.append(f"{result.mean_speedup:.2f}x"
                         + ("*" if consistent else ""))
        positive = [r for r in ratios if r > 0]
        if positive:
            geomean = math.exp(sum(math.log(r) for r in positive)
                               / len(positive))
            mean_text = f"{geomean:.2f}x"
        else:
            geomean = float("-inf")
            mean_text = "-"
        rows.append((geomean, scheduler, texts, mean_text))
    # The pivot ranks where its 1.00x geomean falls.
    ranked = sorted(
        rows + [(1.0, pivot, ["1.00x" for _ in coords], "1.00x")],
        key=lambda row: (-row[0], row[1]))
    table_rows = [
        [str(position + 1), scheduler] + texts + [mean_text]
        for position, (_, scheduler, texts, mean_text)
        in enumerate(ranked)]
    headers = (["#", "scheduler"]
               + [coord_label(machine, workload)
                  for machine, workload in coords]
               + ["geomean"])
    legend = (f"speedup vs {pivot} (seed-paired mean; "
              "* = same winner on every seed)")
    return _format_table(headers, table_rows) + "\n" + legend


def render_rank_report(name: str, records: Iterable[Optional[dict]],
                       pivot: str) -> str:
    """The ``report --rank`` payload: ranked matrix + failures."""
    records = list(records)
    parts = [f"tournament rank: {name} (pivot: {pivot})", "",
             render_rank(fold_records(records), pivot)]
    failures = render_failures(records)
    if failures:
        parts.extend(["", failures])
    return "\n".join(parts)


def diff_cells(base_cells: Sequence[SweepCell],
               cand_cells: Sequence[SweepCell]) -> str:
    """Cell-by-cell mean deltas between two sweeps (e.g. two commits)."""
    base_by_key = {cell.key: cell for cell in base_cells}
    rows = []
    for cell in cand_cells:
        base = base_by_key.get(cell.key)
        if base is None:
            continue
        delta = ((cell.stats.mean - base.stats.mean)
                 / base.stats.mean * 100 if base.stats.mean else 0.0)
        significant = (cell.stats.ci95()[0] > base.stats.ci95()[1]
                       or cell.stats.ci95()[1] < base.stats.ci95()[0])
        rows.append([
            cell.machine, cell.workload, cell.scheduler,
            f"{base.stats.mean:,.0f}", f"{cell.stats.mean:,.0f}",
            f"{delta:+.1f}%",
            "CI-separated" if significant else "overlapping",
        ])
    if not rows:
        return "(no overlapping cells)"
    return _format_table(
        ["machine", "workload", "scheduler", "base kops/s",
         "cand kops/s", "delta", "confidence"], rows)


# ---------------------------------------------------------------------------
# JSONL export (repro-analyze-compatible event stream)
# ---------------------------------------------------------------------------

def records_to_events(records: Iterable[Optional[dict]]) -> List[Event]:
    """Sweep records as a deterministic obs event stream.

    One ``sweep_start`` + ``sweep_end``/``sweep_fail`` pair per record,
    ordered by case key so two stores holding the same results export
    byte-identical streams regardless of execution order.
    """
    events: List[Event] = []
    ordered = sorted((r for r in records if r is not None),
                     key=lambda r: r["case_key"])
    for sequence, record in enumerate(ordered):
        case = record["case"]
        events.append(SweepCaseStarted(
            sequence, record["case_key"], case["scheduler"],
            case["workload_label"], case.get("seed")))
        if record["status"] == "ok":
            events.append(SweepCaseFinished(
                sequence, record["case_key"], case["scheduler"],
                case["workload_label"], record["point"]["kops_per_sec"]))
        else:
            events.append(SweepCaseFailed(
                sequence, record["case_key"], case["scheduler"],
                case["workload_label"],
                record.get("error") or "unknown"))
    return events


def export_events_jsonl(path: str,
                        records: Iterable[Optional[dict]]) -> str:
    """Write the sweep as schema-v5 JSONL (``repro-analyze`` ingests it)."""
    return write_jsonl(path, records_to_events(records))

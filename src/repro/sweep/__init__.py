"""repro.sweep — parallel, resumable experiment orchestration.

The subsystem that turns "evaluate every (machine, scheduler, workload,
seed) cell of this grid" from a serial in-process loop into a declarative,
shardable, crash-safe job:

* :class:`~repro.sweep.spec.SweepSpec` declares the grid (named axes +
  filters) and expands it into content-hashable
  :class:`~repro.sweep.spec.SweepCase` cells;
* :func:`~repro.sweep.runner.run_sweep` executes cells serially
  (``workers=0``), across a local subprocess pool, or — via
  :mod:`repro.sweep.dist` — over a TCP worker fleet, with leases,
  heartbeats, per-case timeout, bounded retry and crash isolation;
* :class:`~repro.sweep.store.ResultStore` caches finished cells on disk
  keyed by (case hash, code fingerprint) and journals progress so a
  killed sweep resumes without recomputing;
* :mod:`~repro.sweep.aggregate` folds seeds into
  :class:`repro.analysis.SampleStats`, renders A/B scheduler tables and
  exports schema-v5 obs event streams;
* ``repro-sweep`` (:mod:`repro.sweep.cli`) is the console front end:
  ``run`` / ``status`` / ``resume`` / ``report`` / ``diff`` plus the
  distributed ``serve`` / ``work`` / ``tail``.

Quick use::

    from repro.sweep import RunnerOptions, run_sweep
    from repro.sweep.presets import fig4a
    from repro.sweep.store import ResultStore

    spec = fig4a(n_seeds=3)
    store = ResultStore("benchmarks/results/sweeps/fig4a").create(spec)
    outcome = run_sweep(spec, store, RunnerOptions(workers=8))
"""

from repro.sweep.aggregate import (SweepCell, compare_schedulers,
                                   diff_cells, export_events_jsonl,
                                   fold_records, render_report)
from repro.sweep.runner import (RunnerOptions, SweepOutcome, execute_case,
                                execute_case_record, run_sweep)
from repro.sweep.spec import (MachineAxis, SweepCase, SweepSpec,
                              WorkloadAxis, code_fingerprint)
from repro.sweep.store import ResultStore, StoreError, default_sweep_root

__all__ = [
    "MachineAxis",
    "ResultStore",
    "RunnerOptions",
    "StoreError",
    "SweepCase",
    "SweepCell",
    "SweepOutcome",
    "SweepSpec",
    "WorkloadAxis",
    "code_fingerprint",
    "compare_schedulers",
    "default_sweep_root",
    "diff_cells",
    "execute_case",
    "execute_case_record",
    "export_events_jsonl",
    "fold_records",
    "render_report",
    "run_sweep",
]

"""The sweep coordinator: lease cells out, survive the fleet.

The coordinator owns the sweep's control state — a pending deque, the
:class:`~repro.sweep.dist.lease.LeaseTable`, per-case attempt counts —
and treats workers as untrusted, disposable compute: any worker may
crash, hang, or vanish at any point, and the only durable truth is the
content-addressed :class:`~repro.sweep.store.ResultStore` the caller's
``finalize`` callback writes into.

Concurrency model: all I/O multiplexes onto one asyncio loop, but every
*decision* is made synchronously.  A reader task per connection pushes
``(channel, frame)`` pairs onto a single queue (``None`` frames mark
disconnects); the main loop pops one at a time and calls the plain-sync
:meth:`_handle`, interleaved with a periodic :meth:`_tick` for TTL and
timeout sweeps.  Replies never await (``Channel.send`` is
fire-and-forget), so there is exactly one state-machine mutation in
flight at any moment — which is why the unit tests can drive
``_handle``/``_tick`` directly with stub channels and a fake clock, no
event loop required.

Failure policy (the PR-5 pool semantics, generalised):

* a lease whose worker misses heartbeats past the TTL is **expired**;
* a worker whose connection drops loses all its leases (``worker
  lost``); local pool workers are respawned via
  :meth:`~repro.sweep.dist.transport.Transport.replenish`;
* a lease older than the per-case ``--timeout`` budget gets its worker
  kicked (``timeout``) — distinct from the TTL, because a *hung
  simulator* still heartbeats.

Each reclaim publishes a ``LeaseExpired`` event and either requeues the
cell at the *front* of the deque (attempt <= retries; front, so a
retried cell keeps its dispatch-order position) or records it failed.
Completion is idempotent: records carry only deterministic fields, so a
late result from a worker presumed dead is byte-identical to the retry
and the second copy is dropped without effect.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import (LeaseExpired, Observability, WorkerJoined,
                       WorkerLost)
from repro.obs.export import SCHEMA_VERSION
from repro.sweep.dist.lease import LeaseTable
from repro.sweep.dist.transport import Channel, Transport
from repro.sweep.store import make_record

#: Default lease-table sweep interval (seconds) when the queue is idle.
TICK_S = 0.1
#: Default retry delay handed to workers in ``wait`` frames.
WAIT_S = 0.5


class Seq:
    """Shared dispatch-sequence counter (the obs ``ts`` for sweep events).

    The runner's announce/finalize closures and the coordinator's
    worker-lifecycle events draw from one counter, so the merged event
    stream has a single total order.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def next(self) -> int:
        value = self.value
        self.value += 1
        return value


class Coordinator:
    """Drive one sweep's todo list over a :class:`Transport`.

    ``announce(case, key)`` and ``finalize(case, key, record, elapsed,
    attempt)`` are the runner's closures (journal + bus + outcome
    bookkeeping); the coordinator never touches the store directly
    except to journal its own worker-lifecycle entries.
    """

    def __init__(self, todo: List[Tuple], transport: Transport,
                 options, fingerprint: str, *,
                 announce: Callable, finalize: Callable, outcome,
                 say: Optional[Callable[[str], None]] = None,
                 obs: Optional[Observability] = None,
                 store=None, seq: Optional[Seq] = None,
                 clock: Callable[[], float] = time.monotonic,
                 tick_s: float = TICK_S, wait_s: float = WAIT_S) -> None:
        self.transport = transport
        self.options = options
        self.fingerprint = fingerprint
        self.announce = announce
        self.finalize = finalize
        self.outcome = outcome
        self.say = say if say is not None else (lambda message: None)
        self.bus = obs.bus if obs is not None else None
        self.store = store
        self.seq = seq if seq is not None else Seq()
        self.tick_s = tick_s
        self.wait_s = wait_s
        self._clock = clock

        self.pending = deque(todo)                    # (case, key)
        self.cases = {key: case for case, key in todo}
        self.attempts: Dict[str, int] = {}
        self.granted_at: Dict[str, float] = {}
        self.leases = LeaseTable(options.lease_ttl_s, clock)
        self.workers: Dict[str, Channel] = {}
        self.worker_seen: Dict[str, float] = {}
        self.watchers: List[Channel] = []
        self.channels: set = set()

        self._queue: Optional[asyncio.Queue] = None
        self._loop = None
        self._readers: List[asyncio.Task] = []

    # ------------------------------------------------------------------
    # progress predicates
    # ------------------------------------------------------------------

    def _stop_reached(self) -> bool:
        stop_after = self.options.stop_after
        return (stop_after is not None
                and self.outcome.computed + len(self.leases) >= stop_after)

    def _finished(self) -> bool:
        if self.leases:
            return False
        if not self.pending:
            return True
        return self._stop_reached()   # cells remain, but dispatch stopped

    # ------------------------------------------------------------------
    # message handling (synchronous — one mutation at a time)
    # ------------------------------------------------------------------

    def _handle(self, channel: Channel, message: dict) -> None:
        if channel.worker is not None:
            self.worker_seen[channel.worker] = self._clock()
        kind = message.get("type")
        if kind == "hello":
            self._handle_hello(channel, message)
        elif kind == "request":
            self._handle_request(channel)
        elif kind == "heartbeat":
            if channel.worker is not None:
                self.leases.renew_worker(channel.worker)
        elif kind == "result":
            self._handle_result(channel, message)
        elif kind == "status":
            channel.send(self.status_payload())
            channel.close()
        elif kind == "watch":
            self.watchers.append(channel)
            channel.send({"type": "meta",
                          "schema_version": SCHEMA_VERSION})
        else:
            channel.send({"type": "reject",
                          "reason": f"unknown frame type {kind!r}"})
            channel.close()

    def _reject(self, channel: Channel, reason: str) -> None:
        channel.send({"type": "reject", "reason": reason})
        channel.close()

    def _handle_hello(self, channel: Channel, message: dict) -> None:
        name = message.get("worker")
        fingerprint = message.get("fingerprint")
        if not isinstance(name, str) or not name:
            self._reject(channel, "hello carried no worker name")
            return
        if fingerprint is not None and fingerprint != self.fingerprint:
            self._reject(
                channel,
                f"code fingerprint {fingerprint} does not match the "
                f"coordinator's {self.fingerprint}; records would not "
                f"be comparable — update the worker's tree")
            return
        if name in self.workers:
            self._reject(channel, f"worker name {name!r} is already "
                                  f"connected")
            return
        channel.worker = name
        self.workers[name] = channel
        self.worker_seen[name] = self._clock()
        ts = self.seq.next()
        if self.bus is not None and self.bus.wants(WorkerJoined):
            self.bus.publish(WorkerJoined(ts, name))
        self._journal("worker_join", worker=name)
        self.say(f"worker {name} joined")
        channel.send({"type": "welcome",
                      "ttl_s": self.options.lease_ttl_s,
                      "wait_s": self.wait_s})

    def _handle_request(self, channel: Channel) -> None:
        name = channel.worker
        if name is None:
            self._reject(channel, "request before hello")
            return
        if self.pending and not self._stop_reached():
            case, key = self.pending.popleft()
            attempt = self.attempts.get(key, 0) + 1
            self.attempts[key] = attempt
            lease = self.leases.grant(key, name, attempt)
            self.granted_at[key] = lease.granted_at
            if attempt == 1:
                self.announce(case, key)
            channel.send({"type": "lease", "key": key,
                          "case": case.as_dict(),
                          "fingerprint": self.fingerprint,
                          "verify": self.options.verify,
                          "flight": self.options.flight})
        elif self.leases:
            # Everything grantable is leased out (or dispatch is
            # stopped); a reclaim may requeue work, so hold the worker.
            channel.send({"type": "wait", "for_s": self.wait_s})
        else:
            channel.send({"type": "drain"})

    def _handle_result(self, channel: Channel, message: dict) -> None:
        key = message.get("key")
        record = message.get("record")
        if channel.worker is None or not isinstance(record, dict):
            return
        lease = self.leases.release(key)
        case = self.cases.get(key)
        if case is None:
            return                   # not a cell of this sweep
        if self.outcome.records.get(key) is not None:
            return                   # idempotent duplicate: drop
        # A reclaimed-but-now-delivered cell may sit requeued; take it
        # back out rather than computing it twice.
        for index, (_, pending_key) in enumerate(self.pending):
            if pending_key == key:
                del self.pending[index]
                break
        attempt = (lease.attempt if lease is not None
                   else self.attempts.get(key, 1))
        elapsed = self._clock() - self.granted_at.get(key, self._clock())
        self.finalize(case, key, record, elapsed, attempt)

    # ------------------------------------------------------------------
    # lease policing
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        for lease in self.leases.expired():
            self._reclaim(
                lease, "expired",
                f"lease expired after {self.leases.ttl_s:g}s without a "
                f"heartbeat")
        timeout_s = self.options.timeout_s
        if timeout_s is not None:
            for lease in self.leases.overdue(timeout_s):
                self.leases.release(lease.key)
                worker_channel = self.workers.get(lease.worker)
                if worker_channel is not None:
                    self.transport.kick(worker_channel)
                self._reclaim(lease, "timeout",
                              f"timeout after {timeout_s:g}s")

    def _reclaim(self, lease, reason: str, detail: str) -> None:
        """A lease died (``reason``): requeue its cell or fail it."""
        case = self.cases[lease.key]
        ts = self.seq.next()
        if self.bus is not None and self.bus.wants(LeaseExpired):
            self.bus.publish(LeaseExpired(ts, lease.key, lease.worker,
                                          lease.attempt, reason))
        self._journal("lease_expired", case=lease.key,
                      worker=lease.worker, attempt=lease.attempt,
                      reason=reason)
        if lease.attempt <= self.options.retries:
            self.say(f"retrying {case.describe()} ({detail})")
            self.pending.appendleft((case, lease.key))
        else:
            record = make_record(lease.key, case.as_dict(),
                                 self.fingerprint, "failed", error=detail)
            self.finalize(case, lease.key, record,
                          self._clock() - lease.granted_at, lease.attempt)

    def _on_disconnect(self, channel: Channel) -> None:
        self.channels.discard(channel)
        if channel in self.watchers:
            self.watchers.remove(channel)
        name = channel.worker
        if name is not None and self.workers.get(name) is channel:
            del self.workers[name]
            held = self.leases.worker_leases(name)
            for lease in held:
                self.leases.release(lease.key)
            ts = self.seq.next()
            if self.bus is not None and self.bus.wants(WorkerLost):
                self.bus.publish(WorkerLost(ts, name, len(held)))
            self._journal("worker_lost", worker=name, leases=len(held))
            if held:
                self.say(f"worker {name} lost "
                         f"({len(held)} lease(s) reclaimed)")
            detail = channel.death_detail()
            for lease in held:
                self._reclaim(lease, "worker lost", detail)
            if self.pending or self.leases:
                self.transport.replenish()
        channel.close()

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    def status_payload(self) -> dict:
        now = self._clock()
        workers = {
            name: {
                "leases": len(self.leases.worker_leases(name)),
                "seen_s_ago": round(now - self.worker_seen[name], 3),
            }
            for name in sorted(self.workers)
        }
        records = self.outcome.records
        return {
            "type": "status",
            "total": len(records),
            "done": sum(1 for record in records.values()
                        if record is not None),
            "pending": len(self.pending),
            "leased": len(self.leases),
            "computed": self.outcome.computed,
            "cached": self.outcome.cached,
            "failed": self.outcome.failed,
            "workers": workers,
        }

    def _journal(self, event: str, **fields) -> None:
        if self.store is not None:
            self.store.journal(event, **fields)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def _broadcast(self, event) -> None:
        """Bus handler: forward every sweep event to watch subscribers."""
        if not self.watchers:
            return
        frame = {"type": "event", "event": event.as_dict()}
        for watcher in list(self.watchers):
            watcher.send(frame)

    def _on_channel(self, channel: Channel) -> None:
        self.channels.add(channel)
        self._readers.append(self._loop.create_task(self._reader(channel)))

    async def _reader(self, channel: Channel) -> None:
        while True:
            message = await channel.recv()
            await self._queue.put((channel, message))
            if message is None:
                return

    def run(self) -> None:
        """Drive the sweep to completion (blocking)."""
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        if self.bus is not None:
            self.bus.subscribe(self._broadcast)
        try:
            await self.transport.start(self._on_channel)
            while not self._finished():
                try:
                    channel, message = await asyncio.wait_for(
                        self._queue.get(), timeout=self.tick_s)
                except asyncio.TimeoutError:
                    pass
                else:
                    if message is None:
                        self._on_disconnect(channel)
                    else:
                        self._handle(channel, message)
                self._tick()
            if self.pending:
                self.outcome.stopped = True
        finally:
            if self.bus is not None:
                self.bus.unsubscribe(self._broadcast)
            drain = {"type": "drain"}
            for channel in list(self.channels):
                channel.send(drain)
            await asyncio.sleep(0.05)     # let the drains flush
            for task in self._readers:
                task.cancel()
            await self.transport.stop()
            for channel in list(self.channels):
                channel.close()

"""The sweep worker loop: lease cells, compute, report, heartbeat.

One synchronous request/reply loop shared by both kinds of worker:

* local pool subprocesses (:func:`local_worker_main`, spawned by
  :class:`~repro.sweep.dist.transport.LocalTransport` over a duplex
  pipe), and
* remote ``repro-sweep work --connect host:port`` processes (a blocking
  TCP socket from :func:`~repro.sweep.dist.transport.connect`).

The loop is deliberately dumb: hello, then request cells one at a time
and compute them with the same :func:`~repro.sweep.runner.
execute_case_record` the serial path uses — which is what makes records
byte-identical across serial, local-pool and TCP execution.  While the
main thread is inside a simulation, a daemon side thread heartbeats at
a third of the coordinator's lease TTL so a *slow* case is never
mistaken for a *dead* worker (the per-case ``--timeout`` budget is the
coordinator's separate, deliberate kill switch).

Test hooks: ``max_cases`` disconnects cleanly after N results (a worker
that leaves mid-sweep), ``fail_after`` hard-exits via ``os._exit`` on
the next lease after N results — a crash that *holds a granted lease*,
which is exactly the case the lease TTL + requeue machinery exists for.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.sweep.dist.protocol import ProtocolError
from repro.sweep.dist.transport import PipeWorkerChannel, WorkerChannel

#: Heartbeats per lease TTL; 3 gives two chances to miss before expiry.
HEARTBEATS_PER_TTL = 3


def work_loop(channel: WorkerChannel, name: str,
              fingerprint: Optional[str] = None,
              say: Optional[Callable[[str], None]] = None,
              max_cases: Optional[int] = None,
              fail_after: Optional[int] = None,
              event_sink: Optional[Callable] = None) -> int:
    """Serve leases from ``channel`` until drained; returns cases done.

    ``fingerprint`` is this worker's :func:`~repro.sweep.spec.
    code_fingerprint`; pass None only for trusted local pipe workers
    (they share the coordinator's tree by construction).  Raises
    :class:`~repro.errors.ConfigError` if the coordinator rejects the
    handshake (fingerprint or name mismatch).  ``event_sink(case, key,
    events)`` receives each computed case's event recording (a shard
    recorder, usually) — results stay records-only on the wire; the
    recording lands next to the worker.
    """
    from repro.sweep.runner import execute_case_record
    from repro.sweep.spec import SweepCase

    say = say if say is not None else (lambda message: None)
    channel.send({"type": "hello", "worker": name,
                  "fingerprint": fingerprint})
    reply = channel.recv()
    if reply is None:
        raise ConfigError("coordinator closed the connection during "
                          "the handshake")
    if reply.get("type") == "reject":
        raise ConfigError(f"coordinator rejected worker {name!r}: "
                          f"{reply.get('reason', 'no reason given')}")
    if reply.get("type") != "welcome":
        raise ProtocolError(
            f"expected welcome, got {reply.get('type')!r}")
    ttl_s = float(reply.get("ttl_s", 15.0))
    wait_s = float(reply.get("wait_s", 0.5))

    stop_heartbeat = threading.Event()

    def heartbeat() -> None:
        interval = max(ttl_s / HEARTBEATS_PER_TTL, 0.05)
        while not stop_heartbeat.wait(interval):
            try:
                channel.send({"type": "heartbeat", "worker": name})
            except (OSError, ValueError):
                return               # channel gone; main loop will see it

    beat = threading.Thread(target=heartbeat, daemon=True,
                            name=f"heartbeat-{name}")
    beat.start()

    computed = 0
    try:
        while True:
            try:
                channel.send({"type": "request", "worker": name})
            except (OSError, ValueError):
                break
            reply = channel.recv()
            if reply is None:
                break                # coordinator gone
            kind = reply.get("type")
            if kind == "wait":
                time.sleep(float(reply.get("for_s", wait_s)))
                continue
            if kind == "drain":
                break
            if kind != "lease":
                raise ProtocolError(
                    f"expected lease/wait/drain, got {kind!r}")
            if fail_after is not None and computed >= fail_after:
                # Crash while holding this freshly-granted lease: the
                # coordinator must reclaim and requeue it.
                os._exit(9)
            case = SweepCase.from_dict(reply["case"])
            say(f"leased {case.describe()}")
            record = execute_case_record(
                case, reply["fingerprint"],
                verify=bool(reply.get("verify", False)),
                flight=int(reply.get("flight", 0)),
                case_key=reply["key"], event_sink=event_sink)
            try:
                channel.send({"type": "result", "worker": name,
                              "key": reply["key"], "record": record})
            except (OSError, ValueError):
                break
            computed += 1
            if max_cases is not None and computed >= max_cases:
                break                # clean departure mid-sweep
    finally:
        stop_heartbeat.set()
        beat.join(timeout=1.0)
        channel.close()
    return computed


def local_worker_main(conn, name: str,
                      profile_dir: Optional[str] = None) -> None:
    """Subprocess entry point for one local pool worker."""
    channel = PipeWorkerChannel(conn)
    recorder = None
    if profile_dir is not None:
        from repro.obs.stream import ShardRecorder
        recorder = ShardRecorder(profile_dir, name)
    try:
        # fingerprint=None: a pipe worker runs the coordinator's own
        # tree, so there is nothing to cross-check.
        work_loop(channel, name, fingerprint=None,
                  event_sink=recorder.record if recorder is not None
                  else None)
    except (ConfigError, ProtocolError, KeyboardInterrupt):
        pass                         # parent shut down / user ^C: exit quietly
    finally:
        if recorder is not None:
            recorder.close()

"""repro.sweep.dist — distributed sweep execution over leased cells.

The transport-agnostic generalization of the PR-5 worker pool: an async
coordinator **leases** grid cells to workers over an abstract
:class:`~repro.sweep.dist.transport.Transport`, with the existing
content-addressed :class:`~repro.sweep.store.ResultStore` as the single
source of truth.  Two transports ship:

* :class:`~repro.sweep.dist.transport.LocalTransport` — ``N`` worker
  subprocesses over duplex pipes; this is what ``repro-sweep run
  --workers N`` uses, so the single-machine pool and a remote fleet are
  literally the same code path;
* :class:`~repro.sweep.dist.transport.TcpTransport` — length-prefixed
  JSON frames over asyncio TCP; ``repro-sweep serve`` listens, and any
  number of ``repro-sweep work --connect host:port`` processes (on any
  machine sharing the source tree) join the fleet.

Robustness model (DESIGN.md §11): every granted cell is a lease with a
TTL; workers heartbeat to keep their leases alive; an expired or
orphaned lease is requeued deterministically under the PR-5 retry
budget, and completion is idempotent — records are keyed by ``(case
key, code fingerprint)`` and carry only deterministic fields, so a
duplicate result from a worker presumed dead is byte-identical and
harmless.  The coordinator also answers ``status`` queries and streams
the schema-v5 obs event feed to ``watch`` subscribers on the same port.
"""

from repro.sweep.dist.coordinator import Coordinator
from repro.sweep.dist.lease import Lease, LeaseTable
from repro.sweep.dist.protocol import (MAX_FRAME_BYTES, ProtocolError,
                                       encode_frame, read_frame,
                                       recv_frame, send_frame)
from repro.sweep.dist.transport import (Channel, LocalTransport,
                                        PipeWorkerChannel,
                                        SocketWorkerChannel, TcpTransport,
                                        Transport, WorkerChannel, connect)
from repro.sweep.dist.worker import work_loop

__all__ = [
    "Channel",
    "Coordinator",
    "Lease",
    "LeaseTable",
    "LocalTransport",
    "MAX_FRAME_BYTES",
    "PipeWorkerChannel",
    "ProtocolError",
    "SocketWorkerChannel",
    "TcpTransport",
    "Transport",
    "WorkerChannel",
    "connect",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
    "work_loop",
]

"""Wire protocol for distributed sweeps: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  The same framing is used
in both directions and by every peer kind, so one decoder serves the
coordinator (asyncio), remote workers (blocking sockets) and tests (raw
socket pairs).

Message vocabulary (``"type"`` field; everything else is payload):

========== =========== =====================================================
type       direction   meaning
========== =========== =====================================================
hello      peer→coord  join as a worker; carries ``worker`` (name) and
                       ``fingerprint`` (:func:`repro.sweep.spec.
                       code_fingerprint` of the worker's tree, or None for
                       trusted local pipe workers)
status     peer→coord  one-shot status query; coordinator replies with a
                       ``status`` frame and closes
watch      peer→coord  subscribe to the live obs event feed; coordinator
                       replies with a ``meta`` frame (schema version) then
                       one frame per event until the sweep ends
welcome    coord→peer  hello accepted; carries ``ttl_s`` (lease TTL the
                       worker must heartbeat within) and ``wait_s``
reject     coord→peer  hello refused (fingerprint mismatch); carries
                       ``reason``
request    worker→coord ask for one cell
lease      coord→worker one granted cell: ``key``, ``case`` (dict form),
                       ``fingerprint``, ``verify``, ``flight``
wait       coord→worker nothing grantable right now (all cells leased or
                       dispatch stopped); retry after ``for_s`` seconds
drain      coord→worker sweep finished — disconnect and exit cleanly
heartbeat  worker→coord renew every lease held by this worker (no reply)
result     worker→coord one computed record: ``key``, ``record``
========== =========== =====================================================

Workers never receive unsolicited frames: ``welcome``/``reject`` answer
``hello``, and ``lease``/``wait``/``drain`` answer ``request`` — so the
worker side stays a simple blocking request/reply loop, with heartbeats
fired one-way from a side thread.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.errors import ReproError

#: Frame length prefix: 4-byte big-endian unsigned.
_LENGTH = struct.Struct(">I")

#: Upper bound on one frame's payload.  Records are small (a case dict,
#: a BenchPoint, at most a bounded flight-recorder tail); anything near
#: this limit is a protocol violation, not a big result.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class ProtocolError(ReproError):
    """A malformed or oversized frame arrived on a sweep connection."""


def encode_frame(message: dict) -> bytes:
    """Serialise one message to its on-wire form (length + JSON)."""
    payload = json.dumps(message, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _LENGTH.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame must be an object with a 'type' field")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (limit "
            f"{MAX_FRAME_BYTES}); closing")


# ---------------------------------------------------------------------------
# blocking sockets (worker side)
# ---------------------------------------------------------------------------

def send_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes, or None on a clean/abrupt EOF."""
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """One decoded frame, or None when the peer is gone."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return _decode_payload(payload)


# ---------------------------------------------------------------------------
# asyncio streams (coordinator side)
# ---------------------------------------------------------------------------

async def read_frame(reader) -> Optional[dict]:
    """One decoded frame from an asyncio StreamReader, None on EOF."""
    import asyncio
    try:
        header = await reader.readexactly(_LENGTH.size)
        (length,) = _LENGTH.unpack(header)
        _check_length(length)
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    return _decode_payload(payload)


def write_frame_nowait(writer, message: dict) -> None:
    """Queue one frame on an asyncio StreamWriter without awaiting.

    Replies and feed events are small; the coordinator never needs
    backpressure, and a fire-and-forget write keeps its message loop
    fully synchronous (one frame interleaving order per connection).
    """
    writer.write(encode_frame(message))

"""Transports: how sweep workers reach the coordinator.

Two sides, two idioms:

* **Coordinator side** (:class:`Transport` / :class:`Channel`) is
  asyncio: a transport produces connected :class:`Channel` objects; the
  coordinator awaits frames with :meth:`Channel.recv` and replies with
  the synchronous, fire-and-forget :meth:`Channel.send` (replies and
  feed events are small, so no backpressure is needed and the
  coordinator's message loop stays single-threaded and deterministic).
* **Worker side** (:class:`WorkerChannel`) is blocking: the worker loop
  is a plain request/reply cycle around a CPU-bound simulation, with
  heartbeats fired from a side thread — so sends are serialised by a
  lock and receives stay on the main thread.

:class:`LocalTransport` spawns ``N`` subprocess workers over duplex
pipes — the ``repro-sweep run --workers N`` pool, now speaking the same
protocol as a remote fleet.  :class:`TcpTransport` accepts length-prefixed
JSON frames on a listening socket (workers, status queries and watch
subscribers all arrive here; the coordinator tells them apart by their
first frame).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional

from repro.errors import ConfigError
from repro.sweep.dist.protocol import (ProtocolError, read_frame,
                                       recv_frame, send_frame,
                                       write_frame_nowait)


def pool_context():
    """fork where the platform has it (cheap), spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


# ---------------------------------------------------------------------------
# coordinator-side channels
# ---------------------------------------------------------------------------

class Channel:
    """One connected peer, as the coordinator sees it."""

    #: Worker name, set by the coordinator after a ``hello`` frame
    #: (None for status/watch clients and unidentified peers).
    worker: Optional[str] = None

    @property
    def peer(self) -> str:
        """Human-readable peer label for logs and journal entries."""
        raise NotImplementedError

    async def recv(self) -> Optional[dict]:
        """Next frame from this peer, or None when it is gone."""
        raise NotImplementedError

    def send(self, message: dict) -> None:
        """Queue one frame to this peer; errors mean the peer is gone
        and are swallowed (the reader will deliver the EOF)."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def kill(self) -> None:
        """Force-disconnect (and, for local workers, terminate)."""
        self.close()

    def death_detail(self) -> str:
        """Why this peer died, as a failure-record reason string."""
        return "worker disconnected"


class TcpChannel(Channel):
    """An accepted asyncio TCP connection."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        peername = writer.get_extra_info("peername")
        self._peer = (f"{peername[0]}:{peername[1]}"
                      if peername else "tcp-peer")

    @property
    def peer(self) -> str:
        return self._peer

    async def recv(self) -> Optional[dict]:
        try:
            return await read_frame(self._reader)
        except ProtocolError:
            self.close()             # malformed peer: treat as gone
            return None

    def send(self, message: dict) -> None:
        try:
            write_frame_nowait(self._writer, message)
        except (ConnectionError, OSError, RuntimeError):
            pass

    def close(self) -> None:
        try:
            self._writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass

    def kill(self) -> None:
        transport = self._writer.transport
        if transport is not None:
            transport.abort()        # RST now, no lingering close
        else:
            self.close()


class PipeChannel(Channel):
    """Parent side of one local worker subprocess's duplex pipe.

    Receives run on a dedicated thread pool (a blocking
    ``Connection.recv`` per channel); sends are direct writes — the
    worker is always parked in ``recv`` when a reply is due, so small
    frames cannot block the coordinator.
    """

    def __init__(self, conn, process, executor: ThreadPoolExecutor,
                 name: str) -> None:
        self._conn = conn
        self.process = process
        self._executor = executor
        self._name = name

    @property
    def peer(self) -> str:
        return self._name

    def _blocking_recv(self) -> Optional[dict]:
        try:
            return self._conn.recv()
        except (EOFError, OSError):
            return None

    async def recv(self) -> Optional[dict]:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self._executor,
                                              self._blocking_recv)
        except RuntimeError:         # executor shut down mid-teardown
            return None

    def send(self, message: dict) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError, ValueError):
            pass

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.close()

    def death_detail(self) -> str:
        self.process.join(timeout=1)
        return f"worker crashed (exit code {self.process.exitcode})"


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------

class Transport:
    """Produces connected channels for the coordinator."""

    #: Short name for logs/journal ("local", "tcp").
    name = "transport"

    async def start(self,
                    on_channel: Callable[[Channel], None]) -> None:
        raise NotImplementedError

    async def stop(self) -> None:
        raise NotImplementedError

    def kick(self, channel: Channel) -> None:
        """Force a peer off (local transports also kill the process)."""
        channel.kill()

    def replenish(self) -> None:
        """A worker died; restore capacity if the transport owns it."""


class TcpTransport(Transport):
    """Listen for remote workers / status clients on ``host:port``.

    ``port=0`` binds an ephemeral port; the bound port is published in
    :attr:`port` and :attr:`bound` is set once the server is listening —
    so tests (and scripts) can start the coordinator on a free port and
    then point workers at it.
    """

    name = "tcp"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 on_bound: Optional[Callable[["TcpTransport"], None]]
                 = None) -> None:
        self.host = host
        self.port = port
        self.bound = threading.Event()
        self._on_bound = on_bound
        self._server: Optional[asyncio.base_events.Server] = None
        self._on_channel: Optional[Callable[[Channel], None]] = None

    async def start(self,
                    on_channel: Callable[[Channel], None]) -> None:
        self._on_channel = on_channel
        self._server = await asyncio.start_server(
            self._accept, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.bound.set()
        if self._on_bound is not None:
            self._on_bound(self)

    def _accept(self, reader: asyncio.StreamReader,
                writer: asyncio.StreamWriter) -> None:
        assert self._on_channel is not None
        self._on_channel(TcpChannel(reader, writer))

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class LocalTransport(Transport):
    """``N`` worker subprocesses over duplex pipes (the local pool)."""

    name = "local"

    def __init__(self, workers: int, context=None,
                 profile_dir: Optional[str] = None) -> None:
        if workers < 1:
            raise ConfigError("local transport needs >= 1 worker")
        self.workers = workers
        self._ctx = context if context is not None else pool_context()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._channels: List[PipeChannel] = []
        self._on_channel: Optional[Callable[[Channel], None]] = None
        self._counter = 0
        self._profile_dir = profile_dir

    async def start(self,
                    on_channel: Callable[[Channel], None]) -> None:
        self._on_channel = on_channel
        # One blocked recv per live channel, with headroom for the
        # respawn overlap after a kick (old thread drains EOF while the
        # replacement already listens).
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers * 2 + 2,
            thread_name_prefix="sweep-pipe")
        for _ in range(self.workers):
            self._spawn()

    def _spawn(self) -> None:
        from repro.sweep.dist.worker import local_worker_main
        assert self._on_channel is not None and self._executor is not None
        name = f"local-{self._counter}"
        self._counter += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=local_worker_main,
            args=(child_conn, name, self._profile_dir), daemon=True)
        process.start()
        child_conn.close()
        channel = PipeChannel(parent_conn, process, self._executor, name)
        self._channels.append(channel)
        self._on_channel(channel)

    def replenish(self) -> None:
        alive = sum(1 for channel in self._channels
                    if channel.process.is_alive())
        if alive < self.workers:
            self._spawn()

    async def stop(self) -> None:
        if self._profile_dir is not None:
            # Recording workers flush their shard recording + streaming
            # profile once their channel drains; close the pipes first
            # (EOF unblocks a worker parked in recv) and give them a
            # grace period before resorting to terminate, so the shard
            # files land complete.
            for channel in self._channels:
                channel.close()
            deadline = time.monotonic() + 5.0
            for channel in self._channels:
                channel.process.join(
                    timeout=max(0.0, deadline - time.monotonic()))
        for channel in self._channels:
            if channel.process.is_alive():
                channel.process.terminate()
            channel.close()
        for channel in self._channels:
            channel.process.join(timeout=2)
            if channel.process.is_alive():
                channel.process.kill()
                channel.process.join()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None


# ---------------------------------------------------------------------------
# worker-side (blocking) channels
# ---------------------------------------------------------------------------

class WorkerChannel:
    """Blocking peer handle used inside worker processes.

    ``send`` is thread-safe (the heartbeat thread shares the channel
    with the main loop); ``recv`` is main-thread only.
    """

    def __init__(self) -> None:
        self._send_lock = threading.Lock()

    def _send_raw(self, message: dict) -> None:
        raise NotImplementedError

    def send(self, message: dict) -> None:
        with self._send_lock:
            self._send_raw(message)

    def recv(self) -> Optional[dict]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PipeWorkerChannel(WorkerChannel):
    """Child side of a local worker's duplex pipe."""

    def __init__(self, conn) -> None:
        super().__init__()
        self._conn = conn

    def _send_raw(self, message: dict) -> None:
        self._conn.send(message)

    def recv(self) -> Optional[dict]:
        try:
            return self._conn.recv()
        except (EOFError, OSError):
            return None

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class SocketWorkerChannel(WorkerChannel):
    """A remote worker's (or status client's) TCP connection."""

    def __init__(self, sock: socket.socket) -> None:
        super().__init__()
        self._sock = sock

    def _send_raw(self, message: dict) -> None:
        send_frame(self._sock, message)

    def recv(self) -> Optional[dict]:
        return recv_frame(self._sock)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def parse_address(address: str):
    """``host:port`` -> (host, port), with a usable error message."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"bad address {address!r}; expected host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(
            f"bad port in address {address!r}") from None
    return host, port


def connect(address: str, timeout_s: float = 10.0) -> SocketWorkerChannel:
    """Open a blocking protocol channel to a coordinator."""
    host, port = parse_address(address)
    try:
        sock = socket.create_connection((host, port), timeout=timeout_s)
    except OSError as exc:
        raise ConfigError(
            f"cannot reach coordinator at {address}: {exc}") from None
    sock.settimeout(None)
    return SocketWorkerChannel(sock)

"""The coordinator's lease table: who is computing which cell.

A lease is the coordinator's only claim about remote progress: worker
``w`` was granted case ``k`` at time ``t`` and has been heard from (via
heartbeat or any other frame) at ``renewed_at``.  The table answers the
three questions the coordinator's periodic tick asks:

* which leases' workers have gone silent past the TTL (:meth:`expired`),
* which leases have outlived a per-case wall-clock budget
  (:meth:`overdue`) — the PR-5 ``--timeout`` policy, distinct from the
  TTL because a *hung simulator* still heartbeats,
* which leases a disconnecting worker held (:meth:`worker_leases`).

Reclaim order is deterministic: every query returns leases in grant
order (``seq``), so a batch of expiries requeues cells in the order they
were dispatched — the property the fake-clock tests pin.  Time comes
from an injectable ``clock`` callable (default ``time.monotonic``) so
expiry logic is testable without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass
class Lease:
    """One granted cell: ``worker`` owes the coordinator ``key``."""

    key: str
    worker: str
    attempt: int
    granted_at: float
    renewed_at: float
    seq: int                     # grant sequence, for deterministic order


class LeaseTable:
    """Leases keyed by case key, with TTL bookkeeping."""

    def __init__(self, ttl_s: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if ttl_s <= 0:
            raise ValueError("lease TTL must be positive")
        self.ttl_s = ttl_s
        self._clock = clock
        self._leases: Dict[str, Lease] = {}
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, key: str) -> bool:
        return key in self._leases

    def get(self, key: str) -> Optional[Lease]:
        return self._leases.get(key)

    def grant(self, key: str, worker: str, attempt: int) -> Lease:
        if key in self._leases:
            raise ValueError(f"case {key} is already leased")
        now = self._clock()
        lease = Lease(key=key, worker=worker, attempt=attempt,
                      granted_at=now, renewed_at=now, seq=self._next_seq)
        self._next_seq += 1
        self._leases[key] = lease
        return lease

    def release(self, key: str) -> Optional[Lease]:
        """Drop and return the lease for ``key`` (None if not leased)."""
        return self._leases.pop(key, None)

    def renew_worker(self, worker: str) -> int:
        """A heartbeat arrived: refresh every lease ``worker`` holds."""
        now = self._clock()
        count = 0
        for lease in self._leases.values():
            if lease.worker == worker:
                lease.renewed_at = now
                count += 1
        return count

    def worker_leases(self, worker: str) -> List[Lease]:
        """``worker``'s leases in grant order (not removed)."""
        return sorted((lease for lease in self._leases.values()
                       if lease.worker == worker),
                      key=lambda lease: lease.seq)

    def expired(self) -> List[Lease]:
        """Remove and return leases not renewed within the TTL.

        Returned in grant order so the caller's requeue is deterministic
        for any one expiry batch.
        """
        now = self._clock()
        dead = sorted((lease for lease in self._leases.values()
                       if now - lease.renewed_at > self.ttl_s),
                      key=lambda lease: lease.seq)
        for lease in dead:
            del self._leases[lease.key]
        return dead

    def overdue(self, budget_s: float) -> List[Lease]:
        """Leases older (since grant) than ``budget_s``, grant order.

        Not removed — the caller decides whether to kick/requeue, and
        does its own :meth:`release`.
        """
        now = self._clock()
        return sorted((lease for lease in self._leases.values()
                       if now - lease.granted_at > budget_s),
                      key=lambda lease: lease.seq)

"""``python -m repro.sweep`` — alias for the ``repro-sweep`` script."""

import sys

from repro.sweep.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Sweep execution: serial and distributed (leased) case runners.

One case is one :func:`repro.bench.harness.run_point` call described by
a :class:`~repro.sweep.spec.SweepCase`.  :func:`execute_case_record`
runs it and always returns a store record — a simulator exception
becomes a ``failed`` record carrying the case's flight-recorder tail,
never an escaped exception — so a bad cell can never take down a sweep.

:func:`run_sweep` drives a whole grid:

* cells whose ``(case key, code fingerprint)`` already sit in the store
  are skipped (that is what makes ``repro-sweep resume`` free);
* ``workers=0`` runs in-process, in deterministic grid order;
* ``workers=N`` leases cases to ``N`` persistent worker subprocesses
  through the :mod:`repro.sweep.dist` coordinator over its local pipe
  transport — the same coordinator, lease table and worker loop that
  ``repro-sweep serve`` uses over TCP, so the single-machine pool and a
  remote fleet are literally one code path.  A worker that crashes or
  goes silent loses its leases; each reclaimed cell is retried under
  the bounded-retry policy and, past the budget, recorded as failed
  while the sweep moves on.  Pass ``transport=`` to run the same grid
  over any other :class:`~repro.sweep.dist.transport.Transport`.

Results are byte-identical between the serial, local-pool and TCP
paths: a case is executed by the same function either way, records
carry only deterministic fields, and wall-clock data goes to the
journal instead.  Progress is observable live through
``SweepCaseStarted`` / ``SweepCaseFinished`` / ``SweepCaseFailed`` (and
in distributed runs ``WorkerJoined`` / ``WorkerLost`` /
``LeaseExpired``) events on an attached
:class:`~repro.obs.Observability` bus (``ts`` is the dispatch sequence
number — sweeps span many simulators with unrelated clocks).

On KeyboardInterrupt the partial results are attached to the exception
as ``interrupt.partial_records`` (case key -> record or None) before it
propagates, so callers like ``repro-bench`` can plot what finished.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.obs import (Observability, SweepCaseFailed, SweepCaseFinished,
                       SweepCaseStarted)
from repro.sweep.spec import SweepCase, SweepSpec, code_fingerprint
from repro.sweep.store import ResultStore, make_record

#: Events kept from a failing case's flight recorder.
FLIGHT_TAIL = 64


@dataclass
class RunnerOptions:
    """Execution policy for one sweep run."""

    workers: int = 0
    #: Per-case wall-clock budget in seconds (None = unlimited).
    timeout_s: Optional[float] = None
    #: Extra attempts after a crash or timeout (deterministic simulator
    #: failures are not retried — they would fail identically).
    retries: int = 1
    #: Attach the repro.verify invariant checker inside each worker.
    verify: bool = False
    #: Flight-recorder ring size for failure evidence (0 disables).
    flight: int = 256
    #: Stop dispatching after this many newly-computed cases (used by the
    #: CI smoke job and tests to simulate a killed run deterministically).
    stop_after: Optional[int] = None
    #: Lease TTL for distributed execution: a worker that goes this long
    #: without a heartbeat forfeits its cells.
    lease_ttl_s: float = 15.0
    #: Directory for per-shard event recordings + streaming profiles
    #: (``repro.obs.stream.ShardRecorder``); None disables recording.
    profile_dir: Optional[str] = None

    def validate(self) -> None:
        if self.workers < 0:
            raise ConfigError("workers must be >= 0")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout must be positive")
        if self.lease_ttl_s <= 0:
            raise ConfigError("lease TTL must be positive")


@dataclass
class SweepOutcome:
    """What one :func:`run_sweep` call did."""

    records: Dict[str, dict]             # case key -> record
    computed: int = 0
    cached: int = 0
    failed: int = 0
    stopped: bool = False                # stop_after hit before the end
    elapsed_s: float = 0.0

    @property
    def remaining(self) -> int:
        return sum(1 for r in self.records.values() if r is None)


def _scheduler_factory(name: str):
    # The registry is the single source of truth (the bench harness's
    # SCHEDULERS is a view of it); resolve raises ConfigError listing
    # every registered name.
    from repro.sched import registry
    return registry.resolve(name)


def _workload_factory(kind: str):
    """``run_point``-compatible factory for a workload kind (None means
    run_point's default, the directory-lookup workload)."""
    if kind == "dirlookup":
        return None
    if kind == "synthetic":
        from repro.workloads.synthetic import ObjectOpsWorkload
        return lambda machine, spec: ObjectOpsWorkload(machine, spec)
    if kind == "webserver":
        from repro.workloads.webserver import WebServerWorkload
        return lambda machine, spec: WebServerWorkload(machine, spec)
    if kind == "scenario":
        from repro.workloads import scenarios
        return scenarios.build
    raise ConfigError(f"unknown workload kind {kind!r}")


def execute_case(case: SweepCase, obs=None):
    """Run one case and return its :class:`BenchPoint` (raises on error).

    The case's engine kernel is installed as the construction-time
    default for the duration of the run — ``run_point`` builds its own
    simulators, so the default is the only seam that reaches them (the
    same pattern ``--verify`` uses for the invariant checker).
    """
    from repro.bench.harness import run_point
    from repro.sim import engine
    previous_kernel = engine._default_kernel
    engine.set_default_kernel(case.kernel)
    try:
        return run_point(
            case.machine, _scheduler_factory(case.scheduler),
            case.workload,
            warmup_cycles=case.warmup_cycles,
            measure_cycles=case.measure_cycles,
            x=case.x,
            workload_factory=_workload_factory(case.workload_kind),
            seed=case.seed, obs=obs)
    finally:
        engine.set_default_kernel(previous_kernel)


def execute_case_record(case: SweepCase, fingerprint: str,
                        verify: bool = False, flight: int = FLIGHT_TAIL,
                        case_key: Optional[str] = None,
                        event_sink: Optional[Callable] = None) -> dict:
    """Run one case to a store record, absorbing simulator failures.

    The record is deterministic: same case + same code -> same bytes,
    whether computed serially, by a pool worker, by a TCP worker on
    another machine, or in a resumed run.

    ``event_sink(case, key, events)`` receives the case's full event
    recording (a shard recorder appends it and feeds its streaming
    profile); the sink sees the events of failed cases too — failure
    evidence is the point of recording.
    """
    import dataclasses as _dc
    key = case_key if case_key is not None else case.key()
    previous_checker = None
    if verify:
        from repro.sim import engine
        from repro.verify import InvariantChecker
        previous_checker = engine._default_checker_factory
        engine.set_default_checker(lambda: InvariantChecker(interval=2048))
    want_events = event_sink is not None
    obs = (Observability(events=want_events, metrics=False, flight=flight)
           if flight > 0 or want_events else None)
    try:
        try:
            point = execute_case(case, obs=obs)
            record = make_record(key, case.as_dict(), fingerprint, "ok",
                                 point=_dc.asdict(point))
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            tail = (obs.flight.tail(FLIGHT_TAIL)
                    if obs is not None and obs.flight is not None else None)
            error = f"{type(exc).__name__}: {exc}"
            record = make_record(key, case.as_dict(), fingerprint,
                                 "failed", error=error, flight=tail)
        if want_events and obs is not None:
            event_sink(case, key, obs.events())
        return record
    finally:
        if verify:
            from repro.sim import engine
            engine.set_default_checker(previous_checker)


# ---------------------------------------------------------------------------
# the sweep driver
# ---------------------------------------------------------------------------

def run_sweep(spec: SweepSpec, store: Optional[ResultStore] = None,
              options: Optional[RunnerOptions] = None,
              obs: Optional[Observability] = None,
              progress: Optional[Callable[[str], None]] = None,
              fingerprint: Optional[str] = None,
              transport=None) -> SweepOutcome:
    """Run (or resume) every case of ``spec``, returning all records.

    With a ``store``, finished cells are read from / written to disk and
    every transition is journalled; without one, results stay in memory.
    ``transport`` overrides how cases are executed (e.g. a
    :class:`~repro.sweep.dist.transport.TcpTransport` for ``repro-sweep
    serve``); by default ``options.workers`` picks serial or local-pool.
    """
    return run_cases(spec.expand(), store=store, options=options,
                     obs=obs, progress=progress, fingerprint=fingerprint,
                     transport=transport)


def run_cases(cases: List[SweepCase],
              store: Optional[ResultStore] = None,
              options: Optional[RunnerOptions] = None,
              obs: Optional[Observability] = None,
              progress: Optional[Callable[[str], None]] = None,
              fingerprint: Optional[str] = None,
              transport=None) -> SweepOutcome:
    """Run an explicit case list (what ``bench.harness.sweep`` feeds in
    when it shards a figure's grid over workers)."""
    from repro.sweep.dist.coordinator import Seq

    options = options or RunnerOptions()
    options.validate()
    keys = [case.key() for case in cases]
    if fingerprint is None:
        fingerprint = code_fingerprint()
    say = progress if progress is not None else (lambda message: None)

    outcome = SweepOutcome(records={key: None for key in keys})
    seq = Seq()                  # dispatch sequence, the obs timestamp
    bus = obs.bus if obs is not None else None

    todo: List[tuple] = []
    for case, key in zip(cases, keys):
        record = store.get(key, fingerprint) if store is not None else None
        if record is not None:
            outcome.records[key] = record
            outcome.cached += 1
            if store is not None:
                store.journal("cached", case=key,
                              label=case.describe())
            ts = seq.next()
            if bus is not None and bus.wants(SweepCaseFinished):
                kops = (record["point"]["kops_per_sec"]
                        if record["status"] == "ok" else 0.0)
                bus.publish(SweepCaseFinished(
                    ts, key, case.scheduler, case.workload_label,
                    kops, cached=True))
        else:
            todo.append((case, key))
    if outcome.cached:
        say(f"{outcome.cached} cached cell(s) skipped")

    started = time.monotonic()

    def finalize(case: SweepCase, key: str, record: dict,
                 elapsed: float, attempt: int) -> None:
        ts = seq.next()
        outcome.records[key] = record
        outcome.computed += 1
        if record["status"] == "ok":
            kops = record["point"]["kops_per_sec"]
            say(f"done {case.describe()}  {kops:,.0f} kops/s")
        else:
            outcome.failed += 1
            say(f"FAILED {case.describe()}: {record['error']}")
        if store is not None:
            store.put(record)
            store.journal("finished" if record["status"] == "ok"
                          else "failed",
                          case=key, label=case.describe(),
                          elapsed_s=round(elapsed, 3), attempt=attempt)
        if bus is not None:
            if record["status"] == "ok" \
                    and bus.wants(SweepCaseFinished):
                bus.publish(SweepCaseFinished(
                    ts, key, case.scheduler, case.workload_label,
                    record["point"]["kops_per_sec"]))
            elif record["status"] == "failed" \
                    and bus.wants(SweepCaseFailed):
                bus.publish(SweepCaseFailed(
                    ts, key, case.scheduler, case.workload_label,
                    record["error"] or "unknown"))

    def announce(case: SweepCase, key: str) -> None:
        ts = seq.next()
        if store is not None:
            store.journal("started", case=key, label=case.describe())
        if bus is not None and bus.wants(SweepCaseStarted):
            bus.publish(SweepCaseStarted(ts, key, case.scheduler,
                                         case.workload_label, case.seed))

    try:
        if transport is None and options.workers > 0:
            from repro.sweep.dist.transport import LocalTransport
            transport = LocalTransport(options.workers,
                                       profile_dir=options.profile_dir)
        if not todo:
            pass                     # everything was cached
        elif transport is None:
            _run_serial(todo, options, fingerprint, announce, finalize,
                        outcome)
        else:
            from repro.sweep.dist.coordinator import Coordinator
            Coordinator(todo, transport, options, fingerprint,
                        announce=announce, finalize=finalize,
                        outcome=outcome, say=say, obs=obs, store=store,
                        seq=seq).run()
    except KeyboardInterrupt as interrupt:
        # Callers (repro-bench, the CLI) can salvage what finished.
        interrupt.partial_records = dict(outcome.records)
        if store is not None:
            store.journal("interrupted",
                          computed=outcome.computed,
                          remaining=outcome.remaining)
        raise
    finally:
        outcome.elapsed_s = time.monotonic() - started
    if outcome.stopped and store is not None:
        store.journal("interrupted", computed=outcome.computed,
                      remaining=outcome.remaining)
    return outcome


def _run_serial(todo, options: RunnerOptions, fingerprint: str,
                announce, finalize, outcome: SweepOutcome) -> None:
    recorder = None
    if options.profile_dir is not None:
        from repro.obs.stream import ShardRecorder
        recorder = ShardRecorder(options.profile_dir, "serial")
    try:
        for case, key in todo:
            if options.stop_after is not None \
                    and outcome.computed >= options.stop_after:
                outcome.stopped = True
                return
            announce(case, key)
            case_started = time.monotonic()
            record = execute_case_record(
                case, fingerprint, verify=options.verify,
                flight=options.flight, case_key=key,
                event_sink=recorder.record if recorder is not None
                else None)
            finalize(case, key, record,
                     time.monotonic() - case_started, attempt=1)
    finally:
        if recorder is not None:
            recorder.close()

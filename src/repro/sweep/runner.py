"""Sweep execution: serial and multiprocessing case runners.

One case is one :func:`repro.bench.harness.run_point` call described by
a :class:`~repro.sweep.spec.SweepCase`.  :func:`execute_case_record`
runs it and always returns a store record — a simulator exception
becomes a ``failed`` record carrying the case's flight-recorder tail,
never an escaped exception — so a bad cell can never take down a sweep.

:func:`run_sweep` drives a whole grid:

* cells whose ``(case key, code fingerprint)`` already sit in the store
  are skipped (that is what makes ``repro-sweep resume`` free);
* ``workers=0`` runs in-process, in deterministic grid order;
* ``workers=N`` shards cases over ``N`` single-case worker processes
  with a per-case timeout and bounded retry.  A worker that crashes or
  hangs is terminated and its case retried; after ``retries`` extra
  attempts the case is recorded as failed and the sweep moves on.

Results are byte-identical between the serial and parallel paths: a
case is executed by the same function either way, records carry only
deterministic fields, and wall-clock data goes to the journal instead.
Progress is observable live through ``SweepCaseStarted`` /
``SweepCaseFinished`` / ``SweepCaseFailed`` events on an attached
:class:`~repro.obs.Observability` bus (``ts`` is the dispatch sequence
number — sweeps span many simulators with unrelated clocks).
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.obs import (Observability, SweepCaseFailed, SweepCaseFinished,
                       SweepCaseStarted)
from repro.sweep.spec import SweepCase, SweepSpec, code_fingerprint
from repro.sweep.store import ResultStore, make_record

#: Events kept from a failing case's flight recorder.
FLIGHT_TAIL = 64


@dataclass
class RunnerOptions:
    """Execution policy for one sweep run."""

    workers: int = 0
    #: Per-case wall-clock budget in seconds (None = unlimited).
    timeout_s: Optional[float] = None
    #: Extra attempts after a crash or timeout (deterministic simulator
    #: failures are not retried — they would fail identically).
    retries: int = 1
    #: Attach the repro.verify invariant checker inside each worker.
    verify: bool = False
    #: Flight-recorder ring size for failure evidence (0 disables).
    flight: int = 256
    #: Stop dispatching after this many newly-computed cases (used by the
    #: CI smoke job and tests to simulate a killed run deterministically).
    stop_after: Optional[int] = None

    def validate(self) -> None:
        if self.workers < 0:
            raise ConfigError("workers must be >= 0")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout must be positive")


@dataclass
class SweepOutcome:
    """What one :func:`run_sweep` call did."""

    records: Dict[str, dict]             # case key -> record
    computed: int = 0
    cached: int = 0
    failed: int = 0
    stopped: bool = False                # stop_after hit before the end
    elapsed_s: float = 0.0

    @property
    def remaining(self) -> int:
        return sum(1 for r in self.records.values() if r is None)


def _scheduler_factory(name: str):
    from repro.bench.harness import SCHEDULERS
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; "
            f"choose from {sorted(SCHEDULERS)}") from None


def _workload_factory(kind: str):
    """``run_point``-compatible factory for a workload kind (None means
    run_point's default, the directory-lookup workload)."""
    if kind == "dirlookup":
        return None
    if kind == "synthetic":
        from repro.workloads.synthetic import ObjectOpsWorkload
        return lambda machine, spec: ObjectOpsWorkload(machine, spec)
    if kind == "webserver":
        from repro.workloads.webserver import WebServerWorkload
        return lambda machine, spec: WebServerWorkload(machine, spec)
    raise ConfigError(f"unknown workload kind {kind!r}")


def execute_case(case: SweepCase, obs=None):
    """Run one case and return its :class:`BenchPoint` (raises on error)."""
    from repro.bench.harness import run_point
    return run_point(
        case.machine, _scheduler_factory(case.scheduler), case.workload,
        warmup_cycles=case.warmup_cycles,
        measure_cycles=case.measure_cycles,
        x=case.x, workload_factory=_workload_factory(case.workload_kind),
        seed=case.seed, obs=obs)


def execute_case_record(case: SweepCase, fingerprint: str,
                        verify: bool = False, flight: int = FLIGHT_TAIL,
                        case_key: Optional[str] = None) -> dict:
    """Run one case to a store record, absorbing simulator failures.

    The record is deterministic: same case + same code -> same bytes,
    whether computed serially, by a pool worker, or in a resumed run.
    """
    import dataclasses as _dc
    key = case_key if case_key is not None else case.key()
    previous_checker = None
    if verify:
        from repro.sim import engine
        from repro.verify import InvariantChecker
        previous_checker = engine._default_checker_factory
        engine.set_default_checker(lambda: InvariantChecker(interval=2048))
    obs = (Observability(events=False, metrics=False, flight=flight)
           if flight > 0 else None)
    try:
        point = execute_case(case, obs=obs)
        return make_record(key, case.as_dict(), fingerprint, "ok",
                           point=_dc.asdict(point))
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        tail = (obs.flight.tail(FLIGHT_TAIL)
                if obs is not None and obs.flight is not None else None)
        error = f"{type(exc).__name__}: {exc}"
        return make_record(key, case.as_dict(), fingerprint, "failed",
                           error=error, flight=tail)
    finally:
        if verify:
            from repro.sim import engine
            engine.set_default_checker(previous_checker)


# ---------------------------------------------------------------------------
# worker process entry point
# ---------------------------------------------------------------------------

def _worker_main(case_dict: dict, case_key: str, fingerprint: str,
                 verify: bool, flight: int, conn) -> None:
    """Child-process body: compute one case, send the record, exit."""
    try:
        case = SweepCase.from_dict(case_dict)
        record = execute_case_record(case, fingerprint, verify=verify,
                                     flight=flight, case_key=case_key)
    except BaseException as exc:   # truly unexpected: report, don't hang
        record = make_record(case_key, case_dict, fingerprint, "failed",
                             error=f"worker error: "
                                   f"{type(exc).__name__}: {exc}")
    try:
        conn.send(record)
    finally:
        conn.close()


@dataclass
class _InFlight:
    process: multiprocessing.process.BaseProcess
    conn: object
    case: SweepCase
    case_key: str
    attempt: int
    started_at: float = field(default_factory=time.monotonic)


# ---------------------------------------------------------------------------
# the sweep driver
# ---------------------------------------------------------------------------

def run_sweep(spec: SweepSpec, store: Optional[ResultStore] = None,
              options: Optional[RunnerOptions] = None,
              obs: Optional[Observability] = None,
              progress: Optional[Callable[[str], None]] = None,
              fingerprint: Optional[str] = None) -> SweepOutcome:
    """Run (or resume) every case of ``spec``, returning all records.

    With a ``store``, finished cells are read from / written to disk and
    every transition is journalled; without one, results stay in memory.
    """
    return run_cases(spec.expand(), store=store, options=options,
                     obs=obs, progress=progress, fingerprint=fingerprint)


def run_cases(cases: List[SweepCase],
              store: Optional[ResultStore] = None,
              options: Optional[RunnerOptions] = None,
              obs: Optional[Observability] = None,
              progress: Optional[Callable[[str], None]] = None,
              fingerprint: Optional[str] = None) -> SweepOutcome:
    """Run an explicit case list (what ``bench.harness.sweep`` feeds in
    when it shards a figure's grid over workers)."""
    options = options or RunnerOptions()
    options.validate()
    keys = [case.key() for case in cases]
    if fingerprint is None:
        fingerprint = code_fingerprint()
    say = progress if progress is not None else (lambda message: None)

    outcome = SweepOutcome(records={key: None for key in keys})
    seq = 0                      # dispatch sequence, the obs timestamp
    bus = obs.bus if obs is not None else None

    todo: List[tuple] = []
    for case, key in zip(cases, keys):
        record = store.get(key, fingerprint) if store is not None else None
        if record is not None:
            outcome.records[key] = record
            outcome.cached += 1
            if store is not None:
                store.journal("cached", case=key,
                              label=case.describe())
            if bus is not None and bus.wants(SweepCaseFinished):
                kops = (record["point"]["kops_per_sec"]
                        if record["status"] == "ok" else 0.0)
                bus.publish(SweepCaseFinished(
                    seq, key, case.scheduler, case.workload_label,
                    kops, cached=True))
            seq += 1
        else:
            todo.append((case, key))
    if outcome.cached:
        say(f"{outcome.cached} cached cell(s) skipped")

    started = time.monotonic()

    def finalize(case: SweepCase, key: str, record: dict,
                 elapsed: float, attempt: int) -> None:
        nonlocal seq
        outcome.records[key] = record
        outcome.computed += 1
        if record["status"] == "ok":
            kops = record["point"]["kops_per_sec"]
            say(f"done {case.describe()}  {kops:,.0f} kops/s")
        else:
            outcome.failed += 1
            say(f"FAILED {case.describe()}: {record['error']}")
        if store is not None:
            store.put(record)
            store.journal("finished" if record["status"] == "ok"
                          else "failed",
                          case=key, label=case.describe(),
                          elapsed_s=round(elapsed, 3), attempt=attempt)
        if bus is not None:
            if record["status"] == "ok" \
                    and bus.wants(SweepCaseFinished):
                bus.publish(SweepCaseFinished(
                    seq, key, case.scheduler, case.workload_label,
                    record["point"]["kops_per_sec"]))
            elif record["status"] == "failed" \
                    and bus.wants(SweepCaseFailed):
                bus.publish(SweepCaseFailed(
                    seq, key, case.scheduler, case.workload_label,
                    record["error"] or "unknown"))
        seq += 1

    def announce(case: SweepCase, key: str) -> None:
        nonlocal seq
        if store is not None:
            store.journal("started", case=key, label=case.describe())
        if bus is not None and bus.wants(SweepCaseStarted):
            bus.publish(SweepCaseStarted(seq, key, case.scheduler,
                                         case.workload_label, case.seed))
        seq += 1

    try:
        if options.workers == 0:
            _run_serial(todo, options, fingerprint, announce, finalize,
                        outcome)
        else:
            _run_pool(todo, options, fingerprint, announce, finalize,
                      outcome, say)
    except KeyboardInterrupt:
        if store is not None:
            store.journal("interrupted",
                          computed=outcome.computed,
                          remaining=outcome.remaining)
        raise
    finally:
        outcome.elapsed_s = time.monotonic() - started
    if outcome.stopped and store is not None:
        store.journal("interrupted", computed=outcome.computed,
                      remaining=outcome.remaining)
    return outcome


def _run_serial(todo, options: RunnerOptions, fingerprint: str,
                announce, finalize, outcome: SweepOutcome) -> None:
    for case, key in todo:
        if options.stop_after is not None \
                and outcome.computed >= options.stop_after:
            outcome.stopped = True
            return
        announce(case, key)
        case_started = time.monotonic()
        record = execute_case_record(case, fingerprint,
                                     verify=options.verify,
                                     flight=options.flight, case_key=key)
        finalize(case, key, record,
                 time.monotonic() - case_started, attempt=1)


def _pool_context():
    """fork where the platform has it (cheap), spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


def _run_pool(todo, options: RunnerOptions, fingerprint: str,
              announce, finalize, outcome: SweepOutcome, say) -> None:
    ctx = _pool_context()
    pending = deque(todo)                # (case, key) tuples
    attempts: Dict[str, int] = {}
    inflight: Dict[int, _InFlight] = {}  # keyed by connection fd

    def dispatch(case: SweepCase, key: str) -> None:
        attempt = attempts.get(key, 0) + 1
        attempts[key] = attempt
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(case.as_dict(), key, fingerprint, options.verify,
                  options.flight, child_conn),
            daemon=True)
        process.start()
        child_conn.close()
        if attempt == 1:
            announce(case, key)
        inflight[parent_conn.fileno()] = _InFlight(
            process, parent_conn, case, key, attempt)

    def give_up(flight: _InFlight, reason: str) -> None:
        """Retry a crashed/hung case, or record it as failed."""
        if flight.attempt <= options.retries:
            say(f"retrying {flight.case.describe()} ({reason})")
            pending.appendleft((flight.case, flight.case_key))
            return
        record = make_record(flight.case_key, flight.case.as_dict(),
                             fingerprint, "failed", error=reason)
        finalize(flight.case, flight.case_key, record,
                 time.monotonic() - flight.started_at, flight.attempt)

    def reap(flight: _InFlight, record: Optional[dict]) -> None:
        del inflight[flight.conn.fileno()]
        flight.conn.close()
        flight.process.join()
        if record is not None:
            finalize(flight.case, flight.case_key, record,
                     time.monotonic() - flight.started_at, flight.attempt)
        else:
            code = flight.process.exitcode
            give_up(flight, f"worker crashed (exit code {code})")

    try:
        while pending or inflight:
            stop = (options.stop_after is not None
                    and outcome.computed
                    + len(inflight) >= options.stop_after)
            while pending and len(inflight) < options.workers and not stop:
                case, key = pending.popleft()
                dispatch(case, key)
                stop = (options.stop_after is not None
                        and outcome.computed
                        + len(inflight) >= options.stop_after)
            if not inflight:
                if stop and pending:
                    outcome.stopped = True
                    return
                continue
            ready = connection_wait(
                [flight.conn for flight in inflight.values()],
                timeout=0.05)
            for conn in ready:
                flight = inflight[conn.fileno()]
                try:
                    record = conn.recv()
                except (EOFError, OSError):
                    record = None        # worker died mid-send
                reap(flight, record)
            now = time.monotonic()
            if options.timeout_s is not None:
                for flight in list(inflight.values()):
                    if now - flight.started_at > options.timeout_s:
                        flight.process.terminate()
                        flight.process.join()
                        del inflight[flight.conn.fileno()]
                        flight.conn.close()
                        give_up(flight,
                                f"timeout after {options.timeout_s:g}s")
    finally:
        for flight in inflight.values():
            flight.process.terminate()
            flight.conn.close()
        for flight in inflight.values():
            flight.process.join()

"""Declarative sweep specifications and their expansion into cases.

A :class:`SweepSpec` names the grid an experiment covers — machine
topologies x scheduler configurations x workload specs x seeds — and
expands it into a deterministic list of :class:`SweepCase` cells.  Each
case is a self-contained, picklable, JSON-round-trippable description of
one ``repro.bench.harness.run_point`` call, hashable to a stable content
key so the result store (:mod:`repro.sweep.store`) can skip cells that
were already computed by an earlier (possibly killed) run.

Two identities matter here:

* ``SweepCase.key()`` — SHA-256 over the case's canonical JSON form.
  Two cases with the same key measure the same experiment, whatever
  process, host or session expands them.
* :func:`code_fingerprint` — SHA-256 over the ``repro`` package sources
  (excluding ``repro/sweep``, which orchestrates but never touches a
  simulated cycle).  A cached result is only reused when both match, so
  editing the simulator invalidates every cell while editing the sweep
  machinery invalidates none.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.cpu.topology import LatencySpec, MachineSpec
from repro.errors import ConfigError
from repro.sim.rng import derive_seed
from repro.workloads.dirlookup import DirWorkloadSpec
from repro.workloads.scenarios import ScenarioSpec
from repro.workloads.synthetic import ObjectOpsSpec
from repro.workloads.webserver import WebServerSpec

#: Workload kinds a case may name; each maps to its spec dataclass.  The
#: runner resolves the matching workload *class* lazily (they pull in the
#: fs/machine layers, which workers import on first use).
WORKLOAD_SPECS: Dict[str, type] = {
    "dirlookup": DirWorkloadSpec,
    "scenario": ScenarioSpec,
    "synthetic": ObjectOpsSpec,
    "webserver": WebServerSpec,
}


def _to_jsonable(value):
    """Canonical JSON-safe form of a spec field value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _to_jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, (tuple, list)):
        return [_to_jsonable(item) for item in value]
    return value


def machine_to_dict(spec: MachineSpec) -> dict:
    return _to_jsonable(spec)


def machine_from_dict(data: dict) -> MachineSpec:
    fields = dict(data)
    if fields.get("latency") is not None:
        fields["latency"] = LatencySpec(**fields["latency"])
    if fields.get("core_speeds") is not None:
        fields["core_speeds"] = tuple(fields["core_speeds"])
    spec = MachineSpec(**fields)
    spec.validate()
    return spec


def workload_to_dict(kind: str, spec) -> dict:
    if kind not in WORKLOAD_SPECS:
        raise ConfigError(f"unknown workload kind {kind!r}; "
                          f"choose from {sorted(WORKLOAD_SPECS)}")
    if type(spec) is not WORKLOAD_SPECS[kind]:
        raise ConfigError(
            f"workload kind {kind!r} expects "
            f"{WORKLOAD_SPECS[kind].__name__}, got {type(spec).__name__}")
    return _to_jsonable(spec)


def workload_from_dict(kind: str, data: dict):
    try:
        cls = WORKLOAD_SPECS[kind]
    except KeyError:
        raise ConfigError(f"unknown workload kind {kind!r}; "
                          f"choose from {sorted(WORKLOAD_SPECS)}") from None
    spec = cls(**data)
    spec.validate()
    return spec


# ---------------------------------------------------------------------------
# one grid cell
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepCase:
    """One fully-specified measurement: a single cell of the grid."""

    machine_label: str
    machine: MachineSpec
    scheduler: str                       # name in the scheduler registry
    workload_kind: str                   # key of WORKLOAD_SPECS
    workload_label: str
    workload: object                     # the matching spec dataclass
    seed_index: int = 0
    #: Workload RNG seed; None keeps the workload spec's own seed.
    seed: Optional[int] = None
    warmup_cycles: int = 1_500_000
    measure_cycles: int = 1_500_000
    #: Sweep coordinate for reports (defaults to the workload's data KB).
    x: Optional[float] = None
    #: Engine run loop (:data:`repro.sim.engine.KERNELS`).  Both kernels
    #: publish identical event streams, so this axis never changes what a
    #: cell measures — only how fast the simulator computes it.
    kernel: str = "generic"

    def as_dict(self) -> dict:
        data = {
            "machine_label": self.machine_label,
            "machine": machine_to_dict(self.machine),
            "scheduler": self.scheduler,
            "workload_kind": self.workload_kind,
            "workload_label": self.workload_label,
            "workload": workload_to_dict(self.workload_kind,
                                         self.workload),
            "seed_index": self.seed_index,
            "seed": self.seed,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "x": self.x,
        }
        # Omitted when generic so every pre-existing cache key (and any
        # store written before the kernel axis existed) stays valid.
        if self.kernel != "generic":
            data["kernel"] = self.kernel
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepCase":
        fields = dict(data)
        fields["machine"] = machine_from_dict(fields["machine"])
        fields["workload"] = workload_from_dict(fields["workload_kind"],
                                                fields["workload"])
        return cls(**fields)

    def key(self) -> str:
        """Stable content hash identifying this case (40 hex chars)."""
        canonical = json.dumps(self.as_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:40]

    def describe(self) -> str:
        return (f"{self.machine_label}/{self.scheduler}/"
                f"{self.workload_label}/s{self.seed_index}")


# ---------------------------------------------------------------------------
# the grid
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MachineAxis:
    label: str
    spec: MachineSpec


@dataclass(frozen=True)
class WorkloadAxis:
    label: str
    kind: str
    spec: object
    x: Optional[float] = None


@dataclass
class SweepSpec:
    """Declarative experiment grid with named axes and exclusion filters.

    ``filters`` is a tuple of dicts; a case whose axis labels match every
    key of any filter is excluded.  Keys: ``machine``, ``scheduler``,
    ``workload`` (axis labels / registry names).  Filters are plain data
    so specs survive the JSON round trip through ``spec.json``.
    """

    name: str
    machines: Tuple[MachineAxis, ...]
    schedulers: Tuple[str, ...]
    workloads: Tuple[WorkloadAxis, ...]
    n_seeds: int = 1
    root_seed: Optional[int] = None
    warmup_cycles: int = 1_500_000
    measure_cycles: int = 1_500_000
    filters: Tuple[Dict[str, str], ...] = ()
    #: Engine run loop for every cell ("generic" or "batched").
    kernel: str = "generic"

    def validate(self) -> None:
        if not self.machines or not self.schedulers or not self.workloads:
            raise ConfigError("sweep needs at least one machine, "
                              "scheduler and workload")
        from repro.sim.engine import KERNELS as ENGINE_KERNELS
        if self.kernel not in ENGINE_KERNELS:
            raise ConfigError(
                f"unknown engine kernel {self.kernel!r}; "
                f"choose from {', '.join(ENGINE_KERNELS)}")
        if self.n_seeds < 1:
            raise ConfigError("n_seeds must be >= 1")
        if self.warmup_cycles < 0 or self.measure_cycles <= 0:
            raise ConfigError("warmup must be >= 0 and measure window > 0")
        labels = [m.label for m in self.machines]
        if len(set(labels)) != len(labels):
            raise ConfigError("machine axis labels must be unique")
        labels = [w.label for w in self.workloads]
        if len(set(labels)) != len(labels):
            raise ConfigError("workload axis labels must be unique")
        for axis in self.workloads:
            workload_to_dict(axis.kind, axis.spec)   # validates pairing
        for rule in self.filters:
            unknown = set(rule) - {"machine", "scheduler", "workload"}
            if unknown:
                raise ConfigError(
                    f"filter keys must name axes, got {sorted(unknown)}")

    def _excluded(self, machine: str, scheduler: str,
                  workload: str) -> bool:
        labels = {"machine": machine, "scheduler": scheduler,
                  "workload": workload}
        return any(all(labels.get(axis) == value
                       for axis, value in rule.items())
                   for rule in self.filters)

    def expand(self) -> List[SweepCase]:
        """All cases, in deterministic (machine, workload, scheduler,
        seed) order.

        Per-case seeds come from
        :func:`repro.sim.rng.derive_seed(root_seed, machine, scheduler,
        workload, seed_index)`, so a cell's seed is a pure function of
        its coordinates — reordering or filtering the grid never changes
        any other cell's result.  With ``root_seed=None`` and one seed,
        workload specs keep their own baked-in seeds.
        """
        self.validate()
        cases: List[SweepCase] = []
        for machine in self.machines:
            for workload in self.workloads:
                for scheduler in self.schedulers:
                    if self._excluded(machine.label, scheduler,
                                      workload.label):
                        continue
                    for seed_index in range(self.n_seeds):
                        if self.root_seed is None and self.n_seeds == 1:
                            seed = None
                        else:
                            root = (self.root_seed
                                    if self.root_seed is not None else 0)
                            seed = derive_seed(
                                root, machine.label, scheduler,
                                workload.label, seed_index)
                        cases.append(SweepCase(
                            machine_label=machine.label,
                            machine=machine.spec,
                            scheduler=scheduler,
                            workload_kind=workload.kind,
                            workload_label=workload.label,
                            workload=workload.spec,
                            seed_index=seed_index,
                            seed=seed,
                            warmup_cycles=self.warmup_cycles,
                            measure_cycles=self.measure_cycles,
                            x=workload.x,
                            kernel=self.kernel))
        return cases

    # ------------------------------------------------------------------
    # persistence (spec.json inside a sweep store)
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        data = {
            "name": self.name,
            "machines": [{"label": m.label,
                          "spec": machine_to_dict(m.spec)}
                         for m in self.machines],
            "schedulers": list(self.schedulers),
            "workloads": [{"label": w.label, "kind": w.kind,
                           "spec": workload_to_dict(w.kind, w.spec),
                           "x": w.x}
                          for w in self.workloads],
            "n_seeds": self.n_seeds,
            "root_seed": self.root_seed,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "filters": [dict(rule) for rule in self.filters],
        }
        if self.kernel != "generic":
            data["kernel"] = self.kernel
        return data

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        spec = cls(
            name=data["name"],
            machines=tuple(
                MachineAxis(m["label"], machine_from_dict(m["spec"]))
                for m in data["machines"]),
            schedulers=tuple(data["schedulers"]),
            workloads=tuple(
                WorkloadAxis(w["label"], w["kind"],
                             workload_from_dict(w["kind"], w["spec"]),
                             w.get("x"))
                for w in data["workloads"]),
            n_seeds=data.get("n_seeds", 1),
            root_seed=data.get("root_seed"),
            warmup_cycles=data.get("warmup_cycles", 1_500_000),
            measure_cycles=data.get("measure_cycles", 1_500_000),
            filters=tuple(data.get("filters", ())),
            kernel=data.get("kernel", "generic"),
        )
        spec.validate()
        return spec

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# code fingerprint
# ---------------------------------------------------------------------------

def code_fingerprint() -> str:
    """Hash of every ``repro`` source file that can influence a result.

    ``repro/sweep`` itself is excluded: the orchestration layer decides
    *which* cells run and *where*, never what a cell measures, so
    iterating on it must not invalidate a populated cache.
    """
    import repro
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel.startswith("sweep/"):
            continue
        digest.update(rel.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]

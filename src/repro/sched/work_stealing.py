"""Work-stealing thread scheduler.

A slightly stronger execution-unit-focused baseline: placement is
round-robin, and an idle core steals the oldest waiting thread from the
most loaded run queue.  Like the plain thread scheduler it optimises core
utilisation, not on-chip memory — stolen threads drag their working sets
across caches, which is exactly the implicit-scheduling behaviour the
paper argues against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sched.thread_sched import ThreadScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.threads.thread import SimThread


class WorkStealingScheduler(ThreadScheduler):
    """Round-robin placement plus idle-time stealing."""

    name = "work-stealing"

    #: Idle cores re-check for stealable work this often (cycles); the
    #: engine polls parked cores only for schedulers that set this.
    idle_poll_interval = 500

    def __init__(self, min_victim_queue: int = 1) -> None:
        super().__init__()
        #: Only steal from queues at least this deep (avoid thrashing).
        self.min_victim_queue = min_victim_queue
        self.steals = 0

    def on_idle(self, core: "Core", now: int) -> Optional["SimThread"]:
        victim = None
        depth = self.min_victim_queue - 1
        for other in self.machine.cores:
            if other.core_id == core.core_id:
                continue
            if len(other.runqueue) > depth:
                victim = other
                depth = len(other.runqueue)
        if victim is None:
            return None
        thread = victim.runqueue.steal()
        if thread is not None:
            self.steals += 1
        return thread

    def stats(self) -> dict:
        stats = super().stats()
        stats["steals"] = self.steals
        return stats

"""Multi-level feedback queue with a decaying CPU penalty addon.

Classic MLFQ demotes CPU hogs; the penalty addon makes the demotion
*forgiving*.  Every completed operation adds its service cycles to the
thread's penalty; the penalty decays by a fixed factor every
``decay_interval`` cycles, so a thread that burned the CPU long ago
climbs back up.  A thread's level is its penalty bucket (one bucket per
``4 * quantum`` of penalty, clamped to ``levels``); level 0 is the best.

At an operation boundary the running thread is preempted when a waiter
sits at a strictly better level, or when it has consumed its level's
slice (``quantum << level`` — lower levels run longer, as in classic
MLFQ).  Among waiters, the first (oldest) at the best level runs next:
FIFO within a level.

Decay is applied lazily on the ``decay_interval`` epoch grid inside
``on_ct_end``/``on_thread_done`` — callbacks that fire at identical
times under both engine kernels — and ``next_boundary`` additionally
caps batched macro-steps at the next epoch, so a collapsed batch never
spans a decay boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ConfigError
from repro.sched.timeshare import TimeSharingScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.threads.thread import SimThread


class MLFQScheduler(TimeSharingScheduler):
    """Penalty-bucketed feedback levels with periodic forgiveness."""

    name = "mlfq"

    def __init__(self, quantum: int = 2500, levels: int = 3,
                 decay: float = 0.5, decay_interval: int = 50_000) -> None:
        super().__init__(quantum=quantum)
        if levels < 1:
            raise ConfigError("mlfq: need at least one level")
        if not 0.0 <= decay < 1.0:
            raise ConfigError("mlfq: decay must be in [0, 1)")
        if decay_interval <= 0:
            raise ConfigError("mlfq: decay interval must be positive")
        self.levels = levels
        self.decay = decay
        self.decay_interval = decay_interval
        self._penalty: Dict[int, float] = {}
        self._decay_epoch = 0

    # ------------------------------------------------------------------
    # penalty bookkeeping
    # ------------------------------------------------------------------

    def _apply_decay(self, now: int) -> None:
        epoch = now // self.decay_interval
        steps = epoch - self._decay_epoch
        if steps > 0:
            factor = self.decay ** steps
            for tid in self._penalty:
                self._penalty[tid] *= factor
            self._decay_epoch = epoch

    def _level(self, tid: int) -> int:
        bucket = int(self._penalty.get(tid, 0.0) // (4 * self.quantum))
        return bucket if bucket < self.levels else self.levels - 1

    # ------------------------------------------------------------------
    # decision points
    # ------------------------------------------------------------------

    def on_ct_end(self, thread: "SimThread", core: "Core",
                  now: int) -> Optional[int]:
        self._apply_decay(now)
        return super().on_ct_end(thread, core, now)

    def _account(self, thread: "SimThread", core: "Core", now: int,
                 op_cycles: int) -> None:
        self._penalty[thread.tid] = (
            self._penalty.get(thread.tid, 0.0) + op_cycles)

    def _should_preempt(self, thread: "SimThread", core: "Core",
                        now: int) -> bool:
        level = self._level(thread.tid)
        if any(self._level(waiting.tid) < level
               for waiting in core.runqueue):
            return True
        return (self._slice_used.get(thread.tid, 0)
                >= (self.quantum << level))

    def _pick_next(self, core: "Core") -> Optional["SimThread"]:
        best = None
        best_level = None
        for waiting in core.runqueue:
            level = self._level(waiting.tid)
            if best_level is None or level < best_level:
                best, best_level = waiting, level
                if level == 0:
                    break
        return best

    def next_boundary(self, now: int) -> Optional[int]:
        quantum_cap = super().next_boundary(now)
        epoch_cap = (now - now % self.decay_interval
                     + self.decay_interval)
        return quantum_cap if quantum_cap < epoch_cap else epoch_cap

    def on_thread_done(self, thread: "SimThread", core: "Core",
                       now: int) -> None:
        self._apply_decay(now)
        super().on_thread_done(thread, core, now)
        self._penalty.pop(thread.tid, None)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        return (f"mlfq(levels={self.levels}, quantum={self.quantum}, "
                f"decay={self.decay}/{self.decay_interval})")

    def stats(self) -> dict:
        stats = super().stats()
        stats["decay_epochs"] = self._decay_epoch
        return stats

"""Constructive cache sharing (Chen et al. [6]).

The second thread-centric baseline from the paper's related work: where
Tam et al. co-locate similar threads on a *chip* (sharing an L3), Chen et
al. schedule threads that share a working set onto the same *core*, so
they constructively share its private cache.  For the paper's workload it
has the same fate as thread clustering: everything is shared, so the
similarity structure is flat and the policy degenerates — while paying
timeslicing costs for stacking threads on fewer cores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sched.thread_clustering import (ThreadClusteringScheduler,
                                           cosine_similarity)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.threads.thread import SimThread


class CacheSharingScheduler(ThreadClusteringScheduler):
    """Co-schedule threads with overlapping working sets per core."""

    name = "cache-sharing"

    def __init__(self, recluster_every_ops: int = 512,
                 history_limit: int = 4096,
                 join_threshold: float = 0.6) -> None:
        super().__init__(recluster_every_ops, history_limit)
        self.join_threshold = join_threshold
        #: thread tid -> assigned core (None until first clustering).
        self._core_of_thread: Dict[int, Optional[int]] = {}

    def on_ct_start(self, thread: "SimThread", obj: object, core: "Core",
                    now: int) -> Optional[int]:
        histogram = self._histograms.setdefault(thread.tid, {})
        key = id(obj)
        histogram[key] = histogram.get(key, 0) + 1
        self._ops_since_cluster += 1
        if self._ops_since_cluster >= self.recluster_every_ops:
            self._recluster()
        target = self._core_of_thread.get(thread.tid)
        if target is None or target == core.core_id:
            return None
        return target

    def _recluster(self) -> None:
        """Greedy pairing of similar threads onto shared cores."""
        self._ops_since_cluster = 0
        self.reclusterings += 1
        tids = sorted(self._histograms)
        if not tids:
            return
        n_cores = self.machine.n_cores
        # Co-schedule width: how many threads may share one core's
        # cache.  At least two (otherwise no constructive sharing can
        # ever happen), more when threads outnumber cores.
        per_core_capacity = max(2, -(-len(tids) // n_cores))
        groups: List[List[int]] = []
        for tid in tids:
            histogram = self._histograms[tid]
            best_index, best_sim = -1, self.join_threshold
            for index, group in enumerate(groups):
                if len(group) >= per_core_capacity:
                    continue
                leader = self._histograms[group[0]]
                sim = cosine_similarity(histogram, leader)
                if sim > best_sim:
                    best_index, best_sim = index, sim
            if best_index < 0:
                groups.append([tid])
            else:
                groups[best_index].append(tid)
        self.cluster_sizes = [len(g) for g in groups]
        core_fill = [0] * n_cores
        for group in groups:
            for tid in group:
                core = next((c for c in range(n_cores)
                             if core_fill[c] < per_core_capacity), 0)
                core_fill[core] += 1
                self._core_of_thread[tid] = core

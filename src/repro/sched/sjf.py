"""Shortest-job-first on per-thread observed service time.

True SJF needs an oracle for operation lengths; the practical version
predicts each thread's next burst from its history.  Here the predictor
is an exponentially-weighted moving average of the thread's completed
operation durations (service cycles, including memory stalls and lock
spins — what the operation actually cost the core).  At a quantum
expiry the waiter with the smallest predicted burst runs next; threads
with no history predict zero, so newcomers get measured immediately
rather than starved.

Placement is least-loaded (lowest core id on ties).  Like every
time-sharing policy here, preemption happens at operation boundaries —
see :mod:`repro.sched.timeshare` for why that is the cooperative
engine's preemption point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ConfigError
from repro.sched.timeshare import TimeSharingScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.threads.thread import SimThread


class ShortestJobFirstScheduler(TimeSharingScheduler):
    """Run the thread with the smallest predicted service burst."""

    name = "sjf"

    def __init__(self, quantum: int = 2500, alpha: float = 0.5) -> None:
        super().__init__(quantum=quantum)
        if not 0.0 < alpha <= 1.0:
            raise ConfigError("sjf: alpha must be in (0, 1]")
        #: EWMA weight of the most recent observation.
        self.alpha = alpha
        self._estimate: Dict[int, float] = {}

    def place_thread(self, thread: "SimThread") -> int:
        self.placements += 1
        return self._check_core(self._least_loaded_core())

    def _account(self, thread: "SimThread", core: "Core", now: int,
                 op_cycles: int) -> None:
        previous = self._estimate.get(thread.tid)
        if previous is None:
            self._estimate[thread.tid] = float(op_cycles)
        else:
            self._estimate[thread.tid] = (
                self.alpha * op_cycles + (1.0 - self.alpha) * previous)

    def _pick_next(self, core: "Core") -> Optional["SimThread"]:
        best = None
        best_key = None
        for position, waiting in enumerate(core.runqueue):
            key = (self._estimate.get(waiting.tid, 0.0), position)
            if best_key is None or key < best_key:
                best, best_key = waiting, key
        return best

    def on_thread_done(self, thread: "SimThread", core: "Core",
                       now: int) -> None:
        super().on_thread_done(thread, core, now)
        self._estimate.pop(thread.tid, None)

    def describe(self) -> str:
        return f"sjf(quantum={self.quantum}, alpha={self.alpha})"

"""Shared mechanics for cooperative time-sharing policies.

The engine is cooperative: a scheduler only runs inside its callbacks
(placement, ``ct_start``/``ct_end``, idleness).  Classic preemptive
policies — round-robin, CFS, SJF, MLFQ — therefore preempt at
*operation boundaries*: ``on_ct_end`` is the simulated equivalent of a
syscall return, and it is the one point where both engine kernels hand
the policy the core with its clock flushed.

Preemption uses exactly the engine's own yield mechanics
(:meth:`Simulator._do_yield`): clear ``core.current`` and requeue the
thread at the tail of the core's run queue.  Both the generic loop and
the batched kernel then pick the queue head on the next micro-step, so
a preempting policy stays byte-identical across kernels.  Which thread
runs next is controlled by reordering the FIFO — the policy's pick is
moved to the head with ``remove`` + ``push_front`` — never by touching
engine state directly.

Slice accounting is in *observed service cycles*: each ``on_ct_end``
adds the finished operation's duration (``now - ct_started_at``, which
includes memory stalls and lock spinning — cycles the thread burned on
the core) to the thread's current slice.  Wall-clock time spent waiting
in the run queue is not charged.  Subclasses decide when a slice is
exhausted (:meth:`_should_preempt`) and who runs next (:meth:`_pick_next`).

``next_boundary`` returns the next multiple of the quantum: the batched
kernel caps a quiescent core's macro-step there, so a collapsed batch
never spans more than one quantum.  The cap is conservative (splitting
a batch never changes behaviour) — preemption correctness comes from
the ``on_ct_end`` callbacks alone, which fire at identical times under
both kernels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ConfigError
from repro.obs.events import SchedDecision
from repro.sched.base import SchedulerRuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.threads.thread import SimThread


class TimeSharingScheduler(SchedulerRuntime):
    """Base class for boundary-preempting time-sharing policies."""

    name = "timeshare"

    def __init__(self, quantum: int = 2500) -> None:
        super().__init__()
        if quantum <= 0:
            raise ConfigError(f"{self.name}: quantum must be positive")
        #: Service cycles a thread may accumulate before an operation
        #: boundary preempts it (when another thread is waiting).
        self.quantum = quantum
        self._slice_used: Dict[int, int] = {}
        self._next_core = 0
        self.placements = 0
        self.preemptions = 0
        #: Event bus (None until bound with observability attached).
        self._bus = None

    def _on_bind(self) -> None:
        if self.obs is not None:
            self._bus = self.obs.bus

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------

    def _account(self, thread: "SimThread", core: "Core", now: int,
                 op_cycles: int) -> None:
        """Charge one finished operation (vruntime, service estimate...)."""

    def _should_preempt(self, thread: "SimThread", core: "Core",
                        now: int) -> bool:
        """Slice-exhaustion test; only consulted when a thread waits."""
        return self._slice_used.get(thread.tid, 0) >= self.quantum

    def _pick_next(self, core: "Core") -> Optional["SimThread"]:
        """Choose among the waiting threads (queue order = FIFO age);
        None keeps the queue head.  Called *before* the preempted thread
        is requeued, so the pick is always a previously-waiting thread."""
        return None

    # ------------------------------------------------------------------
    # decision points
    # ------------------------------------------------------------------

    def place_thread(self, thread: "SimThread") -> int:
        core_id = self._next_core % self.machine.n_cores
        self._next_core += 1
        self.placements += 1
        return self._check_core(core_id)

    def on_ct_start(self, thread: "SimThread", obj: object, core: "Core",
                    now: int) -> Optional[int]:
        bus = self._bus
        if bus is not None and bus.wants(SchedDecision):
            bus.publish(SchedDecision(
                now, core.core_id, thread.name,
                getattr(obj, "name", None) or repr(obj), None))
        return None

    def on_ct_end(self, thread: "SimThread", core: "Core",
                  now: int) -> Optional[int]:
        tid = thread.tid
        op_cycles = now - thread.ct_started_at
        self._slice_used[tid] = self._slice_used.get(tid, 0) + op_cycles
        self._account(thread, core, now, op_cycles)
        if core.runqueue and self._should_preempt(thread, core, now):
            self._preempt(thread, core, now)
        return None

    def _preempt(self, thread: "SimThread", core: "Core",
                 now: int) -> None:
        chosen = self._pick_next(core)
        # The engine's own yield mechanics: both kernels resume by
        # popping the queue head on the next micro-step.
        core.current = None
        core.runqueue.push(thread)
        self._slice_used[thread.tid] = 0
        if chosen is not None:
            queue = core.runqueue
            if next(iter(queue)) is not chosen:
                queue.remove(chosen)
                queue.push_front(chosen)
        self.preemptions += 1

    def next_boundary(self, now: int) -> Optional[int]:
        """Cap batched macro-steps at the next quantum-grid point.

        Pure function of ``now`` (the batched kernel may call it at
        times the generic loop never does); always strictly ahead of
        ``now`` so a zero-length batch is impossible.
        """
        return now - now % self.quantum + self.quantum

    def on_thread_done(self, thread: "SimThread", core: "Core",
                       now: int) -> None:
        self._slice_used.pop(thread.tid, None)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        return f"{self.name}(quantum={self.quantum})"

    def stats(self) -> dict:
        return {"placements": self.placements,
                "preemptions": self.preemptions}

    # ------------------------------------------------------------------
    # shared placement helper
    # ------------------------------------------------------------------

    def _least_loaded_core(self) -> int:
        """Lowest-id core with the fewest runnable threads (deterministic
        tie-break by core id)."""
        cores = self.machine.cores
        best = cores[0]
        for core in cores[1:]:
            if core.load < best.load:
                best = core
        return best.core_id

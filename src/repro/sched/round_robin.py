"""Round-robin time sharing with a configurable quantum.

The oldest policy in the book, as the floor of the scheduler tournament:
threads are placed round-robin and each gets ``quantum`` service cycles
before the next operation boundary hands the core to the next waiter in
FIFO order.  No priorities, no history — every difference between this
and the smarter policies is signal.
"""

from __future__ import annotations

from repro.sched.timeshare import TimeSharingScheduler


class RoundRobinScheduler(TimeSharingScheduler):
    """FIFO time slicing: preempt after ``quantum`` service cycles."""

    name = "rr"

    def __init__(self, quantum: int = 2500) -> None:
        super().__init__(quantum=quantum)

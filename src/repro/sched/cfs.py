"""CFS-style fair scheduling on per-thread virtual runtime.

Each thread accumulates *virtual runtime*: the service cycles of every
operation it completes (all threads weigh the same — the simulated
programs have no niceness).  At an operation boundary the running
thread is preempted when its vruntime has pulled more than one
``granularity`` (the base class ``quantum``) ahead of the most-starved
waiter, and the waiter with the minimum vruntime runs next — the
red-black-tree pick, done by reordering the FIFO.

Threads entering late start at the pack's minimum vruntime (as in CFS),
so a newcomer is favoured but cannot monopolize the core.  Placement is
least-loaded with a lowest-core-id tie-break.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.sched.timeshare import TimeSharingScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.threads.thread import SimThread


class CFSScheduler(TimeSharingScheduler):
    """Fair share by minimum virtual runtime."""

    name = "cfs"

    def __init__(self, granularity: int = 2500) -> None:
        super().__init__(quantum=granularity)
        self._vruntime: Dict[int, int] = {}

    def _vrt(self, tid: int) -> int:
        value = self._vruntime.get(tid)
        if value is None:
            # Late arrivals start at the pack minimum, as in CFS.
            value = min(self._vruntime.values(), default=0)
            self._vruntime[tid] = value
        return value

    def place_thread(self, thread: "SimThread") -> int:
        self.placements += 1
        return self._check_core(self._least_loaded_core())

    def _account(self, thread: "SimThread", core: "Core", now: int,
                 op_cycles: int) -> None:
        self._vruntime[thread.tid] = self._vrt(thread.tid) + op_cycles

    def _should_preempt(self, thread: "SimThread", core: "Core",
                        now: int) -> bool:
        most_starved = min(self._vrt(waiting.tid)
                           for waiting in core.runqueue)
        return self._vrt(thread.tid) > most_starved + self.quantum

    def _pick_next(self, core: "Core") -> Optional["SimThread"]:
        best = None
        best_key = None
        for position, waiting in enumerate(core.runqueue):
            key = (self._vrt(waiting.tid), position)
            if best_key is None or key < best_key:
                best, best_key = waiting, key
        return best

    def on_thread_done(self, thread: "SimThread", core: "Core",
                       now: int) -> None:
        super().on_thread_done(thread, core, now)
        self._vruntime.pop(thread.tid, None)

    def describe(self) -> str:
        return f"cfs(granularity={self.quantum})"

"""First-class scheduler registry.

Every tool that resolves a scheduler by name — the bench harness, the
sweep runner, the verify fuzzer, the CLIs — goes through this module, so
registering a scheduler once makes it reachable everywhere (and puts it
under the conformance suite, which parametrizes over :func:`names`).

An entry is a zero-argument factory plus the metadata reports and the
fuzzer need:

* ``family`` groups entries for documentation and reports ("thread" for
  placement-only policies, "object" for CoreTime, "timeshare" for the
  preemptive classics);
* ``fuzzable`` marks entries the property fuzzer may draw for its case
  axis (config *variants* of an already-fuzzed scheduler opt out — the
  fuzzer owns those knobs itself).

Built-in entries are populated lazily on first lookup so importing
``repro.sched`` stays cheap and free of import cycles; user code may
call :func:`register` at any time (built-ins never displace a name that
is already taken).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ConfigError

#: Monitoring window benchmarks use for CoreTime on scaled machines
#: (``repro.bench.harness`` re-exports this as ``BENCH_MONITOR_INTERVAL``).
BENCH_MONITOR_INTERVAL = 100_000

SchedulerFactory = Callable[[], "object"]


def coretime_factory(**config_changes) -> SchedulerFactory:
    """Factory for a CoreTime scheduler with benchmark-friendly defaults."""
    def make():
        from repro.core.coretime import CoreTimeConfig, CoreTimeScheduler
        config = CoreTimeConfig(monitor_interval=BENCH_MONITOR_INTERVAL)
        if config_changes:
            config = config.replace(**config_changes)
        return CoreTimeScheduler(config)
    return make


@dataclass(frozen=True)
class SchedulerEntry:
    """One registered scheduler: its factory plus report/fuzzer metadata."""

    name: str
    factory: SchedulerFactory
    summary: str = ""
    family: str = "other"
    fuzzable: bool = True


_REGISTRY: Dict[str, SchedulerEntry] = {}
_builtins_registered = False


def register(name: str, factory: SchedulerFactory, *, summary: str = "",
             family: str = "other", fuzzable: bool = True,
             replace: bool = False) -> SchedulerEntry:
    """Register a scheduler factory under ``name``.

    ``factory`` is called with no arguments and must return a fresh
    :class:`~repro.sched.base.SchedulerRuntime` (a class object works).
    Registering an existing name raises unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ConfigError("scheduler name must be a non-empty string")
    if not callable(factory):
        raise ConfigError(f"scheduler {name!r} factory must be callable")
    _ensure_builtins()
    if name in _REGISTRY and not replace:
        raise ConfigError(
            f"scheduler {name!r} is already registered; "
            "pass replace=True to override")
    entry = SchedulerEntry(name=name, factory=factory, summary=summary,
                           family=family, fuzzable=fuzzable)
    _REGISTRY[name] = entry
    return entry


def entry(name: str) -> SchedulerEntry:
    """The full registry entry for ``name`` (raises ConfigError)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; "
            f"choose from {sorted(_REGISTRY)}") from None


def resolve(name: str) -> SchedulerFactory:
    """The factory registered under ``name`` (raises ConfigError)."""
    return entry(name).factory


def create(name: str):
    """A fresh scheduler instance built from ``name``'s factory."""
    return resolve(name)()


def names() -> Tuple[str, ...]:
    """Every registered scheduler name, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def fuzzable_names() -> Tuple[str, ...]:
    """Names the property fuzzer draws its scheduler axis from."""
    _ensure_builtins()
    return tuple(sorted(name for name, item in _REGISTRY.items()
                        if item.fuzzable))


def entries() -> List[SchedulerEntry]:
    """Every registry entry, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ---------------------------------------------------------------------------
# built-ins
# ---------------------------------------------------------------------------

def _ensure_builtins() -> None:
    """Populate the built-in entries once, on first registry use.

    Lazy so that ``import repro.sched`` does not pull in the CoreTime /
    rebalancer stack, and so user registrations made before first lookup
    are never displaced (built-ins skip taken names).
    """
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True

    from repro.sched.cache_sharing import CacheSharingScheduler
    from repro.sched.cfs import CFSScheduler
    from repro.sched.mlfq import MLFQScheduler
    from repro.sched.round_robin import RoundRobinScheduler
    from repro.sched.sjf import ShortestJobFirstScheduler
    from repro.sched.thread_clustering import ThreadClusteringScheduler
    from repro.sched.thread_sched import ThreadScheduler
    from repro.sched.work_stealing import WorkStealingScheduler

    builtins = (
        SchedulerEntry(
            "thread", ThreadScheduler,
            summary="pinned threads, round-robin placement (paper's "
                    "'without CoreTime')",
            family="thread"),
        SchedulerEntry(
            "work-stealing", WorkStealingScheduler,
            summary="pinned threads; idle cores steal from the deepest "
                    "run queue",
            family="thread"),
        SchedulerEntry(
            "thread-clustering", ThreadClusteringScheduler,
            summary="threads clustered onto cores by object-access "
                    "similarity",
            family="thread"),
        SchedulerEntry(
            "cache-sharing", CacheSharingScheduler,
            summary="threads grouped to share on-chip cache footprints",
            family="thread"),
        SchedulerEntry(
            "coretime", coretime_factory(),
            summary="O2: operations migrate to the cores that own their "
                    "objects (§4)",
            family="object"),
        SchedulerEntry(
            "coretime-norebalance", coretime_factory(rebalance=False),
            summary="coretime with the epoch rebalancer disabled "
                    "(ablation)",
            family="object",
            # Config variant: the fuzzer already owns the rebalance knob
            # on its "coretime" axis, so drawing this name would only
            # duplicate coverage.
            fuzzable=False),
        SchedulerEntry(
            "rr", RoundRobinScheduler,
            summary="round-robin with a configurable quantum, preempting "
                    "at operation boundaries",
            family="timeshare"),
        SchedulerEntry(
            "cfs", CFSScheduler,
            summary="CFS-style fair scheduling on per-thread virtual "
                    "runtime",
            family="timeshare"),
        SchedulerEntry(
            "sjf", ShortestJobFirstScheduler,
            summary="shortest-job-first on per-thread observed service "
                    "time (EWMA)",
            family="timeshare"),
        SchedulerEntry(
            "mlfq", MLFQScheduler,
            summary="multi-level feedback queue with a decaying CPU "
                    "penalty addon",
            family="timeshare"),
    )
    for item in builtins:
        if item.name not in _REGISTRY:
            _REGISTRY[item.name] = item

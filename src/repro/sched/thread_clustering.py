"""Thread-clustering scheduler (Tam et al. [12], Chen et al. [6]).

The strongest *thread-centric* baseline the paper discusses: group threads
whose working sets overlap and co-locate each group on one chip so they
share that chip's cache.  §2 of the paper predicts this cannot help the
directory-lookup workload because *every* thread shares *every* directory —
the similarity matrix is uniform, clustering degenerates to arbitrary
placement, and the data is still replicated per chip.  Benchmark E6
verifies that prediction.

The implementation observes object accesses at ``ct_start`` (standing in
for the hardware-counter sampling Tam et al. use), periodically clusters
threads by cosine similarity of their object-access histograms, assigns
clusters to chips, and migrates threads to their cluster's chip at the next
operation boundary.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sched.thread_sched import ThreadScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.threads.thread import SimThread


def cosine_similarity(a: Dict[int, int], b: Dict[int, int]) -> float:
    """Cosine similarity of two sparse access histograms."""
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(count * b.get(key, 0) for key, count in a.items())
    if dot == 0:
        return 0.0
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    return dot / (norm_a * norm_b)


class ThreadClusteringScheduler(ThreadScheduler):
    """Sharing-aware thread placement: similar threads share a chip."""

    name = "thread-clustering"

    def __init__(self, recluster_every_ops: int = 512,
                 history_limit: int = 4096) -> None:
        super().__init__()
        self.recluster_every_ops = recluster_every_ops
        self.history_limit = history_limit
        #: thread tid -> {object id: access count}
        self._histograms: Dict[int, Dict[int, int]] = {}
        #: thread tid -> assigned chip (None until first clustering)
        self._chip_of_thread: Dict[int, Optional[int]] = {}
        self._ops_since_cluster = 0
        self.reclusterings = 0
        self.cluster_sizes: List[int] = []

    # ------------------------------------------------------------------

    def on_ct_start(self, thread: "SimThread", obj: object, core: "Core",
                    now: int) -> Optional[int]:
        histogram = self._histograms.setdefault(thread.tid, {})
        key = id(obj)
        histogram[key] = histogram.get(key, 0) + 1
        if len(histogram) > self.history_limit:
            # Decay: halve everything, drop the zeroes.
            for k in list(histogram):
                histogram[k] //= 2
                if not histogram[k]:
                    del histogram[k]
        self._ops_since_cluster += 1
        if self._ops_since_cluster >= self.recluster_every_ops:
            self._recluster()
        target_chip = self._chip_of_thread.get(thread.tid)
        if target_chip is None or core.chip_id == target_chip:
            return None
        return self._least_loaded_core(target_chip)

    def _least_loaded_core(self, chip_id: int) -> int:
        cores = self.machine.cores_of_chip(chip_id)
        best = min(cores, key=lambda c: c.load)
        return best.core_id

    def _recluster(self) -> None:
        """Greedy agglomerative clustering into at most n_chips groups."""
        self._ops_since_cluster = 0
        self.reclusterings += 1
        tids = sorted(self._histograms)
        if not tids:
            return
        n_chips = self.machine.spec.n_chips
        clusters: List[List[int]] = []
        centroids: List[Dict[int, int]] = []
        for tid in tids:
            histogram = self._histograms[tid]
            best_index, best_sim = -1, 0.5  # join threshold
            for index, centroid in enumerate(centroids):
                sim = cosine_similarity(histogram, centroid)
                if sim > best_sim:
                    best_index, best_sim = index, sim
            if best_index < 0 and len(clusters) < n_chips:
                clusters.append([tid])
                centroids.append(dict(histogram))
                continue
            if best_index < 0:
                # No room for a new cluster: join the most similar.
                best_index = max(
                    range(len(centroids)),
                    key=lambda i: cosine_similarity(
                        self._histograms[tid], centroids[i]))
            clusters[best_index].append(tid)
            centroid = centroids[best_index]
            for key, count in histogram.items():
                centroid[key] = centroid.get(key, 0) + count
        self.cluster_sizes = [len(c) for c in clusters]
        # Spread clusters over chips without overloading any chip: a
        # cluster larger than an even share (e.g. "every thread shares
        # everything", this paper's workload) is split across chips, so
        # clustering degenerates to balanced placement instead of
        # stuffing the whole workload onto one chip.
        per_chip_capacity = max(1, -(-len(tids) // n_chips))
        chip_fill = [0] * n_chips
        for cluster in clusters:
            for tid in cluster:
                chip = next((c for c in range(n_chips)
                             if chip_fill[c] < per_chip_capacity), 0)
                chip_fill[chip] += 1
                self._chip_of_thread[tid] = chip

    def stats(self) -> dict:
        stats = super().stats()
        stats["reclusterings"] = self.reclusterings
        stats["cluster_sizes"] = list(self.cluster_sizes)
        return stats

"""Scheduler runtime interface.

Every scheduler — the traditional thread scheduler, its work-stealing and
thread-clustering variants, and CoreTime itself — implements
:class:`SchedulerRuntime`.  The engine calls into the runtime at exactly
the points where the paper's schedulers act:

* thread creation (initial placement),
* ``ct_start`` (may redirect the operation to another core),
* ``ct_end`` (may send the thread home),
* core idleness (may steal work).

Keeping one interface makes "with CoreTime" vs "without CoreTime" a
one-argument change in every benchmark, as in Figure 4.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.cpu.machine import Machine
from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.threads.thread import SimThread


class SchedulerRuntime(abc.ABC):
    """Decision points shared by all schedulers."""

    #: Short identifier used in reports ("thread", "coretime", ...).
    name: str = "abstract"

    def __init__(self) -> None:
        self.machine: Optional[Machine] = None
        #: Observability pipeline, set by the simulator before ``bind``;
        #: None when telemetry is disabled.  Schedulers that publish must
        #: gate on ``self.obs is not None`` and ``obs.bus.wants(...)``.
        self.obs = None

    def bind(self, machine: Machine) -> None:
        """Attach to a machine; called once by the simulator."""
        self.machine = machine
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses needing per-machine state."""

    def _check_core(self, core_id: int) -> int:
        machine = self.machine
        if machine is None:
            raise SchedulerError(f"{self.name}: not bound to a machine")
        if not 0 <= core_id < machine.n_cores:
            raise SchedulerError(
                f"{self.name}: invalid core id {core_id} "
                f"(machine has {machine.n_cores})")
        return core_id

    # ------------------------------------------------------------------
    # decision points
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def place_thread(self, thread: "SimThread") -> int:
        """Initial core for a new thread."""

    def on_ct_start(self, thread: "SimThread", obj: object, core: "Core",
                    now: int) -> Optional[int]:
        """Target core for the operation, or None to run locally.

        A traditional scheduler ignores annotations entirely (the paper's
        Figure 1 program); CoreTime overrides this with the object-table
        lookup of §4.
        """
        return None

    def on_ct_end(self, thread: "SimThread", core: "Core",
                  now: int) -> Optional[int]:
        """Optionally migrate the thread after an operation completes.

        Called while the thread's ``ct_object``/``ct_entry_snapshot`` are
        still set so runtimes can account the finished operation.
        """
        return None

    def on_idle(self, core: "Core", now: int) -> Optional["SimThread"]:
        """Offer an idle core a thread (work stealing).  The returned
        thread must already be removed from wherever it was queued."""
        return None

    def next_boundary(self, now: int) -> Optional[int]:
        """Next cycle at which this scheduler acts on its own clock (a
        monitoring window, a rebalance epoch), or None when it only acts
        synchronously inside engine callbacks.

        The batched engine kernel caps a quiescent core's macro-step
        horizon here, so a batch never runs past an epoch boundary.  The
        cap is conservative — shortening a batch never changes behaviour,
        it only splits the run into more pieces — so returning None is
        always safe for schedulers without timed behaviour.
        """
        return None

    def on_thread_done(self, thread: "SimThread", core: "Core",
                       now: int) -> None:
        """Notification that a thread's program finished."""

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        return self.name

    def stats(self) -> dict:
        """Scheduler-specific statistics for reports (override freely)."""
        return {}

"""The traditional thread scheduler — the paper's "without CoreTime".

Threads are assigned to cores round-robin (or pinned explicitly, matching
``sched_setaffinity`` in the paper's setup) and never move.  CoreTime
annotations are inert: ``ct_start`` does no table lookup and no migration,
so the annotated program of Figure 3 behaves exactly like the unannotated
program of Figure 1.  On-chip memory is managed implicitly by the caches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sched.base import SchedulerRuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class ThreadScheduler(SchedulerRuntime):
    """Keep every core busy with a pinned thread; ignore objects."""

    name = "thread"

    def __init__(self) -> None:
        super().__init__()
        self._next_core = 0
        self.placements = 0

    def place_thread(self, thread: "SimThread") -> int:
        core_id = self._next_core % self.machine.n_cores
        self._next_core += 1
        self.placements += 1
        return self._check_core(core_id)

    def stats(self) -> dict:
        return {"placements": self.placements}

"""Schedulers: the paper's baselines, the time-sharing classics, and
the registry every tool resolves them through (see
:mod:`repro.sched.registry`)."""

from repro.sched import registry
from repro.sched.base import SchedulerRuntime
from repro.sched.cache_sharing import CacheSharingScheduler
from repro.sched.cfs import CFSScheduler
from repro.sched.mlfq import MLFQScheduler
from repro.sched.registry import SchedulerEntry, register, resolve
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.sjf import ShortestJobFirstScheduler
from repro.sched.thread_clustering import (ThreadClusteringScheduler,
                                           cosine_similarity)
from repro.sched.thread_sched import ThreadScheduler
from repro.sched.timeshare import TimeSharingScheduler
from repro.sched.work_stealing import WorkStealingScheduler

__all__ = [
    "CFSScheduler",
    "CacheSharingScheduler",
    "MLFQScheduler",
    "RoundRobinScheduler",
    "SchedulerEntry",
    "SchedulerRuntime",
    "ShortestJobFirstScheduler",
    "ThreadClusteringScheduler",
    "ThreadScheduler",
    "TimeSharingScheduler",
    "WorkStealingScheduler",
    "cosine_similarity",
    "register",
    "registry",
    "resolve",
]

"""Baseline schedulers (the paper's comparison points)."""

from repro.sched.base import SchedulerRuntime
from repro.sched.cache_sharing import CacheSharingScheduler
from repro.sched.thread_clustering import (ThreadClusteringScheduler,
                                           cosine_similarity)
from repro.sched.thread_sched import ThreadScheduler
from repro.sched.work_stealing import WorkStealingScheduler

__all__ = [
    "CacheSharingScheduler",
    "SchedulerRuntime",
    "ThreadClusteringScheduler",
    "ThreadScheduler",
    "WorkStealingScheduler",
    "cosine_similarity",
]

"""Spin locks in the simulated machine.

The paper's file system protects each directory with a spin lock; lock
words live in simulated memory, so acquiring a lock is a *store* to the
lock's cache line (invalidating remote copies — the classic coherence
ping-pong) and spinning is repeated *loads* of that line.  This makes lock
contention show up through the same memory model as everything else, which
is what produces the paper's low-throughput left edge of Figure 4 (fewer
directories than cores).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.layout import AddressSpace
    from repro.threads.thread import SimThread


class SpinLock:
    """A test-and-set spin lock occupying one cache line."""

    __slots__ = ("name", "addr", "owner", "acquires", "contended_acquires",
                 "spin_attempts")

    def __init__(self, name: str, addr: int) -> None:
        self.name = name
        self.addr = addr
        self.owner: Optional["SimThread"] = None
        self.acquires = 0
        self.contended_acquires = 0
        self.spin_attempts = 0

    @classmethod
    def allocate(cls, space: "AddressSpace", name: str) -> "SpinLock":
        """Allocate a lock on its own cache line of ``space``."""
        region = space.alloc(f"lock:{name}", space.line_size)
        return cls(name, region.base)

    @property
    def held(self) -> bool:
        return self.owner is not None

    def try_acquire(self, thread: "SimThread") -> bool:
        """Attempt the test-and-set; bookkeeping only, no timing."""
        if self.owner is None:
            self.owner = thread
            self.acquires += 1
            return True
        if self.owner is thread:
            raise SimulationError(
                f"thread {thread.name} re-acquiring spin lock {self.name}")
        self.spin_attempts += 1
        return False

    def release(self, thread: "SimThread") -> None:
        if self.owner is not thread:
            owner = self.owner.name if self.owner else "<unheld>"
            raise SimulationError(
                f"thread {thread.name} releasing lock {self.name} "
                f"owned by {owner}")
        self.owner = None

    def __repr__(self) -> str:
        state = self.owner.name if self.owner else "free"
        return f"SpinLock({self.name}, {state})"

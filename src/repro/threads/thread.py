"""Green threads: the simulated cooperative threading runtime.

CoreTime provides cooperative user-level threading inside one pthread per
core (§4, Implementation).  :class:`SimThread` is our equivalent: a wrapper
around a generator program with the context the engine and schedulers need
— where the thread lives, what item it is executing, whether it is inside
a CoreTime operation, and per-thread statistics.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Generator, Optional

from repro.errors import SimulationError

_ids = itertools.count()

#: The generator type thread programs must be.
Program = Generator[Any, None, None]


class ThreadState(enum.Enum):
    READY = "ready"          # in some core's run queue
    RUNNING = "running"      # current thread of a core
    MIGRATING = "migrating"  # context in flight between cores
    DONE = "done"            # program finished


class SimThread:
    """One simulated thread of execution."""

    __slots__ = (
        "tid", "name", "program", "state",
        "home_core", "core",
        "pending", "arrive_at",
        "ct_object", "ct_entry_snapshot", "ct_started_at",
        "ct_entry_core", "ct_entry_migrations", "ct_entry_spin",
        "ct_obj_name",
        "ops_completed", "migrations", "spin_cycles", "spinning",
        "wait_cycles",
        "created_at", "finished_at",
        "user",
    )

    def __init__(self, program: Program, name: Optional[str] = None) -> None:
        self.tid = next(_ids)
        self.name = name or f"thread-{self.tid}"
        self.program = program
        self.state = ThreadState.READY
        #: Core the thread was first placed on (its affinity home).
        self.home_core: Optional[int] = None
        #: Core currently responsible for the thread (None while in flight).
        self.core: Optional[int] = None
        #: Item being executed or retried; None means advance the program.
        self.pending: Any = None
        #: While MIGRATING: the cycle the in-flight context lands at.
        #: The invariant checker cross-checks this against the heap's
        #: arrival entry; None whenever the thread is not in flight.
        self.arrive_at: Optional[int] = None
        #: CoreTime bookkeeping: the object of the operation in progress.
        self.ct_object = None
        #: Counter snapshot taken at ct_start for per-object miss deltas.
        self.ct_entry_snapshot = None
        self.ct_started_at = 0
        #: Where the operation started, and the thread's migration count
        #: and spin-cycle total at that moment — the engine uses these to
        #: decide whether the per-operation counter delta is valid (the
        #: thread may have migrated mid-operation) and to measure spin
        #: cycles attributable to the operation.
        self.ct_entry_core: Optional[int] = None
        self.ct_entry_migrations = 0
        self.ct_entry_spin = 0
        #: Display name of ``ct_object``; set only when memory-event
        #: capture needs it (the engine keeps the memory system's
        #: per-core operation context pointed at this string).
        self.ct_obj_name: Optional[str] = None
        self.ops_completed = 0
        self.migrations = 0
        #: Cycles burned spinning on locks.
        self.spin_cycles = 0
        #: True while retrying a contended acquire (the first failed
        #: test-and-set of each acquire emits one LockContended event).
        self.spinning = False
        #: Cycles spent in flight or waiting in run queues.
        self.wait_cycles = 0
        self.created_at = 0
        self.finished_at: Optional[int] = None
        #: Free slot for workload-specific state.
        self.user: Any = None

    @property
    def in_operation(self) -> bool:
        return self.ct_object is not None

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE

    def advance(self) -> Any:
        """Resume the program and return its next item.

        Raises ``StopIteration`` when the program finishes; the engine
        translates that into thread completion.
        """
        if self.state is ThreadState.DONE:
            raise SimulationError(f"advancing finished thread {self.name}")
        return next(self.program)

    def begin_operation(self, obj: Any, snapshot: Any, now: int) -> None:
        if self.ct_object is not None:
            raise SimulationError(
                f"thread {self.name}: nested ct_start on {obj!r} while "
                f"operating on {self.ct_object!r} (CoreTime operations "
                f"do not nest)")
        self.ct_object = obj
        self.ct_entry_snapshot = snapshot
        self.ct_started_at = now

    def end_operation(self) -> Any:
        if self.ct_object is None:
            raise SimulationError(
                f"thread {self.name}: ct_end without matching ct_start")
        obj = self.ct_object
        self.ct_object = None
        self.ct_entry_snapshot = None
        self.ct_entry_core = None
        self.ct_obj_name = None
        self.ops_completed += 1
        return obj

    def __repr__(self) -> str:
        return (f"SimThread({self.name}, {self.state.value}, "
                f"core={self.core}, ops={self.ops_completed})")

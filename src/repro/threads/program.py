"""Instruction-stream items yielded by simulated thread programs.

A simulated thread is a Python generator; each ``yield`` hands the core one
item describing what the thread does next — compute for some cycles, touch
memory, take a lock, or bracket a CoreTime operation.  The engine charges
simulated time for the item and then resumes the generator.

This mirrors how the paper's programs look (Figures 1 and 3): the
annotated directory-search loop translates directly into

.. code-block:: python

    while True:
        yield Compute(think_cycles)
        d, name = pick()
        yield CtStart(d.object)
        yield Acquire(d.lock)
        yield Scan(d.addr, bytes_until_match, per_line_compute=4)
        yield Release(d.lock)
        yield CtEnd()

Items are plain slotted classes rather than an enum-plus-tuple so the
engine can dispatch on ``type(item)`` and the hot path stays allocation
light.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.object_table import CtObject
    from repro.threads.sync import SpinLock


class Compute:
    """Execute ``cycles`` of pure computation (no memory traffic)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Compute({self.cycles})"


class Load:
    """Read one byte/word at ``addr`` (one cache-line access)."""

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def __repr__(self) -> str:
        return f"Load({self.addr:#x})"


class Store:
    """Write at ``addr`` (one line; invalidates remote copies)."""

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def __repr__(self) -> str:
        return f"Store({self.addr:#x})"


class Scan:
    """Sequentially read ``nbytes`` from ``addr``.

    ``per_line_compute`` charges fixed cycles per line for the work done on
    the data (e.g. comparing directory entries against a file name).
    """

    __slots__ = ("addr", "nbytes", "per_line_compute")

    def __init__(self, addr: int, nbytes: int,
                 per_line_compute: int = 0) -> None:
        self.addr = addr
        self.nbytes = nbytes
        self.per_line_compute = per_line_compute

    def __repr__(self) -> str:
        return f"Scan({self.addr:#x}, {self.nbytes}B)"


class Acquire:
    """Take a spin lock; the thread retries (spinning) until it succeeds."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SpinLock") -> None:
        self.lock = lock

    def __repr__(self) -> str:
        return f"Acquire({self.lock.name})"


class Release:
    """Release a spin lock the thread owns."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SpinLock") -> None:
        self.lock = lock

    def __repr__(self) -> str:
        return f"Release({self.lock.name})"


class CtStart:
    """Begin an operation on ``obj`` — the paper's ``ct_start(o)``.

    Under CoreTime the object table is consulted and the thread may
    migrate; under a plain thread scheduler this is free (the unannotated
    program of Figure 1).
    """

    __slots__ = ("obj",)

    def __init__(self, obj: "CtObject") -> None:
        self.obj = obj

    def __repr__(self) -> str:
        return f"CtStart({getattr(self.obj, 'name', self.obj)!r})"


class CtEnd:
    """End the current operation — the paper's ``ct_end()``."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "CtEnd()"


class YieldCore:
    """Voluntarily yield the core to the next runnable thread."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "YieldCore()"


class OpDone:
    """Count a completed application operation without CoreTime brackets.

    Workloads that do not use annotations (pure baselines) yield this so
    throughput accounting still works.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "OpDone()"


#: Everything a program may yield (used for validation in strict mode).
ITEM_TYPES = (Compute, Load, Store, Scan, Acquire, Release,
              CtStart, CtEnd, YieldCore, OpDone)


def op_items(obj: "CtObject", lock: Optional["SpinLock"], addr: int,
             nbytes: int, per_line_compute: int = 0):
    """Yield the canonical annotated-operation sequence on ``obj``.

    Convenience used by workload generators; equivalent to the Figure 3
    pattern (lock taken inside the CoreTime bracket, as the paper's file
    system does with its per-directory spin locks).
    """
    yield CtStart(obj)
    if lock is not None:
        yield Acquire(lock)
    yield Scan(addr, nbytes, per_line_compute)
    if lock is not None:
        yield Release(lock)
    yield CtEnd()

"""Cooperative threading runtime for the simulated machine."""

from repro.threads.program import (ITEM_TYPES, Acquire, Compute, CtEnd,
                                   CtStart, Load, OpDone, Release, Scan,
                                   Store, YieldCore, op_items)
from repro.threads.runqueue import RunQueue
from repro.threads.sync import SpinLock
from repro.threads.thread import Program, SimThread, ThreadState

__all__ = [
    "Acquire",
    "Compute",
    "CtEnd",
    "CtStart",
    "ITEM_TYPES",
    "Load",
    "OpDone",
    "Program",
    "Release",
    "RunQueue",
    "Scan",
    "SimThread",
    "SpinLock",
    "Store",
    "ThreadState",
    "YieldCore",
    "op_items",
]

"""Per-core FIFO run queues."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.threads.thread import SimThread, ThreadState


class RunQueue:
    """FIFO queue of READY threads belonging to one core."""

    __slots__ = ("core_id", "_queue", "enqueues", "max_depth", "depth_hist")

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self._queue: Deque[SimThread] = deque()
        self.enqueues = 0
        self.max_depth = 0
        #: Optional observability histogram ("sim.runqueue_depth"), set by
        #: the simulator when a metrics registry is attached.
        self.depth_hist = None

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[SimThread]:
        return iter(self._queue)

    def __contains__(self, thread: SimThread) -> bool:
        return thread in self._queue

    def push(self, thread: SimThread) -> None:
        thread.state = ThreadState.READY
        thread.core = self.core_id
        self._queue.append(thread)
        self.enqueues += 1
        depth = len(self._queue)
        if depth > self.max_depth:
            self.max_depth = depth
        if self.depth_hist is not None:
            self.depth_hist.observe(depth)

    def push_front(self, thread: SimThread) -> None:
        """Requeue at the head (used when a core is preempted mid-pick)."""
        thread.state = ThreadState.READY
        thread.core = self.core_id
        self._queue.appendleft(thread)

    def pop(self) -> Optional[SimThread]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def steal(self) -> Optional[SimThread]:
        """Remove the *oldest* waiting thread for a work-stealing peer."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def remove(self, thread: SimThread) -> bool:
        try:
            self._queue.remove(thread)
            return True
        except ValueError:
            return False

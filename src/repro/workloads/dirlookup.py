"""The paper's directory-lookup workload (Figures 1 and 3).

One thread per core repeatedly resolves a randomly chosen file name in a
randomly chosen directory.  Directories hold ``files_per_dir`` 32-byte
entries (1,000 in the paper); resolution is a linear scan under the
directory's spin lock.  With ``annotated=True`` each search is bracketed
by CoreTime annotations (Figure 3); with ``annotated=False`` the program
is the plain Figure 1 loop plus an :class:`~repro.threads.program.OpDone`
marker so throughput is still counted.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cpu.machine import Machine
from repro.errors import ConfigError
from repro.fs.efsl import EfslFat
from repro.fs.fat import DIR_ENTRY_SIZE
from repro.fs.image import FatFilesystem
from repro.sim.rng import make_rng
from repro.threads.program import Compute, OpDone
from repro.workloads.popularity import Popularity, popularity_for_spec


@dataclass(frozen=True)
class DirWorkloadSpec:
    """Parameters of the directory-lookup benchmark."""

    n_dirs: int = 64
    #: Entries per directory (paper: 1,000 entries of 32 bytes).
    files_per_dir: int = 1000
    #: Cycles of non-memory work between lookups (random number
    #: generation and loop overhead in Figure 1).
    think_cycles: int = 100
    #: "uniform" (Fig. 4a), "oscillating" (Fig. 4b) or "zipf".
    popularity: str = "uniform"
    #: Square-wave period for the oscillating distribution, in cycles.
    oscillation_period: int = 2_000_000
    #: Rotate the contracted window each period (harder rebalancing).
    oscillation_rotate: bool = False
    zipf_s: float = 1.0
    seed: int = 42
    annotated: bool = True
    cluster_bytes: int = 4096
    #: Cooperative threads multiplexed on each core.  The paper starts
    #: one application thread per core, but its runtime "continues to
    #: execute other threads in its run queue" while one migrates; a few
    #: threads per core give the run queues something to absorb migration
    #: arrival variance with (see DESIGN.md §5).
    threads_per_core: int = 4

    @property
    def total_data_bytes(self) -> int:
        """Total size of all directory contents (Figure 4's x-axis)."""
        return self.n_dirs * self.files_per_dir * DIR_ENTRY_SIZE

    @property
    def dir_bytes(self) -> int:
        return self.files_per_dir * DIR_ENTRY_SIZE

    def validate(self) -> None:
        if self.n_dirs < 1 or self.files_per_dir < 1:
            raise ConfigError("need at least one directory and file")
        if self.think_cycles < 0:
            raise ConfigError("think_cycles must be >= 0")

    def replace(self, **changes: object) -> "DirWorkloadSpec":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    @classmethod
    def scaled(cls, factor: int = 8, **overrides: object) \
            -> "DirWorkloadSpec":
        """Directories scaled to match :meth:`MachineSpec.scaled`.

        Shrinking entries-per-directory by the same factor as the cache
        capacities preserves the directories-per-cache ratio that shapes
        Figure 4.
        """
        fields = {
            "files_per_dir": max(16, 1000 // factor),
            "cluster_bytes": max(512, 4096 // factor),
            # Think time is per-operation work; scale it with the
            # operation so it keeps the same relative weight.
            "think_cycles": max(10, 100 // factor),
        }
        fields.update(overrides)  # type: ignore[arg-type]
        spec = cls(**fields)  # type: ignore[arg-type]
        spec.validate()
        return spec

    @classmethod
    def for_total_bytes(cls, total_bytes: int, files_per_dir: int = 1000,
                        **overrides: object) -> "DirWorkloadSpec":
        """Spec whose directory count makes the data total ``total_bytes``
        (how Figure 4's x-axis sweep is generated)."""
        dir_bytes = files_per_dir * DIR_ENTRY_SIZE
        n_dirs = max(1, round(total_bytes / dir_bytes))
        fields = {"n_dirs": n_dirs, "files_per_dir": files_per_dir}
        fields.update(overrides)  # type: ignore[arg-type]
        spec = cls(**fields)  # type: ignore[arg-type]
        spec.validate()
        return spec


class DirectoryLookupWorkload:
    """Builds the FAT image and per-core lookup programs."""

    def __init__(self, machine: Machine, spec: DirWorkloadSpec,
                 popularity: Optional[Popularity] = None) -> None:
        spec.validate()
        self.machine = machine
        self.spec = spec
        fs = FatFilesystem.build_benchmark_image(
            spec.n_dirs, spec.files_per_dir,
            cluster_bytes=spec.cluster_bytes)
        self.efsl = EfslFat(machine, fs)
        self.popularity = popularity or popularity_for_spec(
            spec.popularity, spec.n_dirs,
            zipf_s=spec.zipf_s, seed=spec.seed,
            period_cycles=spec.oscillation_period,
            rotate=spec.oscillation_rotate)
        self.resolutions = 0

    # ------------------------------------------------------------------

    def make_program(self, core_id: int, lane: int = 0) -> Iterator:
        """The Figure 1/3 thread loop for one thread homed on
        ``core_id`` (``lane`` distinguishes threads sharing a core)."""
        spec = self.spec
        efsl = self.efsl
        dirs = efsl.directories
        popularity = self.popularity
        rng = make_rng(spec.seed, "dirlookup", core_id, lane)
        core = self.machine.cores[core_id]
        annotated = spec.annotated
        files_per_dir = spec.files_per_dir
        think = Compute(spec.think_cycles) if spec.think_cycles else None

        def program() -> Iterator:
            while True:
                if think is not None:
                    yield think
                directory = dirs[popularity.pick(rng, core.time)]
                file_index = rng.randrange(files_per_dir)
                if annotated:
                    yield from efsl.search_items_by_index(
                        directory, file_index)
                else:
                    yield from efsl.unannotated_search_items(
                        directory, file_index)
                    yield OpDone()
                self.resolutions += 1

        return program()

    def spawn_all(self, simulator) -> list:
        """``threads_per_core`` lookup threads on every core."""
        threads = []
        for lane in range(self.spec.threads_per_core):
            for core_id in range(self.machine.n_cores):
                threads.append(simulator.spawn(
                    self.make_program(core_id, lane),
                    f"lookup-{lane}-{core_id}", core_id=core_id))
        return threads

"""Operation-trace recording and replay.

Comparing schedulers on *randomised* workloads leaves a doubt: did the
winner just draw luckier directories?  A :class:`OperationTrace` removes
the doubt — record the exact operation sequence each thread performed
once, then replay it verbatim under any scheduler, so both sides resolve
the same names in the same order.

Traces are plain data (lists of (directory index, file index) per
thread), can be saved/loaded as text, and synthesised directly from a
popularity distribution without running a simulation.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, TextIO, Tuple

from repro.cpu.machine import Machine
from repro.errors import ConfigError
from repro.fs.efsl import EfslFat
from repro.fs.image import FatFilesystem
from repro.sim.rng import make_rng
from repro.threads.program import Compute, OpDone
from repro.workloads.popularity import Popularity, UniformPopularity

#: One recorded operation: (directory index, file index).
Op = Tuple[int, int]


@dataclass
class OperationTrace:
    """A per-thread log of directory-lookup operations."""

    n_dirs: int
    files_per_dir: int
    #: ``lanes[i]`` is the op sequence of thread i.
    lanes: List[List[Op]] = field(default_factory=list)

    def validate(self) -> None:
        if self.n_dirs < 1 or self.files_per_dir < 1:
            raise ConfigError("trace needs at least one directory/file")
        for index, lane in enumerate(self.lanes):
            for d, f in lane:
                if not (0 <= d < self.n_dirs
                        and 0 <= f < self.files_per_dir):
                    raise ConfigError(
                        f"trace lane {index}: op ({d},{f}) out of range")

    @property
    def total_ops(self) -> int:
        return sum(len(lane) for lane in self.lanes)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def synthesise(cls, n_threads: int, ops_per_thread: int, n_dirs: int,
                   files_per_dir: int,
                   popularity: Optional[Popularity] = None,
                   seed: int = 0) -> "OperationTrace":
        """Draw a trace from a popularity distribution, once."""
        popularity = popularity or UniformPopularity(n_dirs)
        lanes = []
        for thread in range(n_threads):
            rng = make_rng(seed, "trace", thread)
            lanes.append([
                (popularity.pick(rng, 0), rng.randrange(files_per_dir))
                for _ in range(ops_per_thread)
            ])
        trace = cls(n_dirs, files_per_dir, lanes)
        trace.validate()
        return trace

    # ------------------------------------------------------------------
    # persistence (simple text format: header line, then one lane/line)
    # ------------------------------------------------------------------

    def dump(self, out: TextIO) -> None:
        out.write(f"trace {self.n_dirs} {self.files_per_dir} "
                  f"{len(self.lanes)}\n")
        for lane in self.lanes:
            out.write(" ".join(f"{d}:{f}" for d, f in lane) + "\n")

    def dumps(self) -> str:
        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()

    @classmethod
    def load(cls, source: TextIO) -> "OperationTrace":
        header = source.readline().split()
        if len(header) != 4 or header[0] != "trace":
            raise ConfigError("not a trace file")
        n_dirs, files_per_dir, n_lanes = map(int, header[1:])
        lanes = []
        for _ in range(n_lanes):
            line = source.readline().strip()
            lane = []
            if line:
                for token in line.split():
                    d, _, f = token.partition(":")
                    lane.append((int(d), int(f)))
            lanes.append(lane)
        trace = cls(n_dirs, files_per_dir, lanes)
        trace.validate()
        return trace

    @classmethod
    def loads(cls, text: str) -> "OperationTrace":
        return cls.load(io.StringIO(text))


class TraceReplayWorkload:
    """Replays an :class:`OperationTrace` against a machine.

    Threads are assigned lanes round-robin across cores; each thread
    performs exactly its lane's lookups and stops, so two replays under
    different schedulers do byte-identical application work.
    """

    def __init__(self, machine: Machine, trace: OperationTrace,
                 think_cycles: int = 12, annotated: bool = True,
                 cluster_bytes: int = 512) -> None:
        trace.validate()
        self.machine = machine
        self.trace = trace
        self.think_cycles = think_cycles
        self.annotated = annotated
        fs = FatFilesystem.build_benchmark_image(
            trace.n_dirs, trace.files_per_dir,
            cluster_bytes=cluster_bytes)
        self.efsl = EfslFat(machine, fs, region_name="trace-image")

    def make_program(self, lane_index: int) -> Iterator:
        lane = self.trace.lanes[lane_index]
        efsl = self.efsl
        dirs = efsl.directories
        annotated = self.annotated
        think = Compute(self.think_cycles) if self.think_cycles else None

        def program() -> Iterator:
            for dir_index, file_index in lane:
                if think is not None:
                    yield think
                directory = dirs[dir_index]
                if annotated:
                    yield from efsl.search_items_by_index(directory,
                                                          file_index)
                else:
                    yield from efsl.unannotated_search_items(directory,
                                                             file_index)
                    yield OpDone()

        return program()

    def spawn_all(self, simulator) -> list:
        threads = []
        n_cores = self.machine.n_cores
        for lane_index in range(len(self.trace.lanes)):
            threads.append(simulator.spawn(
                self.make_program(lane_index), f"replay-{lane_index}",
                core_id=lane_index % n_cores))
        return threads

    def completion_cycles(self, simulator) -> int:
        """Machine time when the last replay thread finished."""
        finished = [t.finished_at for t in simulator.threads
                    if t.finished_at is not None]
        if len(finished) != len(self.trace.lanes):
            raise ConfigError("replay has unfinished lanes")
        return max(finished)

"""Workload generators for the paper's benchmarks and ablations."""

from repro.workloads.dirlookup import (DirectoryLookupWorkload,
                                       DirWorkloadSpec)
from repro.workloads.popularity import (OscillatingPopularity, Popularity,
                                        UniformPopularity, ZipfPopularity,
                                        make_popularity, popularity_for_spec)
from repro.workloads.scenarios import ScenarioEntry, ScenarioSpec
from repro.workloads.synthetic import ObjectOpsSpec, ObjectOpsWorkload
from repro.workloads.trace import OperationTrace, TraceReplayWorkload
from repro.workloads.webserver import WebServerSpec, WebServerWorkload

__all__ = [
    "OperationTrace",
    "TraceReplayWorkload",
    "WebServerSpec",
    "WebServerWorkload",
    "DirWorkloadSpec",
    "DirectoryLookupWorkload",
    "ObjectOpsSpec",
    "ObjectOpsWorkload",
    "OscillatingPopularity",
    "Popularity",
    "UniformPopularity",
    "ZipfPopularity",
    "ScenarioEntry",
    "ScenarioSpec",
    "make_popularity",
    "popularity_for_spec",
]

"""Directory-popularity distributions.

Figure 4(a) uses uniform popularity; Figure 4(b) oscillates the number of
directories accessed between the full set and a sixteenth of it, to
exercise CoreTime's rebalancer.  A Zipf distribution is provided for
skewed-popularity experiments (hot objects, replication policy).
"""

from __future__ import annotations

import bisect
import random
from typing import List, Protocol

from repro.errors import ConfigError


class Popularity(Protocol):
    """Chooses which of ``n`` directories an operation targets."""

    n: int

    def pick(self, rng: random.Random, now: int) -> int:
        """Directory index for an operation issued at cycle ``now``."""
        ...


class UniformPopularity:
    """Every directory equally likely (Figure 4(a))."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigError("need at least one directory")
        self.n = n

    def pick(self, rng: random.Random, now: int) -> int:
        return rng.randrange(self.n)

    def __repr__(self) -> str:
        return f"UniformPopularity({self.n})"


class OscillatingPopularity:
    """Active set oscillates between ``n`` and ``n // shrink`` directories.

    §5: *"the number of directories accessed oscillates from the value
    represented on the x-axis to a sixteenth of that value.  We chose this
    benchmark to demonstrate the ability of CoreTime to rebalance
    objects."*

    The oscillation is a square wave with period ``period_cycles``.  With
    ``rotate=True`` the small active window also moves each period, so
    every contraction concentrates load on a *different* subset — a
    continuously rebalancing regime.
    """

    def __init__(self, n: int, period_cycles: int, shrink: int = 16,
                 rotate: bool = False) -> None:
        if n < 1:
            raise ConfigError("need at least one directory")
        if period_cycles < 2:
            raise ConfigError("period must be at least 2 cycles")
        if shrink < 1:
            raise ConfigError("shrink factor must be >= 1")
        self.n = n
        self.period_cycles = period_cycles
        self.shrink = shrink
        self.rotate = rotate
        self.small = max(1, n // shrink)

    def active_window(self, now: int) -> tuple:
        """(start, size) of the directory window active at ``now``."""
        phase = now // self.period_cycles
        if phase % 2 == 0:
            return 0, self.n
        if not self.rotate:
            return 0, self.small
        start = (int(phase // 2) * self.small) % self.n
        return start, self.small

    def pick(self, rng: random.Random, now: int) -> int:
        start, size = self.active_window(now)
        return (start + rng.randrange(size)) % self.n

    def __repr__(self) -> str:
        return (f"OscillatingPopularity({self.n}, period="
                f"{self.period_cycles}, shrink={self.shrink})")


class ZipfPopularity:
    """Zipf-distributed directory popularity (rank r has weight r^-s)."""

    def __init__(self, n: int, s: float = 1.0, seed: int = 0) -> None:
        if n < 1:
            raise ConfigError("need at least one directory")
        if s < 0:
            raise ConfigError("zipf exponent must be >= 0")
        self.n = n
        self.s = s
        # Shuffle ranks so hot directories are not address-adjacent.
        order = list(range(n))
        random.Random(seed).shuffle(order)
        self._order = order
        cdf: List[float] = []
        total = 0.0
        for rank in range(1, n + 1):
            total += rank ** -s
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def pick(self, rng: random.Random, now: int) -> int:
        point = rng.random() * self._total
        rank = bisect.bisect_left(self._cdf, point)
        if rank >= self.n:
            rank = self.n - 1
        return self._order[rank]

    def weight(self, index: int) -> float:
        """Selection probability of directory ``index``."""
        rank = self._order.index(index) + 1
        return (rank ** -self.s) / self._total

    def __repr__(self) -> str:
        return f"ZipfPopularity({self.n}, s={self.s})"


def make_popularity(kind: str, n: int, period_cycles: int = 1_000_000,
                    **kwargs) -> Popularity:
    """Factory keyed by the names benchmarks use."""
    if kind == "uniform":
        return UniformPopularity(n)
    if kind == "oscillating":
        return OscillatingPopularity(n, period_cycles, **kwargs)
    if kind == "zipf":
        return ZipfPopularity(n, **kwargs)
    raise ConfigError(f"unknown popularity kind {kind!r}")


def popularity_for_spec(kind: str, n: int, *, zipf_s: float = 1.0,
                        seed: int = 0, period_cycles: int = 1_000_000,
                        rotate: bool = False) -> Popularity:
    """The one seeded construction path workload specs resolve through.

    Every workload spec stores popularity as plain fields (``kind``,
    ``zipf_s``, ``seed``, and for the oscillating wave a period and
    rotate flag); this helper maps those fields onto a sampler so the
    seeded implementations live here once — dirlookup, the synthetic
    object workload, the web server and every scenario draw from the
    same distributions instead of re-deriving the keyword plumbing
    per workload.
    """
    if kind == "uniform":
        return UniformPopularity(n)
    if kind == "oscillating":
        return OscillatingPopularity(n, period_cycles, rotate=rotate)
    if kind == "zipf":
        return ZipfPopularity(n, s=zipf_s, seed=seed)
    raise ConfigError(f"unknown popularity kind {kind!r}")

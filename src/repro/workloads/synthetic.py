"""Generic object-operation workloads.

The directory benchmark is one instance of the pattern the paper cares
about: operations that scan a sizeable object.  :class:`ObjectOpsWorkload`
generates the same pattern over raw memory objects without the file-system
substrate, with extra knobs the ablation benchmarks need:

* a write fraction (read/write sharing → coherence invalidations),
* paired objects (operations touching object *i* then its partner — the
  §6.2 object-clustering scenario),
* per-object popularity (uniform or Zipf).

It is also the workload unit tests use: small, self-contained, no FAT
image to build.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.object_table import CtObject
from repro.cpu.machine import Machine
from repro.errors import ConfigError
from repro.sim.rng import make_rng
from repro.threads.program import (Acquire, Compute, CtEnd, CtStart,
                                   Release, Scan, Store)
from repro.threads.sync import SpinLock
from repro.workloads.popularity import Popularity, popularity_for_spec


@dataclass(frozen=True)
class ObjectOpsSpec:
    """Parameters for the generic object-operation workload."""

    n_objects: int = 32
    object_bytes: int = 8192
    think_cycles: int = 100
    #: Fraction of operations that write one line of the object.
    write_fraction: float = 0.0
    #: Probability that an operation is immediately followed by one on
    #: the object's partner (pair index ^ 1) — the clustering scenario.
    pair_probability: float = 0.0
    popularity: str = "uniform"
    zipf_s: float = 1.0
    with_locks: bool = True
    annotated: bool = True
    seed: int = 7
    #: Scan only this fraction of the object per op (1.0 = full scan).
    scan_fraction: float = 1.0
    #: Threads pinned per core (>1 keeps run queues non-empty, which is
    #: what exercises the time-sharing schedulers' preemption paths).
    threads_per_core: int = 1

    def validate(self) -> None:
        if self.n_objects < 1 or self.object_bytes < 1:
            raise ConfigError("need at least one object with one byte")
        if self.threads_per_core < 1:
            raise ConfigError("threads_per_core must be >= 1")
        for name in ("write_fraction", "pair_probability", "scan_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be within [0, 1]")

    def replace(self, **changes: object) -> "ObjectOpsSpec":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    @property
    def total_bytes(self) -> int:
        return self.n_objects * self.object_bytes


class ObjectOpsWorkload:
    """Allocates objects and builds per-core operation loops."""

    def __init__(self, machine: Machine, spec: ObjectOpsSpec,
                 popularity: Optional[Popularity] = None) -> None:
        spec.validate()
        self.machine = machine
        self.spec = spec
        space = machine.address_space
        self.objects: List[CtObject] = []
        self.locks: List[Optional[SpinLock]] = []
        for index in range(spec.n_objects):
            region = space.alloc(f"obj{index}", spec.object_bytes)
            cluster_key = (f"pair-{index // 2}"
                           if spec.pair_probability > 0 else None)
            obj = CtObject(f"obj{index}", region.base, spec.object_bytes,
                           read_only=spec.write_fraction == 0.0,
                           cluster_key=cluster_key)
            self.objects.append(obj)
            self.locks.append(
                SpinLock.allocate(space, f"obj{index}")
                if spec.with_locks else None)
        self.popularity = popularity or popularity_for_spec(
            spec.popularity, spec.n_objects,
            zipf_s=spec.zipf_s, seed=spec.seed)

    # ------------------------------------------------------------------

    def _one_op(self, index: int, rng) -> Iterator:
        spec = self.spec
        obj = self.objects[index]
        lock = self.locks[index]
        scan_bytes = max(1, int(spec.object_bytes * spec.scan_fraction))
        if spec.annotated:
            yield CtStart(obj)
        if lock is not None:
            yield Acquire(lock)
        yield Scan(obj.addr, scan_bytes, 2)
        if spec.write_fraction and rng.random() < spec.write_fraction:
            line = self.machine.spec.line_size
            offset = rng.randrange(max(1, scan_bytes // line)) * line
            yield Store(obj.addr + offset)
        if lock is not None:
            yield Release(lock)
        if spec.annotated:
            yield CtEnd()

    def make_program(self, core_id: int, lane: int = 0) -> Iterator:
        spec = self.spec
        # Lane 0 keeps the historical RNG label so single-thread-per-core
        # runs (every pre-existing workload) stay byte-identical.
        rng = (make_rng(spec.seed, "objops", core_id) if lane == 0
               else make_rng(spec.seed, "objops", core_id, lane))
        core = self.machine.cores[core_id]
        popularity = self.popularity
        think = Compute(spec.think_cycles) if spec.think_cycles else None

        def program() -> Iterator:
            while True:
                if think is not None:
                    yield think
                index = popularity.pick(rng, core.time)
                yield from self._one_op(index, rng)
                partner = index ^ 1
                if (spec.pair_probability and partner < spec.n_objects
                        and rng.random() < spec.pair_probability):
                    yield from self._one_op(partner, rng)

        return program()

    def spawn_all(self, simulator) -> list:
        if self.spec.threads_per_core == 1:
            return simulator.spawn_per_core(self.make_program, "objops")
        threads = []
        for lane in range(self.spec.threads_per_core):
            for core_id in range(self.machine.n_cores):
                name = (f"objops-{core_id}" if lane == 0
                        else f"objops-{core_id}.{lane}")
                threads.append(simulator.spawn(
                    self.make_program(core_id, lane), name,
                    core_id=core_id))
        return threads

"""A static web-server workload (the paper's motivating application).

§2 cites Veal & Foong [14]: directory-lookup-heavy request handling can
bottleneck a multicore web server.  This workload models one request end
to end, composing three object kinds with different sharing behaviour:

1. a **connection table** — small, read/write, touched by every request
   (the classic coherence hot spot);
2. a **directory lookup** — the paper's annotated linear search over the
   FAT image;
3. a **content read** — a streaming scan of the resolved file's data,
   read-only and Zipf-popular.

Each piece is a CoreTime object, so the O2 scheduler can pin the
connection table to one core (killing the invalidation storm), partition
directories, and spread content — all with the same mechanism.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, List

from repro.core.object_table import CtObject
from repro.cpu.machine import Machine
from repro.errors import ConfigError
from repro.fs.efsl import EfslFat
from repro.fs.image import FatFilesystem
from repro.sim.rng import make_rng
from repro.threads.program import (Acquire, Compute, CtEnd, CtStart,
                                   Release, Scan, Store)
from repro.threads.sync import SpinLock
from repro.workloads.popularity import popularity_for_spec


@dataclass(frozen=True)
class WebServerSpec:
    """Parameters of the simulated static web server."""

    n_dirs: int = 64
    files_per_dir: int = 125
    #: Bytes of file content streamed per request.
    content_bytes: int = 2048
    #: Size of the shared connection table.
    conn_table_bytes: int = 4096
    #: Zipf exponent for URL popularity.
    zipf_s: float = 1.0
    #: Protocol-parsing compute per request.
    parse_cycles: int = 150
    threads_per_core: int = 4
    seed: int = 11
    cluster_bytes: int = 512
    annotated: bool = True

    def validate(self) -> None:
        if self.n_dirs < 1 or self.files_per_dir < 1:
            raise ConfigError("need at least one directory and file")
        if self.content_bytes < 1 or self.conn_table_bytes < 1:
            raise ConfigError("content and connection table need bytes")

    def replace(self, **changes: object) -> "WebServerSpec":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


class WebServerWorkload:
    """Builds the server's data structures and per-core request loops."""

    def __init__(self, machine: Machine, spec: WebServerSpec) -> None:
        spec.validate()
        self.machine = machine
        self.spec = spec
        space = machine.address_space
        # The FAT image with the site's directory tree.
        fs = FatFilesystem.build_benchmark_image(
            spec.n_dirs, spec.files_per_dir,
            cluster_bytes=spec.cluster_bytes)
        self.efsl = EfslFat(machine, fs, region_name="webserver-image")
        # Shared connection table: one read/write object + lock.
        conn_region = space.alloc("conn-table", spec.conn_table_bytes)
        self.conn_table = CtObject("conn-table", conn_region.base,
                                   spec.conn_table_bytes, read_only=False)
        self.conn_lock = SpinLock.allocate(space, "conn-table")
        # Per-directory content blobs (a site's files, grouped by dir).
        self.content: List[CtObject] = []
        for index, directory in enumerate(self.efsl.directories):
            region = space.alloc(f"content{index}",
                                 spec.content_bytes * 8)
            self.content.append(CtObject(
                f"content:{directory.name}", region.base, region.size,
                read_only=True,
                cluster_key=f"site-{directory.name}"))
            # Directory and its content belong together (§6.2).
            directory.object.cluster_key = f"site-{directory.name}"
        self.popularity = popularity_for_spec(
            "zipf", spec.n_dirs, zipf_s=spec.zipf_s, seed=spec.seed)
        self.requests_served = 0

    # ------------------------------------------------------------------

    def _request_items(self, dir_index: int, file_index: int,
                       rng) -> Iterator:
        spec = self.spec
        directory = self.efsl.directories[dir_index]
        annotated = spec.annotated
        # 1. Accept/track the connection: a write into the shared table.
        if annotated:
            yield CtStart(self.conn_table)
        yield Acquire(self.conn_lock)
        slot = rng.randrange(max(1, spec.conn_table_bytes // 64)) * 64
        yield Store(self.conn_table.addr + slot)
        yield Release(self.conn_lock)
        if annotated:
            yield CtEnd()
        # 2. Parse the request.
        yield Compute(spec.parse_cycles)
        # 3. Resolve the path (the Figure 3 annotated lookup).
        if annotated:
            yield from self.efsl.search_items_by_index(directory,
                                                       file_index)
        else:
            yield from self.efsl.unannotated_search_items(directory,
                                                          file_index)
        # 4. Stream the content.
        content = self.content[dir_index]
        offset = (file_index * spec.content_bytes) % max(
            64, content.size - spec.content_bytes)
        if annotated:
            yield CtStart(content)
        yield Scan(content.addr + offset, spec.content_bytes, 1)
        if annotated:
            yield CtEnd()

    def make_program(self, core_id: int, lane: int = 0) -> Iterator:
        spec = self.spec
        rng = make_rng(spec.seed, "webserver", core_id, lane)
        popularity = self.popularity
        core = self.machine.cores[core_id]

        def program() -> Iterator:
            while True:
                dir_index = popularity.pick(rng, core.time)
                file_index = rng.randrange(spec.files_per_dir)
                yield from self._request_items(dir_index, file_index, rng)
                self.requests_served += 1

        return program()

    def spawn_all(self, simulator) -> list:
        threads = []
        for lane in range(self.spec.threads_per_core):
            for core_id in range(self.machine.n_cores):
                threads.append(simulator.spawn(
                    self.make_program(core_id, lane),
                    f"worker-{lane}-{core_id}", core_id=core_id))
        return threads

    def objects(self) -> List[CtObject]:
        return ([self.conn_table] + self.content
                + [d.object for d in self.efsl.directories])

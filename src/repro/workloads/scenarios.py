"""Named adversarial workload scenarios.

The paper's four workload shapes (dirlookup, webserver, synthetic,
trace) exercise steady-state regimes; real contended servers are
nastier.  This module is a scenario catalog in the spirit of the XNU
Clutch simulator's named scenarios — ``zipf_kv``, ``pipeline``,
``rcu_read_mostly``, ``diurnal_burst``, ``phase_shift``, ``cpu_storm``
— translated to the O2 world, each engineered to stress a specific
part of the runtime (cache pressure, coherence traffic, the monitor's
load assessment, the rebalancer's reaction time).

A scenario is a *seed-deterministic generator* that compiles down to
the existing :class:`~repro.workloads.synthetic.ObjectOpsSpec` /
:class:`~repro.workloads.synthetic.ObjectOpsWorkload` machinery:
:func:`compile_spec` returns the underlying ``ObjectOpsSpec`` and
:func:`build` returns a ready-to-spawn workload.  Some scenarios attach
a custom popularity process or override the per-thread program, but
every memory access still flows through the same engine/memory paths,
so the three-way kernel differential and the invariant checker apply to
every scenario unchanged.

The registry has the same shape as :mod:`repro.sched.registry` —
``register`` / ``resolve`` / ``names`` / ``fuzzable_names`` over frozen
:class:`ScenarioEntry` metadata, built-ins populated lazily on first
lookup (user registrations are never displaced).  Everything that
resolves a scenario by name — ``repro-sweep`` (workload kind
``"scenario"`` and the ``scenarios`` preset), ``bench --scenario``,
the verify fuzzer's scenario axis — goes through it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.rng import make_rng
from repro.threads.program import (Acquire, Compute, CtEnd, CtStart,
                                   Release, Scan, Store)
from repro.workloads.popularity import OscillatingPopularity
from repro.workloads.synthetic import ObjectOpsSpec, ObjectOpsWorkload


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario instantiation: a registry name plus scale knobs.

    This is the JSON-round-trippable workload spec sweep cells carry
    (workload kind ``"scenario"``).  Everything the run needs beyond
    these knobs is owned by the registered generator, so two hosts
    expanding the same spec build byte-identical workloads.
    """

    name: str = "zipf_kv"
    seed: int = 7
    #: Multiplier on the scenario's native object count (presets run at
    #: 1.0; raise it to push footprints further past the caches).
    scale: float = 1.0
    #: Override the scenario's native threads-per-core (0 = native).
    threads_per_core: int = 0

    def validate(self) -> None:
        resolve(self.name)  # unknown names raise, listing the registry
        if self.scale <= 0:
            raise ConfigError("scenario scale must be > 0")
        if self.threads_per_core < 0:
            raise ConfigError(
                "scenario threads_per_core must be >= 0 (0 = native)")

    def replace(self, **changes: object) -> "ScenarioSpec":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    @property
    def total_data_bytes(self) -> int:
        """Footprint of the compiled object set (bench x coordinate)."""
        return compile_spec(self).total_bytes


CompileFn = Callable[[ScenarioSpec], ObjectOpsSpec]
BuildFn = Callable[["object", ScenarioSpec], ObjectOpsWorkload]


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario: its generator plus report metadata."""

    name: str
    compile: CompileFn
    summary: str = ""
    #: The runtime axis the scenario is engineered to stress
    #: ("cache-pressure", "coherence", "monitor", "rebalancer", ...).
    stress: str = "general"
    fuzzable: bool = True
    #: Optional workload constructor; ``None`` means a plain
    #: ``ObjectOpsWorkload`` over the compiled spec.  Scenarios that
    #: attach a custom popularity process or override the per-thread
    #: program supply their own.
    build: Optional[BuildFn] = None


_REGISTRY: Dict[str, ScenarioEntry] = {}
_builtins_registered = False


def register(name: str, compile: CompileFn, *, summary: str = "",
             stress: str = "general", fuzzable: bool = True,
             build: Optional[BuildFn] = None,
             replace: bool = False) -> ScenarioEntry:
    """Register a scenario generator under ``name``.

    ``compile`` maps a :class:`ScenarioSpec` to the ``ObjectOpsSpec``
    the scenario runs over; ``build``, when given, constructs the
    workload itself (custom popularity / per-thread programs).
    Registering an existing name raises unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ConfigError("scenario name must be a non-empty string")
    if not callable(compile):
        raise ConfigError(f"scenario {name!r} compile must be callable")
    _ensure_builtins()
    if name in _REGISTRY and not replace:
        raise ConfigError(
            f"scenario {name!r} is already registered; "
            "pass replace=True to override")
    item = ScenarioEntry(name=name, compile=compile, summary=summary,
                         stress=stress, fuzzable=fuzzable, build=build)
    _REGISTRY[name] = item
    return item


def entry(name: str) -> ScenarioEntry:
    """The full registry entry for ``name`` (raises ConfigError)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; "
            f"choose from {sorted(_REGISTRY)}") from None


# ``resolve`` mirrors the scheduler registry's vocabulary; for
# scenarios the entry *is* the useful object, so they are synonyms.
resolve = entry


def names() -> Tuple[str, ...]:
    """Every registered scenario name, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def fuzzable_names() -> Tuple[str, ...]:
    """Names the property fuzzer draws its scenario axis from."""
    _ensure_builtins()
    return tuple(sorted(name for name, item in _REGISTRY.items()
                        if item.fuzzable))


def entries() -> List[ScenarioEntry]:
    """Every registry entry, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def compile_spec(spec: ScenarioSpec) -> ObjectOpsSpec:
    """The ``ObjectOpsSpec`` the named scenario runs over."""
    ops = entry(spec.name).compile(spec)
    ops.validate()
    return ops


def build(machine, spec: ScenarioSpec) -> ObjectOpsWorkload:
    """A ready-to-spawn workload for ``spec`` on ``machine``."""
    spec.validate()
    item = entry(spec.name)
    if item.build is not None:
        return item.build(machine, spec)
    return ObjectOpsWorkload(machine, compile_spec(spec))


# ---------------------------------------------------------------------------
# scaling helpers shared by the built-in generators
# ---------------------------------------------------------------------------

def _scaled(spec: ScenarioSpec, base: int) -> int:
    """``base`` objects scaled by the spec's multiplier (min 2)."""
    return max(2, round(base * spec.scale))


def _tpc(spec: ScenarioSpec, native: int) -> int:
    return spec.threads_per_core or native


# ---------------------------------------------------------------------------
# built-in scenarios
# ---------------------------------------------------------------------------
#
# Sizes target the CI tiny machine (2 chips x 2 cores; ~24 KiB of
# on-chip cache): native footprints run 16 KiB - 128 KiB so the hot set
# fits when placement concentrates it and misses when it doesn't —
# exactly the regime where object placement is supposed to matter.

def _compile_zipf_kv(spec: ScenarioSpec) -> ObjectOpsSpec:
    return ObjectOpsSpec(
        n_objects=_scaled(spec, 24), object_bytes=2048,
        think_cycles=40, write_fraction=0.1,
        popularity="zipf", zipf_s=1.1, with_locks=True,
        annotated=True, seed=spec.seed, scan_fraction=0.5,
        threads_per_core=_tpc(spec, 2))


def _compile_pipeline(spec: ScenarioSpec) -> ObjectOpsSpec:
    # One handoff object (and its lock) per stage; write_fraction > 0
    # keeps the buffers writable.
    return ObjectOpsSpec(
        n_objects=_scaled(spec, 4), object_bytes=4096,
        think_cycles=60, write_fraction=0.5,
        popularity="uniform", with_locks=True,
        annotated=True, seed=spec.seed, scan_fraction=0.25,
        threads_per_core=_tpc(spec, 2))


class PipelineWorkload(ObjectOpsWorkload):
    """Producer/consumer stages handing off through shared buffers.

    Each thread is assigned a stage (round-robin over cores and lanes);
    stage *k* drains buffer *k* and fills buffer *k+1*, so every buffer
    is written by one stage and read by the next — a steady stream of
    cross-core handoffs whose coherence cost depends entirely on where
    the two stages run.
    """

    def make_program(self, core_id: int, lane: int = 0) -> Iterator:
        spec = self.spec
        rng = make_rng(spec.seed, "scn-pipeline", core_id, lane)
        n_stages = spec.n_objects
        stage = (core_id + lane * self.machine.n_cores) % n_stages
        src, dst = self.objects[stage], self.objects[(stage + 1) % n_stages]
        src_lock = self.locks[stage]
        dst_lock = self.locks[(stage + 1) % n_stages]
        line = self.machine.spec.line_size
        scan_bytes = max(1, int(spec.object_bytes * spec.scan_fraction))
        n_slots = max(1, spec.object_bytes // line)
        think = Compute(spec.think_cycles) if spec.think_cycles else None

        def program() -> Iterator:
            while True:
                if think is not None:
                    yield think
                # Drain a batch from the upstream handoff buffer...
                yield CtStart(src)
                yield Acquire(src_lock)
                yield Scan(src.addr, scan_bytes, 2)
                yield Release(src_lock)
                yield CtEnd()
                # ...and publish one slot downstream.
                yield CtStart(dst)
                yield Acquire(dst_lock)
                yield Store(dst.addr + rng.randrange(n_slots) * line)
                yield Release(dst_lock)
                yield CtEnd()

        return program()


def _build_pipeline(machine, spec: ScenarioSpec) -> ObjectOpsWorkload:
    return PipelineWorkload(machine, compile_spec(spec))


def _compile_rcu(spec: ScenarioSpec) -> ObjectOpsSpec:
    # write_fraction here is the *single writer's* per-op publish
    # probability (see RcuReadMostlyWorkload); it also marks the
    # objects writable.
    return ObjectOpsSpec(
        n_objects=_scaled(spec, 6), object_bytes=1024,
        think_cycles=20, write_fraction=0.5,
        popularity="uniform", with_locks=False,
        annotated=True, seed=spec.seed, scan_fraction=1.0,
        threads_per_core=_tpc(spec, 2))


class RcuReadMostlyWorkload(ObjectOpsWorkload):
    """Read-dominated sharing with a lone writer (RCU-style).

    Every thread scans the shared structures lock-free; one designated
    writer (core 0, lane 0) occasionally publishes an update, which
    invalidates every reader's cached copy at once — the classic
    read-mostly invalidation storm.
    """

    def make_program(self, core_id: int, lane: int = 0) -> Iterator:
        spec = self.spec
        rng = make_rng(spec.seed, "scn-rcu", core_id, lane)
        core = self.machine.cores[core_id]
        popularity = self.popularity
        writer = core_id == 0 and lane == 0
        line = self.machine.spec.line_size
        scan_bytes = max(1, int(spec.object_bytes * spec.scan_fraction))
        n_lines = max(1, scan_bytes // line)
        think = Compute(spec.think_cycles) if spec.think_cycles else None

        def program() -> Iterator:
            while True:
                if think is not None:
                    yield think
                obj = self.objects[popularity.pick(rng, core.time)]
                yield CtStart(obj)
                yield Scan(obj.addr, scan_bytes, 2)
                if writer and rng.random() < spec.write_fraction:
                    yield Store(obj.addr + rng.randrange(n_lines) * line)
                yield CtEnd()

        return program()


def _build_rcu(machine, spec: ScenarioSpec) -> ObjectOpsWorkload:
    return RcuReadMostlyWorkload(machine, compile_spec(spec))


def _compile_diurnal(spec: ScenarioSpec) -> ObjectOpsSpec:
    return ObjectOpsSpec(
        n_objects=_scaled(spec, 12), object_bytes=2048,
        think_cycles=30, write_fraction=0.05,
        popularity="zipf", zipf_s=0.9, with_locks=True,
        annotated=True, seed=spec.seed, scan_fraction=0.5,
        threads_per_core=_tpc(spec, 2))


class DiurnalBurstWorkload(ObjectOpsWorkload):
    """Bursty arrival intensity: saturated bursts alternate with lulls.

    A square wave on simulated time switches every thread between a
    burst phase (native think time, cores saturated) and a quiet phase
    whose long think times leave cores mostly idle — arrival-rate
    whiplash that the monitor's idle-fraction assessment has to track
    without thrashing the placement.
    """

    PERIOD_CYCLES = 30_000
    QUIET_THINK_MULTIPLIER = 40

    def make_program(self, core_id: int, lane: int = 0) -> Iterator:
        spec = self.spec
        rng = make_rng(spec.seed, "scn-diurnal", core_id, lane)
        core = self.machine.cores[core_id]
        popularity = self.popularity
        period = self.PERIOD_CYCLES
        busy_think = max(1, spec.think_cycles)
        quiet_think = busy_think * self.QUIET_THINK_MULTIPLIER

        def program() -> Iterator:
            while True:
                burst = (core.time // period) % 2 == 0
                yield Compute(busy_think if burst else quiet_think)
                yield from self._one_op(popularity.pick(rng, core.time), rng)

        return program()


def _build_diurnal(machine, spec: ScenarioSpec) -> ObjectOpsWorkload:
    return DiurnalBurstWorkload(machine, compile_spec(spec))


#: Square-wave period of the phase_shift hot set, in cycles.  Several
#: rebalance epochs fit inside each phase at benchmark monitor
#: intervals, so a scheduler that reacts gets to profit before the hot
#: set moves again.
PHASE_SHIFT_PERIOD = 40_000
PHASE_SHIFT_SHRINK = 4


def _compile_phase_shift(spec: ScenarioSpec) -> ObjectOpsSpec:
    # The uniform popularity below is replaced at build time by a
    # rotating oscillating window — kept here so the compiled spec
    # still describes the object set for sizing and reports.
    return ObjectOpsSpec(
        n_objects=_scaled(spec, 16), object_bytes=2048,
        think_cycles=25, write_fraction=0.1,
        popularity="uniform", with_locks=True,
        annotated=True, seed=spec.seed, scan_fraction=0.5,
        threads_per_core=_tpc(spec, 2))


def _build_phase_shift(machine, spec: ScenarioSpec) -> ObjectOpsWorkload:
    ops = compile_spec(spec)
    popularity = OscillatingPopularity(
        ops.n_objects, period_cycles=PHASE_SHIFT_PERIOD,
        shrink=PHASE_SHIFT_SHRINK, rotate=True)
    return ObjectOpsWorkload(machine, ops, popularity=popularity)


def _compile_cpu_storm(spec: ScenarioSpec) -> ObjectOpsSpec:
    return ObjectOpsSpec(
        n_objects=_scaled(spec, 32), object_bytes=4096,
        think_cycles=150, write_fraction=0.02,
        popularity="uniform", with_locks=False,
        annotated=True, seed=spec.seed, scan_fraction=0.25,
        threads_per_core=_tpc(spec, 4))


def _ensure_builtins() -> None:
    """Populate the built-in scenarios once, on first registry use.

    Lazy for the same reason as the scheduler registry: user
    registrations made before first lookup are never displaced
    (built-ins skip taken names).
    """
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True

    builtins = (
        ScenarioEntry(
            "zipf_kv", _compile_zipf_kv,
            summary="zipfian key-value store: hot keys cacheable, tail "
                    "spills, writes under locks",
            stress="cache-pressure"),
        ScenarioEntry(
            "pipeline", _compile_pipeline,
            summary="producer/consumer stages handing off through "
                    "shared ring buffers",
            stress="coherence",
            build=_build_pipeline),
        ScenarioEntry(
            "rcu_read_mostly", _compile_rcu,
            summary="lock-free read-mostly sharing; a lone writer "
                    "triggers invalidation storms",
            stress="coherence",
            build=_build_rcu),
        ScenarioEntry(
            "diurnal_burst", _compile_diurnal,
            summary="square-wave arrival intensity: saturated bursts "
                    "alternating with idle lulls",
            stress="monitor",
            build=_build_diurnal),
        ScenarioEntry(
            "phase_shift", _compile_phase_shift,
            summary="hot set contracts and migrates mid-run; stresses "
                    "rebalancer reaction time",
            stress="rebalancer",
            build=_build_phase_shift),
        ScenarioEntry(
            "cpu_storm", _compile_cpu_storm,
            summary="oversubscribed compute over a cold uniform "
                    "footprint far past the caches",
            stress="preemption"),
    )
    for item in builtins:
        if item.name not in _REGISTRY:
            _REGISTRY[item.name] = item

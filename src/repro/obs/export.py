"""Exporters: Chrome trace-event JSON, JSONL dumps, ASCII timelines.

The Chrome trace loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``:

* one *process* per simulator run (streams are split on
  :class:`~repro.obs.events.RunMarker`), named after the scheduler;
* one *track* (thread row) per simulated core;
* completed operations as ``X`` (complete) slices with their duration;
* migrations as flow arrows (``s``/``f`` pairs) from the departing core's
  track to the arriving one, plus instant markers;
* scheduler-level events (assignments, rebalance rounds) on a dedicated
  ``scheduler`` track.

Timestamps are simulated *cycles* reported as microseconds (1 cycle =
1 us in the UI); relative durations — the thing a trace viewer is for —
are exact.
"""

from __future__ import annotations

import gzip
import io
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO

from repro.obs.events import (CacheEvicted, CacheInvalidated, Event,
                              LockContended, MigrationStarted,
                              ObjectAssigned, ObjectMoved,
                              OperationFinished, RebalanceRound, RunMarker,
                              ThreadArrived, ThreadFinished, ThreadSpawned)

#: ``tid`` of the per-process scheduler track (cores use their own ids).
SCHEDULER_TRACK = 10_000

#: Version of the JSONL event-stream schema.  Bump when an event gains,
#: loses or renames a field, or when a new event kind is added (older
#: analyzers refuse unknown kinds); the offline analyzer
#: (:mod:`repro.obs.profile`) refuses streams newer than it understands.
#: Version 1 streams (PR 1) had no meta line and no attribution fields;
#: version 2 added the attribution fields; version 3 added the
#: verification-layer kinds (``fault``, ``invariant``); version 4 added
#: the sweep-orchestration kinds (``sweep_start``, ``sweep_end``,
#: ``sweep_fail``); version 5 added the distributed-sweep kinds
#: (``worker_join``, ``worker_lost``, ``lease_expired``).
SCHEMA_VERSION = 5


class _DeterministicGzipText(io.TextIOWrapper):
    """Text writer over a gzip member with a pinned (zero) mtime.

    ``gzip.open(..., "wt")`` stamps the current time into the member
    header, which would break the byte-reproducibility contract of
    :func:`jsonl_meta_line`; this wrapper pins ``mtime=0`` and closes
    the underlying file (``GzipFile`` deliberately leaves it open).
    """

    def __init__(self, path: str) -> None:
        self._raw_file = open(path, "wb")
        gz = gzip.GzipFile(filename="", fileobj=self._raw_file,
                           mode="wb", mtime=0)
        super().__init__(gz, encoding="utf-8", newline="")

    def close(self) -> None:
        try:
            super().close()          # flush text + gzip trailer
        finally:
            if not self._raw_file.closed:
                self._raw_file.close()


def open_text(path: str, mode: str = "r") -> TextIO:
    """Open ``path`` as text; ``.gz`` suffixes gzip transparently.

    Reading accepts multi-member archives (``cat a.gz b.gz`` of two
    shards is a valid recording); writing produces deterministic bytes
    (member mtime pinned to 0) so gzip recordings stay reproducible.
    Only ``"r"`` and ``"w"`` modes are supported for gzip targets.
    """
    if not str(path).endswith(".gz"):
        return open(path, mode, encoding="utf-8")
    if "r" in mode:
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return _DeterministicGzipText(path)


def chrome_trace(events: Sequence[Event],
                 default_label: str = "run") -> Dict[str, Any]:
    """Build a Chrome trace-event document from an event stream."""
    trace_events: List[Dict[str, Any]] = []
    processes: List[str] = []
    tracks_seen = set()
    flow_id = 0

    def ensure_process(label: str) -> int:
        pid = len(processes)
        processes.append(label)
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"{pid}:{label}"}})
        return pid

    def ensure_track(pid: int, tid: int) -> None:
        if (pid, tid) in tracks_seen:
            return
        tracks_seen.add((pid, tid))
        name = "scheduler" if tid == SCHEDULER_TRACK else f"core {tid}"
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": name}})

    pid: Optional[int] = None
    for event in events:
        etype = type(event)
        if etype is RunMarker:
            pid = ensure_process(event.label)
            continue
        if pid is None:
            pid = ensure_process(default_label)
        if etype is OperationFinished:
            ensure_track(pid, event.core)
            trace_events.append({
                "ph": "X", "name": event.obj, "cat": "op",
                "ts": event.ts - event.cycles, "dur": event.cycles,
                "pid": pid, "tid": event.core,
                "args": {"thread": event.thread}})
        elif etype is MigrationStarted:
            ensure_track(pid, event.core)
            ensure_track(pid, event.target)
            flow_id += 1
            common = {"cat": "migration", "name": "migrate",
                      "id": flow_id, "pid": pid}
            trace_events.append(dict(common, ph="s", ts=event.ts,
                                     tid=event.core,
                                     args={"thread": event.thread,
                                           "to": event.target}))
            trace_events.append(dict(common, ph="f", bp="e",
                                     ts=event.arrive_ts, tid=event.target,
                                     args={"thread": event.thread,
                                           "from": event.core}))
            trace_events.append({
                "ph": "i", "name": f"out:{event.thread}",
                "cat": "migration", "s": "t", "ts": event.ts, "pid": pid,
                "tid": event.core, "args": {"to": event.target}})
        elif etype in (ThreadSpawned, ThreadFinished, ThreadArrived,
                       LockContended):
            ensure_track(pid, event.core)
            trace_events.append({
                "ph": "i", "name": f"{event.kind}:{event.thread}",
                "cat": "thread", "s": "t", "ts": event.ts, "pid": pid,
                "tid": event.core, "args": {}})
        elif etype in (ObjectAssigned, ObjectMoved, RebalanceRound):
            ensure_track(pid, SCHEDULER_TRACK)
            args = {key: value for key, value in event.as_dict().items()
                    if key not in ("ts",)}
            trace_events.append({
                "ph": "i", "name": event.kind, "cat": "scheduler",
                "s": "p", "ts": event.ts, "pid": pid,
                "tid": SCHEDULER_TRACK, "args": args})
        elif etype in (CacheEvicted, CacheInvalidated):
            ensure_track(pid, event.core)
            trace_events.append({
                "ph": "i", "name": event.kind, "cat": "memory", "s": "t",
                "ts": event.ts, "pid": pid, "tid": event.core,
                "args": {key: value
                         for key, value in event.as_dict().items()
                         if key not in ("ts", "core", "kind")}})
        # Unknown event types are simply not exported.
    # Stable per-track time order (metadata rows lead each track).
    trace_events.sort(key=lambda entry: (
        entry["pid"], 0 if entry["ph"] == "M" else 1,
        entry["tid"] if entry["ph"] != "M" else -1,
        entry.get("ts", 0)))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs",
                      "runs": processes,
                      "time_unit": "1 simulated cycle = 1us"},
    }


def write_chrome_trace(path: str, events: Sequence[Event],
                       default_label: str = "run") -> str:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    document = chrome_trace(events, default_label)
    with open_text(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def jsonl_meta_line() -> str:
    """The header record every JSONL dump starts with.

    Deterministic on purpose (no timestamps, no hostnames): two runs with
    the same seed must produce byte-identical streams.
    """
    return json.dumps({"kind": "meta", "schema_version": SCHEMA_VERSION,
                       "source": "repro.obs"},
                      separators=(",", ":"), sort_keys=True)


def events_to_jsonl(events: Iterable[Event]) -> str:
    """One compact JSON object per line, in stream order.

    The first line is a ``meta`` record carrying :data:`SCHEMA_VERSION`;
    every following line is one event's :meth:`~Event.as_dict` form.
    """
    lines = [jsonl_meta_line()]
    lines.extend(
        json.dumps(event.as_dict(), separators=(",", ":"), sort_keys=True)
        for event in events)
    return "\n".join(lines)


def write_jsonl(path: str, events: Iterable[Event]) -> str:
    """Write a JSONL recording; ``.jsonl.gz`` paths are gzipped.

    Streams one event at a time (``events`` may be a generator of any
    length) and produces bytes identical to ``events_to_jsonl`` plus a
    trailing newline.
    """
    with open_text(path, "w") as handle:
        handle.write(jsonl_meta_line() + "\n")
        for event in events:
            handle.write(json.dumps(event.as_dict(),
                                    separators=(",", ":"),
                                    sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# ASCII timeline
# ---------------------------------------------------------------------------

#: Density ramp for operations completed per time bucket.
_RAMP = " .:-=+*#@"


def ascii_timeline(events: Sequence[Event], n_cores: Optional[int] = None,
                   width: int = 72) -> str:
    """Per-core activity strip chart for terminals.

    Each column is a time bucket; the glyph encodes how many operations
    finished on that core in the bucket, and ``M`` flags a bucket where
    the core handed a thread away (migration out dominates the glyph so
    scheduler activity stands out).
    """
    ops = [e for e in events if type(e) is OperationFinished]
    migrations = [e for e in events if type(e) is MigrationStarted]
    if not ops and not migrations:
        return "(no operations recorded)"
    horizon = max(e.ts for e in ops + migrations)
    if n_cores is None:
        n_cores = 1 + max(e.core for e in ops + migrations)
    width = max(8, width)
    bucket = max(1, -(-horizon // width))          # ceil division
    op_counts = [[0] * width for _ in range(n_cores)]
    migrated = [[False] * width for _ in range(n_cores)]
    for event in ops:
        if event.core < n_cores:
            op_counts[event.core][min(width - 1, event.ts // bucket)] += 1
    for event in migrations:
        if event.core < n_cores:
            migrated[event.core][min(width - 1, event.ts // bucket)] = True
    peak = max((max(row) for row in op_counts), default=0)
    lines = [f"ops/bucket timeline  (bucket = {bucket:,} cycles, "
             f"peak = {peak} ops)"]
    for core_id in range(n_cores):
        row = []
        for index in range(width):
            if migrated[core_id][index]:
                row.append("M")
            elif peak:
                level = op_counts[core_id][index] * (len(_RAMP) - 1)
                row.append(_RAMP[-(-level // peak) if level else 0])
            else:
                row.append(" ")
        lines.append(f"core {core_id:>3} |{''.join(row)}|")
    lines.append(f"         0{'cycles'.center(width - 1)}{horizon:,}")
    return "\n".join(lines)

"""The flight recorder: a bounded ring of the most recent events.

Always-on (when observability is attached) and cheap — recording is one
``deque.append`` onto a ``maxlen`` ring, so it can run under every test
and benchmark.  When the engine dies with a
:class:`~repro.errors.SimulationError` (deadlock, invalid scheduler
decision, runaway program) the ring holds the last moments of the run,
which is usually exactly what is needed to see *why*.

The engine dumps the ring automatically on a crashed
:meth:`~repro.sim.engine.Simulator.run` via
:meth:`~repro.obs.Observability.on_crash`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, TextIO

from repro.obs.events import Event


class FlightRecorder:
    """Ring buffer of the last ``capacity`` events."""

    __slots__ = ("capacity", "_ring", "recorded", "dumps")

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = capacity
        self._ring: Deque[Event] = deque(maxlen=capacity)
        #: Total events ever recorded (>= len(ring) once it wraps).
        self.recorded = 0
        #: Times the ring was dumped (tests assert crash paths fire once).
        self.dumps = 0

    def record(self, event: Event) -> None:
        self._ring.append(event)
        self.recorded += 1

    __call__ = record

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[Event]:
        """Snapshot of the ring, oldest first."""
        return list(self._ring)

    def tail(self, limit: int) -> List[dict]:
        """Primitive-dict form of the last ``limit`` events, oldest first.

        This is what :class:`~repro.verify.invariants.InvariantViolation`
        embeds: dicts (not live events) so the exception can outlive the
        simulator, and at most ``limit`` of them so a violation raised
        from a big ring stays a reasonably sized object.
        """
        if limit <= 0:
            return []
        ring = self._ring
        start = max(0, len(ring) - limit)
        return [event.as_dict() for event in list(ring)[start:]]

    def clear(self) -> None:
        self._ring.clear()

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------

    def dump_text(self, reason: Optional[str] = None) -> str:
        """Human-readable dump of the ring, oldest first."""
        header = [f"=== flight recorder: last {len(self._ring)} of "
                  f"{self.recorded} events ==="]
        if reason:
            header.append(f"reason: {reason}")
        lines = header
        for event in self._ring:
            data = event.as_dict()
            ts = data.pop("ts")
            kind = data.pop("kind")
            detail = " ".join(f"{key}={value}"
                              for key, value in data.items())
            lines.append(f"[{ts:>12}] {kind:<10} {detail}")
        self.dumps += 1
        return "\n".join(lines)

    def dump(self, stream: TextIO, reason: Optional[str] = None) -> None:
        stream.write(self.dump_text(reason) + "\n")

    def dump_to_file(self, path: str,
                     reason: Optional[str] = None) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            self.dump(handle, reason)
        return path

    def __repr__(self) -> str:
        return (f"FlightRecorder({len(self._ring)}/{self.capacity}, "
                f"{self.recorded} recorded)")

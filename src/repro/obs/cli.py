"""``repro-analyze``: offline analysis CLI over recorded event streams.

Record a run first (any experiment accepts the flags)::

    python -m repro.bench fig2 --events-out fig2.events.jsonl \
        --metrics-out fig2.metrics.json

then explain it::

    repro-analyze report fig2.events.jsonl        # attribution & co
    repro-analyze folded fig2.events.jsonl -o fig2.folded
    repro-analyze timeline fig2.events.jsonl
    repro-analyze diff base.events.jsonl cand.events.jsonl

``report`` prints per-object attribution, per-core time breakdowns, the
migration matrix, the lock-contention table and cache-occupancy
timelines; ``diff`` reports per-metric deltas with confidence intervals
so scheduler A/Bs and bench-regression gates are one command.  Also
runnable as ``python -m repro.obs.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ProfileError
from repro.obs.export import ascii_timeline
from repro.obs.profile import (Run, diff_metrics, diff_streams,
                               folded_stacks, load_jsonl, render_diff,
                               render_report, split_runs)


def _load_runs(path: str, run_filter: Optional[str]) -> List[Run]:
    """Parse ``path`` and return its runs, optionally filtered.

    ``run_filter`` selects by label, or by index when it is an integer.
    """
    runs = split_runs(load_jsonl(path).events)
    if not runs:
        raise ProfileError(f"{path}: stream contains no events")
    if run_filter is None:
        return runs
    try:
        index = int(run_filter)
    except ValueError:
        selected = [run for run in runs if run.label == run_filter]
        if not selected:
            raise ProfileError(
                f"{path}: no run labelled {run_filter!r}; "
                f"stream has {[run.label for run in runs]}")
        return selected
    if not 0 <= index < len(runs):
        raise ProfileError(
            f"{path}: run index {index} out of range (stream has "
            f"{len(runs)} runs)")
    return [runs[index]]


def _merged_events(runs: List[Run]) -> List:
    events: List = []
    for run in runs:
        events.extend(run.events)
    return events


def _write_or_print(text: str, out: Optional[str]) -> None:
    if out is None:
        print(text)
    else:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {out}")


def _cmd_report(args) -> int:
    runs = _load_runs(args.events, args.run)
    parts = [render_report(run, top=args.top, width=args.width)
             for run in runs]
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        rows = [f"  {name:<44} {value}"
                for name, value in sorted(snapshot.items())
                if isinstance(value, (int, float))]
        if rows:
            parts.append("Metrics snapshot (scalars)\n" + "\n".join(rows))
    _write_or_print("\n\n".join(parts), args.out)
    return 0


def _cmd_diff(args) -> int:
    base = _merged_events(_load_runs(args.baseline, args.run))
    cand = _merged_events(_load_runs(args.candidate, args.run))
    deltas = diff_streams(base, cand)
    parts = [f"baseline:  {args.baseline}",
             f"candidate: {args.candidate}",
             "",
             render_diff(deltas)]
    if args.metrics_baseline and args.metrics_candidate:
        with open(args.metrics_baseline, "r", encoding="utf-8") as handle:
            mbase = json.load(handle)
        with open(args.metrics_candidate, "r", encoding="utf-8") as handle:
            mcand = json.load(handle)
        parts.extend(["", "Metrics snapshots:",
                      render_diff(diff_metrics(mbase, mcand))])
    _write_or_print("\n".join(parts), args.out)
    return 0


def _cmd_folded(args) -> int:
    lines: List[str] = []
    for run in _load_runs(args.events, args.run):
        lines.extend(folded_stacks(run.events, label=run.label))
    if not lines:
        print("(no attributable cycles in stream)", file=sys.stderr)
        return 1
    _write_or_print("\n".join(lines), args.out)
    return 0


def _cmd_timeline(args) -> int:
    for run in _load_runs(args.events, args.run):
        print(f"=== run: {run.label} ===")
        print(ascii_timeline(run.events, width=args.width))
        print()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Offline performance attribution over JSONL event "
                    "streams recorded by repro.obs.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="per-object attribution, per-core breakdown, "
                       "migration matrix, lock table, occupancy timeline")
    report.add_argument("events", help="events JSONL path")
    report.add_argument("--metrics", metavar="PATH", default=None,
                        help="metrics snapshot JSON to append (scalars)")
    report.add_argument("--top", type=int, default=10,
                        help="rows in top-N tables (default 10)")
    report.add_argument("--width", type=int, default=72,
                        help="timeline width in columns (default 72)")
    report.add_argument("--run", default=None,
                        help="restrict to one run (label or index)")
    report.add_argument("-o", "--out", default=None,
                        help="write the report to a file instead of stdout")
    report.set_defaults(func=_cmd_report)

    diff = sub.add_parser(
        "diff", help="per-metric deltas between two recordings, with "
                     "confidence intervals")
    diff.add_argument("baseline", help="baseline events JSONL")
    diff.add_argument("candidate", help="candidate events JSONL")
    diff.add_argument("--metrics-baseline", metavar="PATH", default=None,
                      help="baseline metrics snapshot JSON")
    diff.add_argument("--metrics-candidate", metavar="PATH", default=None,
                      help="candidate metrics snapshot JSON")
    diff.add_argument("--run", default=None,
                      help="compare only this run from each stream "
                           "(label or index)")
    diff.add_argument("-o", "--out", default=None,
                      help="write the diff to a file instead of stdout")
    diff.set_defaults(func=_cmd_diff)

    folded = sub.add_parser(
        "folded", help="folded-stack output (workload;object;phase "
                       "cycles) for speedscope / flamegraph.pl")
    folded.add_argument("events", help="events JSONL path")
    folded.add_argument("--run", default=None,
                        help="restrict to one run (label or index)")
    folded.add_argument("-o", "--out", default=None,
                        help="write folded stacks to a file")
    folded.set_defaults(func=_cmd_folded)

    timeline = sub.add_parser(
        "timeline", help="per-core ops/bucket ASCII timeline")
    timeline.add_argument("events", help="events JSONL path")
    timeline.add_argument("--width", type=int, default=72)
    timeline.add_argument("--run", default=None,
                          help="restrict to one run (label or index)")
    timeline.set_defaults(func=_cmd_timeline)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ProfileError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head & co; exiting quietly is the contract.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""``repro-analyze``: offline analysis CLI over recorded event streams.

Record a run first (any experiment accepts the flags)::

    python -m repro.bench fig2 --events-out fig2.events.jsonl \
        --metrics-out fig2.metrics.json

then explain it::

    repro-analyze report fig2.events.jsonl        # attribution & co
    repro-analyze report huge.events.jsonl.gz --stream   # out-of-core
    repro-analyze folded fig2.events.jsonl -o fig2.folded
    repro-analyze timeline fig2.events.jsonl
    repro-analyze diff base.events.jsonl cand.events.jsonl

``report`` prints per-object attribution, per-core time breakdowns, the
migration matrix, the lock-contention table and cache-occupancy
timelines; ``--stream`` produces the same report in one constant-memory
pass.  ``diff`` reports per-metric deltas with confidence intervals so
scheduler A/Bs and bench-regression gates are one command.

Fleet-scale analysis (:mod:`repro.obs.stream`)::

    repro-analyze profile shard0.events.jsonl.gz -o shard0.profile.json
    repro-analyze merge shards/*.profile.json -o fleet.profile.json
    repro-analyze tail --connect HOST:PORT       # live sweep attribution
    repro-analyze synth -o big.events.jsonl.gz --events 2500000

Also runnable as ``python -m repro.obs.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.errors import ProfileError, ReproError
from repro.obs.export import ascii_timeline, open_text, write_jsonl
from repro.obs.profile import (EventDecoder, Run, diff_metrics,
                               diff_streams, folded_stacks, load_jsonl,
                               render_diff, render_report, split_runs)
from repro.obs.stream import (Profile, RunProfile, StreamProfiler,
                              load_profile, merge_profiles, synthesize)


def _load_runs(path: str, run_filter: Optional[str]) -> List[Run]:
    """Parse ``path`` and return its runs, optionally filtered.

    ``run_filter`` selects by label, or by index when it is an integer.
    """
    runs = split_runs(load_jsonl(path).events)
    if not runs:
        raise ProfileError(f"{path}: stream contains no events")
    if run_filter is None:
        return runs
    try:
        index = int(run_filter)
    except ValueError:
        selected = [run for run in runs if run.label == run_filter]
        if not selected:
            raise ProfileError(
                f"{path}: no run labelled {run_filter!r}; "
                f"stream has {[run.label for run in runs]}")
        return selected
    if not 0 <= index < len(runs):
        raise ProfileError(
            f"{path}: run index {index} out of range (stream has "
            f"{len(runs)} runs)")
    return [runs[index]]


def _merged_events(runs: List[Run]) -> List:
    events: List = []
    for run in runs:
        events.extend(run.events)
    return events


def _write_or_print(text: str, out: Optional[str]) -> None:
    if out is None:
        print(text)
    else:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {out}")


def _apply_rss_limit(max_rss_mb: Optional[int]) -> None:
    """Hard-cap the address space before any events are read.

    Turns the out-of-core claim into an enforced contract: if a
    streaming pass buffered the recording, the allocation would fail
    instead of silently succeeding on a big machine.
    """
    if max_rss_mb is None:
        return
    if max_rss_mb <= 0:
        raise ProfileError(f"--max-rss-mb must be positive, got {max_rss_mb}")
    try:
        import resource
    except ImportError:                              # non-POSIX platform
        raise ProfileError(
            "--max-rss-mb requires the POSIX resource module")
    limit = max_rss_mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))


def _select_sections(profile: Profile, run_filter: Optional[str],
                     path: str) -> List[RunProfile]:
    """Mirror of :func:`_load_runs` filtering, over profile sections."""
    sections = profile.sections
    if run_filter is None:
        return sections
    try:
        index = int(run_filter)
    except ValueError:
        selected = [section for section in sections
                    if section.display_label == run_filter]
        if not selected:
            raise ProfileError(
                f"{path}: no run labelled {run_filter!r}; stream has "
                f"{[section.display_label for section in sections]}")
        return selected
    if not 0 <= index < len(sections):
        raise ProfileError(
            f"{path}: run index {index} out of range (stream has "
            f"{len(sections)} runs)")
    return [sections[index]]


def _stream_report_parts(args) -> List[str]:
    """One rendered report per selected run, in a single streaming pass."""
    profiler = StreamProfiler()
    profiler.feed_path(args.events)
    if profiler.events_seen == 0:
        raise ProfileError(f"{args.events}: stream contains no events")
    sections = _select_sections(profiler.profile, args.run, args.events)
    return [section.render(top=args.top, width=args.width)
            for section in sections]


def _cmd_report(args) -> int:
    _apply_rss_limit(args.max_rss_mb)
    if args.stream:
        parts = _stream_report_parts(args)
    else:
        runs = _load_runs(args.events, args.run)
        parts = [render_report(run, top=args.top, width=args.width)
                 for run in runs]
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        rows = [f"  {name:<44} {value}"
                for name, value in sorted(snapshot.items())
                if isinstance(value, (int, float))]
        if rows:
            parts.append("Metrics snapshot (scalars)\n" + "\n".join(rows))
    _write_or_print("\n\n".join(parts), args.out)
    return 0


def _cmd_diff(args) -> int:
    base = _merged_events(_load_runs(args.baseline, args.run))
    cand = _merged_events(_load_runs(args.candidate, args.run))
    deltas = diff_streams(base, cand)
    parts = [f"baseline:  {args.baseline}",
             f"candidate: {args.candidate}",
             "",
             render_diff(deltas)]
    if args.metrics_baseline and args.metrics_candidate:
        with open(args.metrics_baseline, "r", encoding="utf-8") as handle:
            mbase = json.load(handle)
        with open(args.metrics_candidate, "r", encoding="utf-8") as handle:
            mcand = json.load(handle)
        parts.extend(["", "Metrics snapshots:",
                      render_diff(diff_metrics(mbase, mcand))])
    _write_or_print("\n".join(parts), args.out)
    return 0


def _cmd_folded(args) -> int:
    lines: List[str] = []
    for run in _load_runs(args.events, args.run):
        lines.extend(folded_stacks(run.events, label=run.label))
    if not lines:
        print("(no attributable cycles in stream)", file=sys.stderr)
        return 1
    _write_or_print("\n".join(lines), args.out)
    return 0


def _cmd_timeline(args) -> int:
    for run in _load_runs(args.events, args.run):
        print(f"=== run: {run.label} ===")
        print(ascii_timeline(run.events, width=args.width))
        print()
    return 0


def _cmd_profile(args) -> int:
    _apply_rss_limit(args.max_rss_mb)
    profiler = StreamProfiler().feed_path(args.events)
    if profiler.events_seen == 0:
        raise ProfileError(f"{args.events}: stream contains no events")
    with open_text(args.out, "w") as handle:
        handle.write(profiler.profile.to_json() + "\n")
    print(f"wrote {args.out} ({profiler.events_seen:,} events, "
          f"{len(profiler.profile.sections)} run(s))")
    return 0


def _cmd_merge(args) -> int:
    merged = merge_profiles([load_profile(path) for path in args.profiles])
    wrote = False
    if args.out is not None:
        with open_text(args.out, "w") as handle:
            handle.write(merged.to_json() + "\n")
        print(f"wrote {args.out} ({len(args.profiles)} shard(s), "
              f"{merged.total_events:,} events)")
        wrote = True
    if args.report or not wrote:
        _write_or_print(merged.render(top=args.top, width=args.width), None)
    return 0


def _cmd_tail(args) -> int:
    # Lazy: the analyzer works without the sweep layer installed wiring.
    from repro.sweep.dist.transport import connect

    profiler = StreamProfiler()
    decoder = EventDecoder(source=args.connect)
    channel = connect(args.connect)
    try:
        channel.send({"type": "watch"})
        last_render = time.monotonic()
        while True:
            frame = channel.recv()
            if frame is None or frame.get("type") == "drain":
                break
            kind = frame.get("type")
            if kind == "meta":
                decoder.decode(
                    {"kind": "meta",
                     "schema_version": frame.get("schema_version")},
                    where="watch meta")
            elif kind == "event":
                event = decoder.decode(
                    frame.get("event", {}),
                    where=f"frame {profiler.events_seen + 1}")
                if event is not None:
                    profiler.feed(event)
            else:
                continue                 # future frame kinds: skip
            if args.max_events and profiler.events_seen >= args.max_events:
                break
            now = time.monotonic()
            if (args.interval > 0 and profiler.events_seen
                    and now - last_render >= args.interval):
                print(profiler.render(top=args.top, width=args.width))
                print(flush=True)
                last_render = now
    finally:
        channel.close()
    if profiler.events_seen == 0:
        print("(watch feed closed before any events)", file=sys.stderr)
        return 1
    _write_or_print(profiler.render(top=args.top, width=args.width),
                    args.out)
    return 0


def _cmd_synth(args) -> int:
    write_jsonl(args.out,
                synthesize(args.events, seed=args.seed, label=args.label,
                           n_cores=args.cores, n_objects=args.objects,
                           n_threads=args.threads))
    print(f"wrote {args.out} ({args.events:,} events)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Offline performance attribution over JSONL event "
                    "streams recorded by repro.obs.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="per-object attribution, per-core breakdown, "
                       "migration matrix, lock table, occupancy timeline")
    report.add_argument("events", help="events JSONL path")
    report.add_argument("--metrics", metavar="PATH", default=None,
                        help="metrics snapshot JSON to append (scalars)")
    report.add_argument("--top", type=int, default=10,
                        help="rows in top-N tables (default 10)")
    report.add_argument("--width", type=int, default=72,
                        help="timeline width in columns (default 72)")
    report.add_argument("--run", default=None,
                        help="restrict to one run (label or index)")
    report.add_argument("--stream", action="store_true",
                        help="single-pass constant-memory ingest; output "
                             "is byte-identical to the batch path (runs "
                             "sharing a label fold into one section)")
    report.add_argument("--max-rss-mb", type=int, default=None,
                        metavar="MB",
                        help="hard address-space cap applied before "
                             "reading anything (POSIX only; proves the "
                             "streaming path is out-of-core)")
    report.add_argument("-o", "--out", default=None,
                        help="write the report to a file instead of stdout")
    report.set_defaults(func=_cmd_report)

    diff = sub.add_parser(
        "diff", help="per-metric deltas between two recordings, with "
                     "confidence intervals")
    diff.add_argument("baseline", help="baseline events JSONL")
    diff.add_argument("candidate", help="candidate events JSONL")
    diff.add_argument("--metrics-baseline", metavar="PATH", default=None,
                      help="baseline metrics snapshot JSON")
    diff.add_argument("--metrics-candidate", metavar="PATH", default=None,
                      help="candidate metrics snapshot JSON")
    diff.add_argument("--run", default=None,
                      help="compare only this run from each stream "
                           "(label or index)")
    diff.add_argument("-o", "--out", default=None,
                      help="write the diff to a file instead of stdout")
    diff.set_defaults(func=_cmd_diff)

    folded = sub.add_parser(
        "folded", help="folded-stack output (workload;object;phase "
                       "cycles) for speedscope / flamegraph.pl")
    folded.add_argument("events", help="events JSONL path")
    folded.add_argument("--run", default=None,
                        help="restrict to one run (label or index)")
    folded.add_argument("-o", "--out", default=None,
                        help="write folded stacks to a file")
    folded.set_defaults(func=_cmd_folded)

    timeline = sub.add_parser(
        "timeline", help="per-core ops/bucket ASCII timeline")
    timeline.add_argument("events", help="events JSONL path")
    timeline.add_argument("--width", type=int, default=72)
    timeline.add_argument("--run", default=None,
                          help="restrict to one run (label or index)")
    timeline.set_defaults(func=_cmd_timeline)

    profile = sub.add_parser(
        "profile", help="stream a recording into a mergeable profile "
                        "artifact (constant memory)")
    profile.add_argument("events", help="events JSONL path (.gz ok)")
    profile.add_argument("-o", "--out", required=True,
                         help="profile JSON output path (.gz ok)")
    profile.add_argument("--max-rss-mb", type=int, default=None,
                         metavar="MB",
                         help="hard address-space cap (POSIX only)")
    profile.set_defaults(func=_cmd_profile)

    merge = sub.add_parser(
        "merge", help="merge per-shard profile artifacts; equals the "
                      "profile of the concatenated recordings")
    merge.add_argument("profiles", nargs="+",
                       help="profile JSON paths (repro-analyze profile "
                            "output, or sweep --profile-dir shards)")
    merge.add_argument("-o", "--out", default=None,
                       help="write the merged profile JSON (.gz ok); "
                            "without it the merged report is printed")
    merge.add_argument("--report", action="store_true",
                       help="also print the merged report")
    merge.add_argument("--top", type=int, default=10,
                       help="rows in top-N tables (default 10)")
    merge.add_argument("--width", type=int, default=72,
                       help="timeline width in columns (default 72)")
    merge.set_defaults(func=_cmd_merge)

    tail = sub.add_parser(
        "tail", help="attach to a live sweep coordinator's watch feed "
                     "and profile it as it streams")
    tail.add_argument("--connect", required=True, metavar="HOST:PORT",
                      help="coordinator watch address "
                           "(repro-sweep run --serve)")
    tail.add_argument("--interval", type=float, default=2.0,
                      help="seconds between interim reports "
                           "(default 2.0; 0 disables)")
    tail.add_argument("--max-events", type=int, default=None,
                      help="detach after this many events")
    tail.add_argument("--top", type=int, default=10,
                      help="rows in top-N tables (default 10)")
    tail.add_argument("--width", type=int, default=72,
                      help="timeline width in columns (default 72)")
    tail.add_argument("-o", "--out", default=None,
                      help="write the final report to a file")
    tail.set_defaults(func=_cmd_tail)

    synth = sub.add_parser(
        "synth", help="generate a synthetic recording of any size "
                      "(deterministic per seed; exercises every reducer)")
    synth.add_argument("-o", "--out", required=True,
                       help="events JSONL output path (.gz recommended)")
    synth.add_argument("--events", type=int, required=True,
                       help="number of events to generate")
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--label", default="synthetic",
                       help="run label (default 'synthetic')")
    synth.add_argument("--cores", type=int, default=8)
    synth.add_argument("--objects", type=int, default=64)
    synth.add_argument("--threads", type=int, default=32)
    synth.set_defaults(func=_cmd_synth)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head & co; exiting quietly is the contract.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""The metrics registry: counters, gauges and fixed-bucket histograms.

Publishers either push (``counter.inc()``, ``histogram.observe(v)``) or
register a pull callback (:meth:`MetricsRegistry.gauge_fn`), which costs
nothing until a snapshot is taken — the right shape for values the
simulator already tracks (cache evictions, run-queue depth maxima, table
sizes).

Instruments are get-or-create by name so several simulators can share a
registry across runs (a benchmark sweep accumulates into the same
histograms).  Names follow ``component.metric`` dotted style.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Default cycle buckets for operation latency (a directory lookup on the
#: scaled machine lands mid-range; lock storms push the right tail).
OP_LATENCY_BUCKETS: Tuple[int, ...] = (
    100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 51_200,
    102_400, 204_800)

#: Buckets for one migration's in-flight cycles (migration_cost plus
#: poll-interval rounding).
MIGRATION_BUCKETS: Tuple[int, ...] = (
    50, 100, 250, 500, 1_000, 2_000, 4_000, 8_000)

#: Buckets for run-queue depth observed at each enqueue.
QUEUE_DEPTH_BUCKETS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64)


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value, set by the publisher."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class HistogramSummary:
    """Frozen summary of a histogram (what :class:`RunResult` carries)."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str, count: int, total: float,
                 minimum: Optional[float], maximum: Optional[float],
                 buckets: Tuple[Tuple[float, int], ...]) -> None:
        self.name = name
        self.count = count
        self.total = total
        self.min = minimum
        self.max = maximum
        #: ``(upper_bound, cumulative_count)`` pairs; the final bound is
        #: ``inf``.
        self.buckets = buckets

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """Upper bound of the bucket containing the ``p``-quantile.

        Bucket-resolution estimate: the true value lies at or below the
        returned bound.  None when the histogram is empty.
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigError(f"percentile {p} outside [0, 1]")
        if not self.count:
            return None
        rank = p * self.count
        for bound, cumulative in self.buckets:
            if cumulative >= rank:
                return bound if bound != float("inf") else self.max
        return self.max

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "buckets": [[bound, cumulative]
                        for bound, cumulative in self.buckets],
        }

    def __repr__(self) -> str:
        return (f"HistogramSummary({self.name}: n={self.count}, "
                f"mean={self.mean:.0f}, p95={self.percentile(0.95)})")


class Histogram:
    """Fixed-bucket histogram with an overflow bucket.

    ``bounds`` are inclusive upper edges; an observation ``v`` lands in
    the first bucket with ``v <= bound``, or the overflow bucket past the
    last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "_min",
                 "_max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ConfigError(f"histogram {name}: needs at least one bucket")
        ordered = tuple(bounds)
        if any(b >= a for b, a in zip(ordered, ordered[1:])):
            raise ConfigError(
                f"histogram {name}: bounds must strictly increase")
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into self (in place); returns self.

        Fixed buckets make two partial histograms over disjoint
        observation sets combine exactly — the property the streaming
        profiler's merge law (:mod:`repro.obs.stream`) relies on.  The
        bounds must match.
        """
        if other.bounds != self.bounds:
            raise ConfigError(
                f"histogram {self.name}: cannot merge with different "
                f"buckets ({other.name})")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other._min is not None and (self._min is None
                                       or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max
        return self

    def summary(self) -> HistogramSummary:
        cumulative = 0
        pairs: List[Tuple[float, int]] = []
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            pairs.append((bound, cumulative))
        pairs.append((float("inf"), cumulative + self.counts[-1]))
        return HistogramSummary(self.name, self.count, self.total,
                                self._min, self._max, tuple(pairs))

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.0f})"


class MetricsRegistry:
    """Named instruments, get-or-create, plus pull-style gauge callbacks."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauge_fns: Dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            self._check_fresh(name)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_fresh(name)
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  bounds: Sequence[float]) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_fresh(name)
            histogram = self._histograms[name] = Histogram(name, bounds)
        elif tuple(bounds) != histogram.bounds:
            raise ConfigError(
                f"histogram {name} re-registered with different buckets")
        return histogram

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> None:
        """Register a pull callback; evaluated only at snapshot time.

        Re-registering replaces the callback (each attached simulator
        reports the current machine).
        """
        if name in self._counters or name in self._gauges \
                or name in self._histograms:
            raise ConfigError(f"metric name {name!r} already registered")
        self._gauge_fns[name] = fn

    def _check_fresh(self, name: str) -> None:
        owners = (self._counters, self._gauges, self._histograms,
                  self._gauge_fns)
        if sum(name in owner for owner in owners):
            raise ConfigError(
                f"metric name {name!r} already registered as another type")

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as primitives (JSON-ready)."""
        data: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            data[name] = counter.value
        for name, gauge in self._gauges.items():
            data[name] = gauge.value
        for name, fn in self._gauge_fns.items():
            data[name] = fn()
        for name, histogram in self._histograms.items():
            data[name] = histogram.summary().as_dict()
        return data

    def render_text(self) -> str:
        """Human-readable dump, one instrument per line."""
        lines: List[str] = []
        scalars = dict(
            [(n, c.value) for n, c in self._counters.items()]
            + [(n, g.value) for n, g in self._gauges.items()]
            + [(n, fn()) for n, fn in self._gauge_fns.items()])
        for name in sorted(scalars):
            lines.append(f"{name:<40} {scalars[name]:>14,g}")
        for name in sorted(self._histograms):
            summary = self._histograms[name].summary()
            p95 = summary.percentile(0.95)
            lines.append(
                f"{name:<40} n={summary.count:<10,} "
                f"mean={summary.mean:>10,.0f} "
                f"p95={'-' if p95 is None else format(p95, ',.0f')}")
        return "\n".join(lines)

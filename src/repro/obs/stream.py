"""Single-pass, constant-memory streaming profiles over event streams.

The batch analyzer (:mod:`repro.obs.profile`) materializes a whole
recording as ``List[Event]`` before attributing anything; fleet-scale
recordings (ROADMAP's million-user scenario) are multi-GB, so this
module re-expresses every §4 attribution as an incremental *reducer*
that folds one event at a time and never looks back:

* memory is proportional to the number of distinct objects, cores,
  locks and threads — never to the number of events;
* every reducer's partial state is serializable and *mergeable*, so a
  distributed sweep's workers can each emit a per-shard
  :class:`Profile` and the coordinator folds them fleet-wide
  (``repro-analyze merge``) with the algebraic law
  ``merge(P(a), P(b)) == P(a + b)`` for any split of one stream;
* the occupancy timeline, which is inherently per-event, degrades
  gracefully through deterministic bottom-k sampling (keyed hashing, so
  any partition of the stream prunes to the same sample).

The batch profiler is rebased on these reducers, so ``repro-analyze
report`` and ``report --stream`` produce byte-identical text for the
same stream (one section per distinct run label).
"""

from __future__ import annotations

import copy
import heapq
import json
import random
from dataclasses import asdict
from hashlib import blake2b
from typing import (Any, Callable, Dict, Iterable, Iterator, List,
                    Optional, Sequence, Set, Tuple, Type)

from repro.analysis import RunningStats
from repro.errors import ProfileError
from repro.obs.events import (CacheEvicted, CacheInvalidated, Event,
                              LeaseExpired, LockContended,
                              MigrationStarted, ObjectAssigned,
                              ObjectMoved, OperationFinished,
                              OperationStarted, RunMarker,
                              SweepCaseFailed, SweepCaseFinished,
                              SweepCaseStarted, WorkerJoined, WorkerLost)
from repro.obs.export import SCHEMA_VERSION, jsonl_meta_line, open_text
from repro.obs.metrics import (MIGRATION_BUCKETS, OP_LATENCY_BUCKETS,
                               Histogram)

__all__ = [
    "DEFAULT_SAMPLE_CAPACITY", "NO_OPERATION", "PROFILE_FORMAT_VERSION",
    "ObjectCostsReducer", "CoreBreakdownReducer",
    "MigrationMatrixReducer", "LockTableReducer", "LatencyReducer",
    "OccupancyReducer", "SweepReducer", "RunProfile", "Profile",
    "StreamProfiler", "ShardRecorder", "load_profile", "merge_profiles",
    "synthesize",
]

#: Pseudo-object charged for migrations of threads outside any
#: operation (mirrors the batch analyzer's attribution rule).
NO_OPERATION = "(no operation)"

#: Maximum distinct occupancy changes a profile keeps before the
#: deterministic bottom-k sampler starts pruning.  Shared by the batch
#: wrapper so both paths prune identically.
DEFAULT_SAMPLE_CAPACITY = 65_536

#: Version of the :class:`Profile` JSON artifact.
PROFILE_FORMAT_VERSION = 1

#: Sentinel distinguishing "thread never seen" from "thread known to be
#: outside any operation" in :class:`ObjectCostsReducer`.
_UNSEEN = object()

Handler = Callable[[Any], None]


# ---------------------------------------------------------------------------
# reducers
#
# The reducer contract (DESIGN.md §12): ``handlers()`` maps event types
# to bound methods, ``feed(event)`` folds one event, ``merge_from``
# folds another reducer's partial state (stream concatenation),
# ``state()``/``from_state()`` round-trip through JSON primitives.
# ---------------------------------------------------------------------------

class ObjectCostsReducer:
    """Per-object cycles/misses/migrations, one pass, mergeable.

    The only stream-order-dependent part of the batch attribution is
    "which object was the migrating thread operating on?".  The reducer
    keeps ``known`` (thread -> object, or None for "known to be outside
    any operation") plus ``pending`` for migrations seen before the
    shard recorded any operation event for that thread; a merge resolves
    the right shard's pending migrations against the left shard's final
    thread states, so any split of a stream folds to the same costs.
    """

    def __init__(self) -> None:
        from repro.obs.profile import ObjectCost
        self._cost_cls = ObjectCost
        self.costs: Dict[str, Any] = {}
        self.known: Dict[str, Optional[str]] = {}
        self.pending: Dict[str, List[int]] = {}

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {OperationStarted: self._op_start,
                OperationFinished: self._op_end,
                MigrationStarted: self._migrate,
                CacheEvicted: self._evict,
                CacheInvalidated: self._invalidate}

    def feed(self, event: Event) -> None:
        handler = self.handlers().get(type(event))
        if handler is not None:
            handler(event)

    def _cost(self, name: str) -> Any:
        entry = self.costs.get(name)
        if entry is None:
            entry = self.costs[name] = self._cost_cls(name)
        return entry

    def _op_start(self, event: OperationStarted) -> None:
        self.known[event.thread] = event.obj

    def _op_end(self, event: OperationFinished) -> None:
        entry = self._cost(event.obj)
        entry.ops += 1
        entry.cycles += event.cycles
        if event.dram is not None:
            entry.attributed_ops += 1
            entry.dram_loads += event.dram
            entry.remote_hits += event.remote
            entry.mem_stall_cycles += event.mem_stall
            entry.spin_cycles += event.spin
        self.known[event.thread] = None

    def _migrate(self, event: MigrationStarted) -> None:
        flight = event.arrive_ts - event.ts
        state = self.known.get(event.thread, _UNSEEN)
        if state is _UNSEEN:
            entry = self.pending.get(event.thread)
            if entry is None:
                self.pending[event.thread] = [1, flight]
            else:
                entry[0] += 1
                entry[1] += flight
            return
        cost = self._cost(state if state is not None else NO_OPERATION)
        cost.migrations += 1
        cost.migration_cycles += flight

    def _evict(self, event: CacheEvicted) -> None:
        if event.obj is not None:
            self._cost(event.obj).evictions += 1

    def _invalidate(self, event: CacheInvalidated) -> None:
        if event.obj is not None:
            self._cost(event.obj).invalidations += event.copies

    def merge_from(self, other: "ObjectCostsReducer") -> None:
        for name, cost in other.costs.items():
            mine = self.costs.get(name)
            if mine is None:
                self.costs[name] = copy.copy(cost)
                continue
            for field in ("ops", "cycles", "attributed_ops", "dram_loads",
                          "remote_hits", "mem_stall_cycles", "spin_cycles",
                          "migrations", "migration_cycles", "evictions",
                          "invalidations"):
                setattr(mine, field,
                        getattr(mine, field) + getattr(cost, field))
        # Resolve the right shard's pre-first-op migrations against our
        # final thread states *before* adopting its states.
        for thread, (migrations, cycles) in other.pending.items():
            state = self.known.get(thread, _UNSEEN)
            if state is _UNSEEN:
                entry = self.pending.get(thread)
                if entry is None:
                    self.pending[thread] = [migrations, cycles]
                else:
                    entry[0] += migrations
                    entry[1] += cycles
                continue
            cost = self._cost(state if state is not None else NO_OPERATION)
            cost.migrations += migrations
            cost.migration_cycles += cycles
        self.known.update(other.known)

    def result(self) -> List[Any]:
        """Sorted :class:`~repro.obs.profile.ObjectCost` list.

        Leftover pending migrations (threads that never recorded an
        operation event anywhere in the stream) resolve to
        ``(no operation)``, exactly like the batch analyzer.  The
        reducer state itself is left untouched so rendering twice — or
        rendering mid-stream — is safe.
        """
        costs = {name: copy.copy(cost) for name, cost in self.costs.items()}
        if self.pending:
            entry = costs.get(NO_OPERATION)
            if entry is None:
                entry = costs[NO_OPERATION] = self._cost_cls(NO_OPERATION)
            for migrations, cycles in self.pending.values():
                entry.migrations += migrations
                entry.migration_cycles += cycles
        return sorted(costs.values(),
                      key=lambda c: (-c.total_cycles, c.name))

    def state(self) -> Dict[str, Any]:
        return {"costs": {name: asdict(cost)
                          for name, cost in self.costs.items()},
                "known": dict(self.known),
                "pending": {thread: list(entry)
                            for thread, entry in self.pending.items()}}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ObjectCostsReducer":
        reducer = cls()
        for name, fields in state["costs"].items():
            reducer.costs[name] = reducer._cost_cls(**fields)
        reducer.known.update(state["known"])
        for thread, entry in state["pending"].items():
            reducer.pending[thread] = list(entry)
        return reducer


class CoreBreakdownReducer:
    """Per-core busy/stall/spin/migrating counts; horizon applied late."""

    #: index layout of one core's count vector
    _FIELDS = ("ops", "busy", "mem_stall", "spin", "migrating",
               "unplaced_ops", "unplaced_cycles")

    def __init__(self) -> None:
        self.cores: Dict[int, List[int]] = {}

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {OperationFinished: self._op_end,
                MigrationStarted: self._migrate}

    def feed(self, event: Event) -> None:
        handler = self.handlers().get(type(event))
        if handler is not None:
            handler(event)

    def _entry(self, core: int) -> List[int]:
        entry = self.cores.get(core)
        if entry is None:
            entry = self.cores[core] = [0] * len(self._FIELDS)
        return entry

    def _op_end(self, event: OperationFinished) -> None:
        entry = self._entry(event.core)
        entry[0] += 1
        if event.mem_stall is not None:
            entry[1] += event.cycles
            entry[2] += event.mem_stall
            entry[3] += event.spin
        else:
            entry[5] += 1
            entry[6] += event.cycles

    def _migrate(self, event: MigrationStarted) -> None:
        self._entry(event.core)[4] += event.arrive_ts - event.ts

    def merge_from(self, other: "CoreBreakdownReducer") -> None:
        for core, counts in other.cores.items():
            entry = self._entry(core)
            for index, value in enumerate(counts):
                entry[index] += value

    def result(self, horizon: int) -> List[Any]:
        from repro.obs.profile import CoreBreakdown
        breakdowns = []
        for core in sorted(self.cores):
            counts = self.cores[core]
            item = CoreBreakdown(core, horizon)
            for index, field in enumerate(self._FIELDS):
                setattr(item, field, counts[index])
            breakdowns.append(item)
        return breakdowns

    def state(self) -> Dict[str, List[int]]:
        return {str(core): list(counts)
                for core, counts in self.cores.items()}

    @classmethod
    def from_state(cls, state: Dict[str, List[int]]) -> "CoreBreakdownReducer":
        reducer = cls()
        for core, counts in state.items():
            reducer.cores[int(core)] = list(counts)
        return reducer


class MigrationMatrixReducer:
    """``(from_core, to_core) -> count``, trivially mergeable."""

    def __init__(self) -> None:
        self.matrix: Dict[Tuple[int, int], int] = {}

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {MigrationStarted: self._migrate}

    def feed(self, event: Event) -> None:
        if type(event) is MigrationStarted:
            self._migrate(event)

    def _migrate(self, event: MigrationStarted) -> None:
        key = (event.core, event.target)
        self.matrix[key] = self.matrix.get(key, 0) + 1

    def merge_from(self, other: "MigrationMatrixReducer") -> None:
        for key, count in other.matrix.items():
            self.matrix[key] = self.matrix.get(key, 0) + count

    def result(self) -> Dict[Tuple[int, int], int]:
        return dict(self.matrix)

    def state(self) -> Dict[str, int]:
        return {f"{source}>{target}": count
                for (source, target), count in self.matrix.items()}

    @classmethod
    def from_state(cls, state: Dict[str, int]) -> "MigrationMatrixReducer":
        reducer = cls()
        for key, count in state.items():
            source, target = key.split(">")
            reducer.matrix[(int(source), int(target))] = count
        return reducer


class LockTableReducer:
    """Per-lock contention counts, thread sets and per-core splits."""

    def __init__(self) -> None:
        #: lock name -> [contended_acquires, thread set, per-core dict]
        self.locks: Dict[str, Tuple[List[int], Set[str],
                                    Dict[int, int]]] = {}

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {LockContended: self._contended}

    def feed(self, event: Event) -> None:
        if type(event) is LockContended:
            self._contended(event)

    def _entry(self, name: str) -> Tuple[List[int], Set[str],
                                         Dict[int, int]]:
        entry = self.locks.get(name)
        if entry is None:
            entry = self.locks[name] = ([0], set(), {})
        return entry

    def _contended(self, event: LockContended) -> None:
        counts, threads, per_core = self._entry(event.lock)
        counts[0] += 1
        threads.add(event.thread)
        per_core[event.core] = per_core.get(event.core, 0) + 1

    def merge_from(self, other: "LockTableReducer") -> None:
        for name, (counts, threads, per_core) in other.locks.items():
            mine = self._entry(name)
            mine[0][0] += counts[0]
            mine[1].update(threads)
            for core, count in per_core.items():
                mine[2][core] = mine[2].get(core, 0) + count

    def result(self) -> List[Any]:
        from repro.obs.profile import LockStat
        stats = []
        for name, (counts, threads, per_core) in self.locks.items():
            stats.append(LockStat(name, contended_acquires=counts[0],
                                  threads=set(threads),
                                  per_core=dict(per_core)))
        return sorted(stats, key=lambda s: (-s.contended_acquires, s.name))

    def state(self) -> Dict[str, Any]:
        return {name: {"contended": counts[0],
                       "threads": sorted(threads),
                       "per_core": {str(core): count
                                    for core, count in per_core.items()}}
                for name, (counts, threads, per_core) in self.locks.items()}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "LockTableReducer":
        reducer = cls()
        for name, data in state.items():
            reducer.locks[name] = (
                [data["contended"]], set(data["threads"]),
                {int(core): count
                 for core, count in data["per_core"].items()})
        return reducer


def _histogram_state(histogram: Histogram) -> Dict[str, Any]:
    return {"bounds": list(histogram.bounds),
            "counts": list(histogram.counts),
            "count": histogram.count,
            "total": histogram.total,
            "min": histogram._min,
            "max": histogram._max}


def _histogram_from_state(name: str, state: Dict[str, Any]) -> Histogram:
    histogram = Histogram(name, state["bounds"])
    histogram.counts = list(state["counts"])
    histogram.count = state["count"]
    histogram.total = state["total"]
    histogram._min = state["min"]
    histogram._max = state["max"]
    return histogram


class LatencyReducer:
    """Log-bucket latency histograms (reuses :mod:`repro.obs.metrics`).

    One histogram of operation cycles (``OP_LATENCY_BUCKETS``) and one
    of migration in-flight cycles (``MIGRATION_BUCKETS``); fixed buckets
    make two partial histograms fold exactly.
    """

    def __init__(self) -> None:
        self.op = Histogram("stream.op_cycles", OP_LATENCY_BUCKETS)
        self.flight = Histogram("stream.migration_flight",
                                MIGRATION_BUCKETS)

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {OperationFinished: self._op_end,
                MigrationStarted: self._migrate}

    def feed(self, event: Event) -> None:
        handler = self.handlers().get(type(event))
        if handler is not None:
            handler(event)

    def _op_end(self, event: OperationFinished) -> None:
        self.op.observe(event.cycles)

    def _migrate(self, event: MigrationStarted) -> None:
        self.flight.observe(event.arrive_ts - event.ts)

    def merge_from(self, other: "LatencyReducer") -> None:
        self.op.merge(other.op)
        self.flight.merge(other.flight)

    def render(self) -> Optional[str]:
        rows = []
        for title, histogram in (("op latency (cycles)", self.op),
                                 ("migration flight (cycles)",
                                  self.flight)):
            if not histogram.count:
                continue
            summary = histogram.summary()
            p50 = summary.percentile(0.50)
            p95 = summary.percentile(0.95)
            rows.append(f"  {title:<26} n={summary.count:,}  "
                        f"mean={summary.mean:,.0f}  p50<={p50:,.0f}  "
                        f"p95<={p95:,.0f}  max={summary.max:,.0f}")
        if not rows:
            return None
        return ("Latency histograms (log buckets; percentiles are "
                "bucket upper bounds)\n" + "\n".join(rows))

    def state(self) -> Dict[str, Any]:
        return {"op": _histogram_state(self.op),
                "flight": _histogram_state(self.flight)}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "LatencyReducer":
        reducer = cls()
        reducer.op = _histogram_from_state("stream.op_cycles", state["op"])
        reducer.flight = _histogram_from_state("stream.migration_flight",
                                               state["flight"])
        return reducer


class OccupancyReducer:
    """Occupancy timeline via deterministic bottom-k change sampling.

    The timeline only needs cumulative assignment counts at bucket
    edges, so its sufficient statistic is the multiset of
    ``(ts, core, delta)`` changes — order-free, hence mergeable.  When
    distinct changes exceed ``capacity``, the reducer keeps the k
    changes with the smallest keyed hash (bottom-k): a pure function of
    content, so any partition of the stream prunes to the same sample
    and ``merge == whole-stream`` still holds.  Counts of kept changes
    stay exact (a change pruned once can never re-enter the bottom-k).
    """

    def __init__(self, capacity: int = DEFAULT_SAMPLE_CAPACITY,
                 seed: int = 0) -> None:
        self.capacity = capacity
        self.seed = seed
        self.changes: Dict[Tuple[int, int, int], int] = {}
        self.total = 0
        self.max_core = -1
        self.change_horizon = 0
        self.pruned = False
        # Min-heap over *inverted* priorities, so the root is always the
        # worst (largest-priority) kept change; admission is then O(1)
        # and eviction O(log capacity) instead of a full re-sort per
        # distinct change past capacity.
        self._heap: List[Tuple[bytes, Tuple[int, int, int],
                               Tuple[int, int, int]]] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {ObjectAssigned: self._assign, ObjectMoved: self._move}

    def feed(self, event: Event) -> None:
        handler = self.handlers().get(type(event))
        if handler is not None:
            handler(event)

    def _add(self, ts: int, core: int, delta: int) -> None:
        key = (ts, core, delta)
        self.total += 1
        if ts > self.change_horizon:
            self.change_horizon = ts
        if core > self.max_core:
            self.max_core = core
        if key in self.changes:
            self.changes[key] += 1
            return
        entry = self._heap_entry(key)
        if len(self.changes) >= self.capacity:
            self.pruned = True
            if entry <= self._heap[0]:
                # Worse priority than the worst kept change.  It can
                # never re-enter the bottom-k (admitting new keys only
                # lowers the threshold), so the skip is final — which is
                # exactly why kept counts stay exact.
                return
            dropped = heapq.heappushpop(self._heap, entry)
            del self.changes[dropped[2]]
        else:
            heapq.heappush(self._heap, entry)
        self.changes[key] = 1

    def _assign(self, event: ObjectAssigned) -> None:
        self._add(event.ts, event.core, +1)

    def _move(self, event: ObjectMoved) -> None:
        self._add(event.ts, event.core, -1)
        self._add(event.ts, event.target, +1)

    def _priority(self, key: Tuple[int, int, int]) -> Tuple[bytes,
                                                            Tuple[int, int,
                                                                  int]]:
        digest = blake2b(f"{self.seed}:{key[0]}:{key[1]}:{key[2]}"
                         .encode("ascii"), digest_size=8).digest()
        return (digest, key)

    def _heap_entry(self, key: Tuple[int, int, int]) -> Tuple[
            bytes, Tuple[int, int, int], Tuple[int, int, int]]:
        # Byte-wise complement and component negation both strictly
        # reverse the order, turning heapq's min-heap into a max-heap
        # over (digest, key) priorities.
        digest, _ = self._priority(key)
        return (bytes(255 - byte for byte in digest),
                (-key[0], -key[1], -key[2]), key)

    def _rebuild_heap(self) -> None:
        self._heap = [self._heap_entry(key) for key in self.changes]
        heapq.heapify(self._heap)

    def merge_from(self, other: "OccupancyReducer") -> None:
        if (other.capacity, other.seed) != (self.capacity, self.seed):
            raise ProfileError(
                "cannot merge occupancy samples with different "
                f"capacity/seed ({other.capacity}/{other.seed} vs "
                f"{self.capacity}/{self.seed})")
        for key, count in other.changes.items():
            self.changes[key] = self.changes.get(key, 0) + count
        self.total += other.total
        self.max_core = max(self.max_core, other.max_core)
        self.change_horizon = max(self.change_horizon,
                                  other.change_horizon)
        self.pruned = self.pruned or other.pruned
        if len(self.changes) > self.capacity:
            keep = sorted(self.changes,
                          key=self._priority)[:self.capacity]
            self.changes = {key: self.changes[key] for key in keep}
            self.pruned = True
        self._rebuild_heap()

    def render(self, stream_horizon: int, n_cores: Optional[int] = None,
               width: int = 72) -> str:
        """ASCII occupancy strip, byte-identical to the batch layout.

        Within-bucket ordering of changes is irrelevant (only cumulative
        counts at bucket edges matter), so applying each distinct change
        ``count`` times at once reproduces the event-ordered batch
        rendering exactly.
        """
        if not self.changes:
            return "(no assignment events recorded)"
        full_horizon = max(self.change_horizon, stream_horizon)
        if n_cores is None:
            n_cores = self.max_core + 1
        width = max(8, width)
        # width * bucket must strictly exceed the horizon so an event at
        # exactly ts == horizon still lands inside the final column.
        bucket = full_horizon // width + 1
        ordered = sorted(self.changes.items(), key=lambda item: item[0][0])
        counts = [0] * n_cores
        rows = [["0"] * width for _ in range(n_cores)]
        index = 0
        for column in range(width):
            edge = (column + 1) * bucket
            while index < len(ordered) and ordered[index][0][0] < edge:
                (_, core_id, delta), count = ordered[index]
                if core_id < n_cores:
                    counts[core_id] += delta * count
                index += 1
            for core_id in range(n_cores):
                count = counts[core_id]
                rows[core_id][column] = (str(count) if 0 <= count <= 9
                                         else "+")
        header = f"assigned objects per cache  (bucket = {bucket:,} cycles)"
        if self.pruned:
            kept = sum(self.changes.values())
            header += (f"  [sampled: kept {kept:,} of {self.total:,} "
                       "changes]")
        lines = [header]
        for core_id in range(n_cores):
            lines.append(f"core {core_id:>3} |{''.join(rows[core_id])}|")
        lines.append(f"         0{'cycles'.center(width - 1)}"
                     f"{full_horizon:,}")
        return "\n".join(lines)

    def state(self) -> Dict[str, Any]:
        return {"capacity": self.capacity, "seed": self.seed,
                "total": self.total, "max_core": self.max_core,
                "change_horizon": self.change_horizon,
                "pruned": self.pruned,
                "changes": [[ts, core, delta, count]
                            for (ts, core, delta), count
                            in sorted(self.changes.items())]}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "OccupancyReducer":
        reducer = cls(capacity=state["capacity"], seed=state["seed"])
        reducer.total = state["total"]
        reducer.max_core = state["max_core"]
        reducer.change_horizon = state["change_horizon"]
        reducer.pruned = state["pruned"]
        for ts, core, delta, count in state["changes"]:
            reducer.changes[(ts, core, delta)] = count
        reducer._rebuild_heap()
        return reducer


class SweepReducer:
    """Fleet-level sweep activity: cases, throughput, worker lifecycle.

    Per-scheduler throughputs are kept as *lists* (not running sums):
    list concatenation is exact under float semantics, so the merge law
    holds bit-for-bit; memory is one float per finished cell, which is
    bounded by the grid size, not the event count.
    """

    def __init__(self) -> None:
        self.started = 0
        self.finished = 0
        self.cached = 0
        self.failed = 0
        self.workers_joined = 0
        self.workers_lost = 0
        self.leases_expired = 0
        self.kops: Dict[str, List[float]] = {}

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {SweepCaseStarted: self._started,
                SweepCaseFinished: self._finished,
                SweepCaseFailed: self._failed,
                WorkerJoined: self._joined,
                WorkerLost: self._lost,
                LeaseExpired: self._lease_expired}

    def feed(self, event: Event) -> None:
        handler = self.handlers().get(type(event))
        if handler is not None:
            handler(event)

    def _started(self, event: SweepCaseStarted) -> None:
        self.started += 1

    def _finished(self, event: SweepCaseFinished) -> None:
        self.finished += 1
        if event.cached:
            self.cached += 1
        self.kops.setdefault(event.scheduler, []).append(event.kops)

    def _failed(self, event: SweepCaseFailed) -> None:
        self.failed += 1

    def _joined(self, event: WorkerJoined) -> None:
        self.workers_joined += 1

    def _lost(self, event: WorkerLost) -> None:
        self.workers_lost += 1

    def _lease_expired(self, event: LeaseExpired) -> None:
        self.leases_expired += 1

    def active(self) -> bool:
        return bool(self.started or self.finished or self.failed
                    or self.workers_joined or self.workers_lost
                    or self.leases_expired)

    def merge_from(self, other: "SweepReducer") -> None:
        self.started += other.started
        self.finished += other.finished
        self.cached += other.cached
        self.failed += other.failed
        self.workers_joined += other.workers_joined
        self.workers_lost += other.workers_lost
        self.leases_expired += other.leases_expired
        for scheduler, values in other.kops.items():
            self.kops.setdefault(scheduler, []).extend(values)

    def render(self) -> Optional[str]:
        if not self.active():
            return None
        lines = ["Fleet sweep activity (ts = dispatch sequence)",
                 f"  cases: {self.started:,} started, "
                 f"{self.finished:,} finished ({self.cached:,} cached), "
                 f"{self.failed:,} failed"]
        if self.kops:
            lines.append("  throughput by scheduler (kops/s over "
                         "finished cells):")
            for scheduler in sorted(self.kops):
                stats = RunningStats.from_values(self.kops[scheduler])
                lines.append(f"    {scheduler:<10} n={stats.n:,}  "
                             f"mean={stats.mean:,.1f}  "
                             f"min={stats.minimum:,.1f}  "
                             f"max={stats.maximum:,.1f}")
        if self.workers_joined or self.workers_lost or self.leases_expired:
            lines.append(f"  fleet: {self.workers_joined:,} worker(s) "
                         f"joined, {self.workers_lost:,} lost, "
                         f"{self.leases_expired:,} lease(s) expired")
        return "\n".join(lines)

    def state(self) -> Dict[str, Any]:
        return {"started": self.started, "finished": self.finished,
                "cached": self.cached, "failed": self.failed,
                "workers_joined": self.workers_joined,
                "workers_lost": self.workers_lost,
                "leases_expired": self.leases_expired,
                "kops": {scheduler: list(values)
                         for scheduler, values in self.kops.items()}}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "SweepReducer":
        reducer = cls()
        for field in ("started", "finished", "cached", "failed",
                      "workers_joined", "workers_lost", "leases_expired"):
            setattr(reducer, field, state[field])
        for scheduler, values in state["kops"].items():
            reducer.kops[scheduler] = list(values)
        return reducer


# ---------------------------------------------------------------------------
# one run's profile (a section of the stream)
# ---------------------------------------------------------------------------

class RunProfile:
    """All reducers for one run label, with one combined dispatch table.

    Renders the same five batch-report sections (header, per-object
    attribution, per-core breakdown, migration matrix, lock table,
    occupancy timeline) plus latency/sweep sections when populated.
    """

    def __init__(self, label: Optional[str],
                 sample_capacity: int = DEFAULT_SAMPLE_CAPACITY,
                 sample_seed: int = 0) -> None:
        self.label = label
        self.events = 0
        self.horizon = 0
        self.objects = ObjectCostsReducer()
        self.cores = CoreBreakdownReducer()
        self.matrix = MigrationMatrixReducer()
        self.locks = LockTableReducer()
        self.latency = LatencyReducer()
        self.occupancy = OccupancyReducer(capacity=sample_capacity,
                                          seed=sample_seed)
        self.sweep = SweepReducer()
        self._reducers = (self.objects, self.cores, self.matrix,
                          self.locks, self.latency, self.occupancy,
                          self.sweep)
        dispatch: Dict[Type[Event], List[Handler]] = {}
        for reducer in self._reducers:
            for etype, handler in reducer.handlers().items():
                dispatch.setdefault(etype, []).append(handler)
        self._dispatch = dispatch

    @property
    def display_label(self) -> str:
        return self.label if self.label is not None else "run"

    def feed(self, event: Event) -> None:
        self.events += 1
        ts = event.ts
        if type(event) is MigrationStarted and event.arrive_ts > ts:
            ts = event.arrive_ts
        if ts > self.horizon:
            self.horizon = ts
        for handler in self._dispatch.get(type(event), ()):
            handler(event)

    @classmethod
    def from_events(cls, label: Optional[str], events: Iterable[Event],
                    sample_capacity: int = DEFAULT_SAMPLE_CAPACITY,
                    sample_seed: int = 0) -> "RunProfile":
        section = cls(label, sample_capacity=sample_capacity,
                      sample_seed=sample_seed)
        for event in events:
            section.feed(event)
        return section

    def merge_from(self, other: "RunProfile") -> None:
        self.events += other.events
        self.horizon = max(self.horizon, other.horizon)
        self.objects.merge_from(other.objects)
        self.cores.merge_from(other.cores)
        self.matrix.merge_from(other.matrix)
        self.locks.merge_from(other.locks)
        self.latency.merge_from(other.latency)
        self.occupancy.merge_from(other.occupancy)
        self.sweep.merge_from(other.sweep)

    def render(self, top: int = 10, width: int = 72) -> str:
        from repro.obs.profile import (render_core_breakdown,
                                       render_lock_table,
                                       render_migration_matrix,
                                       render_object_costs)
        sections = [
            f"=== run: {self.display_label} "
            f"({self.events:,} events, horizon "
            f"{self.horizon:,} cycles) ===",
            "",
            render_object_costs(self.objects.result(), top=top),
            "",
            render_core_breakdown(self.cores.result(self.horizon)),
            "",
            render_migration_matrix(self.matrix.result()),
            "",
            render_lock_table(self.locks.result(), top=top),
        ]
        latency = self.latency.render()
        if latency is not None:
            sections.extend(["", latency])
        sweep = self.sweep.render()
        if sweep is not None:
            sections.extend(["", sweep])
        sections.extend(["", self.occupancy.render(self.horizon,
                                                   width=width)])
        return "\n".join(sections)

    def state(self) -> Dict[str, Any]:
        return {"label": self.label, "events": self.events,
                "horizon": self.horizon,
                "objects": self.objects.state(),
                "cores": self.cores.state(),
                "migrations": self.matrix.state(),
                "locks": self.locks.state(),
                "latency": self.latency.state(),
                "occupancy": self.occupancy.state(),
                "sweep": self.sweep.state()}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RunProfile":
        occupancy = state["occupancy"]
        section = cls(state["label"],
                      sample_capacity=occupancy["capacity"],
                      sample_seed=occupancy["seed"])
        section.events = state["events"]
        section.horizon = state["horizon"]
        section.objects = ObjectCostsReducer.from_state(state["objects"])
        section.cores = CoreBreakdownReducer.from_state(state["cores"])
        section.matrix = MigrationMatrixReducer.from_state(
            state["migrations"])
        section.locks = LockTableReducer.from_state(state["locks"])
        section.latency = LatencyReducer.from_state(state["latency"])
        section.occupancy = OccupancyReducer.from_state(occupancy)
        section.sweep = SweepReducer.from_state(state["sweep"])
        # rebuild dispatch over the replaced reducers
        section._reducers = (section.objects, section.cores,
                             section.matrix, section.locks,
                             section.latency, section.occupancy,
                             section.sweep)
        dispatch: Dict[Type[Event], List[Handler]] = {}
        for reducer in section._reducers:
            for etype, handler in reducer.handlers().items():
                dispatch.setdefault(etype, []).append(handler)
        section._dispatch = dispatch
        return section


# ---------------------------------------------------------------------------
# the mergeable profile artifact
# ---------------------------------------------------------------------------

class Profile:
    """A serializable, mergeable whole-stream profile.

    Sections are keyed by run label (``RunMarker``); events before any
    marker go to a headless section rendered as ``run``, matching the
    batch analyzer's ``split_runs``.  Merging treats the right profile
    as the continuation of the left stream: the right's headless prefix
    folds into the left's active section, same-label sections fold
    together, new labels are appended in first-appearance order.  With
    that, ``merge(P(a), P(b)) == P(a + b)`` holds for any split point of
    one stream — the tested algebraic law distributed sweeps rely on.
    """

    def __init__(self, sample_capacity: int = DEFAULT_SAMPLE_CAPACITY,
                 sample_seed: int = 0) -> None:
        self.sample_capacity = sample_capacity
        self.sample_seed = sample_seed
        self._sections: Dict[Optional[str], RunProfile] = {}
        self._active: Optional[RunProfile] = None

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------

    def feed(self, event: Event) -> None:
        if type(event) is RunMarker:
            section = self._sections.get(event.label)
            if section is None:
                section = self._sections[event.label] = RunProfile(
                    event.label, sample_capacity=self.sample_capacity,
                    sample_seed=self.sample_seed)
            self._active = section
            return
        if self._active is None:
            section = self._sections.get(None)
            if section is None:
                section = self._sections[None] = RunProfile(
                    None, sample_capacity=self.sample_capacity,
                    sample_seed=self.sample_seed)
            self._active = section
        self._active.feed(event)

    @classmethod
    def from_events(cls, events: Iterable[Event],
                    sample_capacity: int = DEFAULT_SAMPLE_CAPACITY,
                    sample_seed: int = 0) -> "Profile":
        profile = cls(sample_capacity=sample_capacity,
                      sample_seed=sample_seed)
        for event in events:
            profile.feed(event)
        return profile

    # ------------------------------------------------------------------
    # sections
    # ------------------------------------------------------------------

    @property
    def sections(self) -> List[RunProfile]:
        """Sections in first-appearance order."""
        return list(self._sections.values())

    @property
    def total_events(self) -> int:
        return sum(section.events for section in self._sections.values())

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------

    def _ingest(self, other: "Profile") -> None:
        """Fold ``other`` (the right-hand stream) into self, in place.

        ``other``'s sections are adopted directly, so callers must pass
        a profile they own (``merge`` round-trips through JSON to
        guarantee that).
        """
        if (other.sample_capacity != self.sample_capacity
                or other.sample_seed != self.sample_seed):
            raise ProfileError(
                "cannot merge profiles with different sampling "
                f"parameters (capacity {other.sample_capacity}, seed "
                f"{other.sample_seed} vs capacity "
                f"{self.sample_capacity}, seed {self.sample_seed})")
        for label, section in other._sections.items():
            if label is None:
                # the right stream's pre-marker events continue the
                # left stream's active run
                target = self._active
                if target is None:
                    target = self._sections.get(None)
                if target is None:
                    target = self._sections[None] = RunProfile(
                        None, sample_capacity=self.sample_capacity,
                        sample_seed=self.sample_seed)
                target.merge_from(section)
                continue
            mine = self._sections.get(label)
            if mine is None:
                self._sections[label] = section
            else:
                mine.merge_from(section)
        if other._active is not None:
            if other._active.label is not None:
                self._active = self._sections[other._active.label]
            elif self._active is None:
                self._active = self._sections.get(None)

    def merge(self, other: "Profile") -> "Profile":
        """Non-destructive fold: a new profile equal to ``P(a + b)``."""
        merged = Profile.from_json(self.to_json())
        merged._ingest(Profile.from_json(other.to_json()))
        return merged

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, sections in stream order)."""
        active: Optional[Dict[str, Any]] = None
        if self._active is not None:
            active = {"label": self._active.label}
        document = {
            "kind": "repro.profile",
            "version": PROFILE_FORMAT_VERSION,
            "schema_version": SCHEMA_VERSION,
            "sample_capacity": self.sample_capacity,
            "sample_seed": self.sample_seed,
            "active": active,
            "sections": [section.state()
                         for section in self._sections.values()],
        }
        return json.dumps(document, separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, text: str,
                  source: Optional[str] = None) -> "Profile":
        prefix = f"{source}: " if source else ""
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise ProfileError(f"{prefix}not valid JSON: {exc}")
        if (not isinstance(document, dict)
                or document.get("kind") != "repro.profile"):
            raise ProfileError(
                f"{prefix}not a repro.profile artifact (expected "
                "kind='repro.profile')")
        version = document.get("version")
        if version != PROFILE_FORMAT_VERSION:
            raise ProfileError(
                f"{prefix}profile format version {version!r} is not "
                f"supported (this analyzer reads "
                f"{PROFILE_FORMAT_VERSION})")
        profile = cls(sample_capacity=document["sample_capacity"],
                      sample_seed=document["sample_seed"])
        for state in document["sections"]:
            section = RunProfile.from_state(state)
            profile._sections[section.label] = section
        active = document.get("active")
        if active is not None:
            profile._active = profile._sections.get(active["label"])
        return profile

    # ------------------------------------------------------------------
    # equality (the merge law's notion of "same profile")
    # ------------------------------------------------------------------

    def _canonical(self) -> Dict[Optional[str], Dict[str, Any]]:
        return {label: section.state()
                for label, section in self._sections.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return self._canonical() == other._canonical()

    def __repr__(self) -> str:
        labels = [section.display_label
                  for section in self._sections.values()]
        return (f"Profile(sections={labels}, "
                f"events={self.total_events:,})")

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self, top: int = 10, width: int = 72) -> str:
        """Full report: one section per run label, batch layout."""
        if not self._sections:
            return "(empty profile)"
        return "\n\n".join(section.render(top=top, width=width)
                           for section in self._sections.values())


def load_profile(path: str) -> Profile:
    """Read a :class:`Profile` artifact (``.json`` or ``.json.gz``)."""
    with open_text(path, "r") as handle:
        return Profile.from_json(handle.read(), source=path)


def merge_profiles(profiles: Sequence[Profile]) -> Profile:
    """Left fold of :meth:`Profile.merge` over ``profiles``."""
    if not profiles:
        raise ProfileError("no profiles to merge")
    merged = Profile.from_json(profiles[0].to_json())
    for profile in profiles[1:]:
        merged._ingest(Profile.from_json(profile.to_json()))
    return merged


# ---------------------------------------------------------------------------
# streaming front-ends
# ---------------------------------------------------------------------------

class StreamProfiler:
    """Incremental profiling front-end: one event in, never looks back.

    Accepts typed events (:meth:`feed`), raw JSONL frames from the
    coordinator watch feed (:meth:`feed_dict`), or whole files
    (:meth:`feed_path`, via the generator ingest) — all land in the same
    mergeable :class:`Profile`.
    """

    def __init__(self, sample_capacity: int = DEFAULT_SAMPLE_CAPACITY,
                 sample_seed: int = 0) -> None:
        from repro.obs.profile import EventDecoder
        self.profile = Profile(sample_capacity=sample_capacity,
                               sample_seed=sample_seed)
        self._decoder = EventDecoder()
        self.events_seen = 0

    def feed(self, event: Event) -> None:
        self.profile.feed(event)
        self.events_seen += 1

    def feed_dict(self, data: Dict[str, Any]) -> Optional[Event]:
        """Decode one ``as_dict`` frame and feed it; returns the event."""
        event = self._decoder.decode(data)
        if event is not None:
            self.feed(event)
        return event

    def feed_path(self, path: str) -> "StreamProfiler":
        from repro.obs.profile import iter_jsonl
        for event in iter_jsonl(path):
            self.feed(event)
        return self

    def render(self, top: int = 10, width: int = 72) -> str:
        return self.profile.render(top=top, width=width)


class ShardRecorder:
    """Per-worker event shard + mergeable profile, written as cases run.

    Each recorded case appends its events to
    ``<dir>/<name>.events.jsonl.gz`` (the simulator emits the case's
    ``RunMarker`` itself, so shards are already label-led) and feeds the
    same events through a :class:`StreamProfiler`; :meth:`close` writes
    ``<dir>/<name>.profile.json``.  Workers that never ran a case write
    nothing, so concatenating the shard event files and merging the
    shard profiles describe exactly the same stream.
    """

    def __init__(self, profile_dir: str, name: str,
                 sample_capacity: int = DEFAULT_SAMPLE_CAPACITY,
                 sample_seed: int = 0) -> None:
        import os
        os.makedirs(profile_dir, exist_ok=True)
        self.events_path = os.path.join(profile_dir,
                                        f"{name}.events.jsonl.gz")
        self.profile_path = os.path.join(profile_dir,
                                         f"{name}.profile.json")
        self._profiler = StreamProfiler(sample_capacity=sample_capacity,
                                        sample_seed=sample_seed)
        self._handle: Optional[Any] = None
        self.cases = 0

    def record(self, case: Any, key: str,
               events: Sequence[Event]) -> None:
        if self._handle is None:
            self._handle = open_text(self.events_path, "w")
            self._handle.write(jsonl_meta_line() + "\n")
        for event in events:
            self._handle.write(json.dumps(event.as_dict(),
                                          separators=(",", ":"),
                                          sort_keys=True) + "\n")
            self._profiler.feed(event)
        self.cases += 1

    def close(self) -> Optional[str]:
        """Flush the shard; returns the profile path (None if no cases)."""
        if self._handle is None:
            return None
        self._handle.close()
        self._handle = None
        with open(self.profile_path, "w", encoding="utf-8") as handle:
            handle.write(self._profiler.profile.to_json() + "\n")
        return self.profile_path


# ---------------------------------------------------------------------------
# synthetic streams (scale testing without a day of simulation)
# ---------------------------------------------------------------------------

def synthesize(n_events: int, seed: int = 0, label: str = "synthetic",
               n_cores: int = 8, n_objects: int = 64,
               n_threads: int = 32) -> Iterator[Event]:
    """Deterministic pseudo-workload stream of ``n_events`` events.

    A generator (never materialized) mixing every attribution-relevant
    event kind with plausible correlations: threads start/finish
    operations, migrate mid-op, contend on locks, and the scheduler
    occasionally reassigns objects.  Feeding it straight to
    ``write_jsonl`` produces multi-million-event recordings in seconds —
    the CI ``stream-analysis`` job's out-of-core fixture.
    """
    rng = random.Random(seed)
    yield RunMarker(0, label)
    emitted = 1
    ts = 0
    in_op: Dict[str, Tuple[str, int, int]] = {}
    while emitted < n_events:
        ts += rng.randrange(5, 60)
        thread = f"t{rng.randrange(n_threads)}"
        state = in_op.get(thread)
        roll = rng.random()
        if state is not None and roll < 0.55:
            obj, core, started = state
            cycles = ts - started if ts > started \
                else rng.randrange(80, 4_000)
            del in_op[thread]
            if rng.random() < 0.9:
                yield OperationFinished(
                    ts, core, thread, obj, cycles,
                    dram=rng.randrange(0, 12),
                    remote=rng.randrange(0, 6),
                    mem_stall=rng.randrange(0, cycles // 2 + 1),
                    spin=rng.randrange(0, cycles // 8 + 1))
            else:
                # migrated mid-op: counters are unattributable
                yield OperationFinished(ts, core, thread, obj, cycles)
        elif state is None and roll < 0.55:
            core = rng.randrange(n_cores)
            obj = f"obj{rng.randrange(n_objects)}"
            in_op[thread] = (obj, core, ts)
            yield OperationStarted(ts, core, thread, obj)
        elif roll < 0.70:
            core = state[1] if state is not None \
                else rng.randrange(n_cores)
            target = rng.randrange(n_cores)
            yield MigrationStarted(ts, core, thread, target,
                                   ts + rng.randrange(50, 400))
            if state is not None:
                in_op[thread] = (state[0], target, state[2])
        elif roll < 0.85:
            yield LockContended(ts, rng.randrange(n_cores), thread,
                                f"lock{rng.randrange(8)}")
        elif roll < 0.95:
            yield CacheEvicted(ts, rng.randrange(n_cores), "L3",
                               rng.randrange(1 << 16),
                               obj=f"obj{rng.randrange(n_objects)}")
        elif roll < 0.985:
            yield ObjectAssigned(ts, rng.randrange(n_cores),
                                 f"obj{rng.randrange(n_objects)}")
        else:
            yield ObjectMoved(ts, rng.randrange(n_cores),
                              f"obj{rng.randrange(n_objects)}",
                              rng.randrange(n_cores),
                              round(rng.random() * 10, 2))
        emitted += 1

"""Typed observability events.

Every interesting thing the simulator does is described by one of the
event classes below: thread lifecycle, scheduling decisions, operation
boundaries, object (re)assignment, rebalance rounds, cache traffic and
lock contention.  Events are plain ``__slots__`` classes (cheap to
construct, no dict) carrying only primitive fields — names, core ids and
cycle timestamps — so they can be buffered, serialised and exported
without keeping simulator objects alive.  Each concrete ``__init__``
assigns every slot directly instead of chaining ``super().__init__``:
events are constructed tens of thousands of times per run, and the
flattened form is one call frame instead of three.

The zero-overhead contract: publishers must *not* construct an event
unless :meth:`repro.obs.bus.EventBus.wants` says someone is listening.
``EVENT_KINDS`` maps the short ``kind`` strings (used in JSONL dumps and
the flight recorder) back to classes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Type


class Event:
    """Base class: a timestamped simulator event."""

    __slots__ = ("ts",)
    kind = "event"

    def __init__(self, ts: int) -> None:
        self.ts = ts

    def _fields(self) -> Tuple[str, ...]:
        names = []
        for klass in reversed(type(self).__mro__):
            names.extend(getattr(klass, "__slots__", ()))
        return tuple(names)

    def as_dict(self) -> Dict[str, Any]:
        """Primitive dict form (JSONL export, flight-recorder dumps)."""
        data: Dict[str, Any] = {"kind": self.kind}
        for name in self._fields():
            data[name] = getattr(self, name)
        return data

    def __repr__(self) -> str:
        fields = ", ".join(f"{n}={getattr(self, n)!r}"
                           for n in self._fields())
        return f"{type(self).__name__}({fields})"

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(getattr(self, n) == getattr(other, n)
                   for n in self._fields())


class RunMarker(Event):
    """A new simulator attached to the shared observability pipeline.

    Exporters split the event stream on these markers, so several runs
    (e.g. fig2's thread-scheduler and CoreTime passes) become separate
    processes in one Chrome trace.
    """

    __slots__ = ("label",)
    kind = "run"

    def __init__(self, ts: int, label: str) -> None:
        self.ts = ts
        self.label = label


class CoreEvent(Event):
    """Base for events that happen on a specific core."""

    __slots__ = ("core",)

    def __init__(self, ts: int, core: int) -> None:
        self.ts = ts
        self.core = core


class ThreadSpawned(CoreEvent):
    __slots__ = ("thread",)
    kind = "spawn"

    def __init__(self, ts: int, core: int, thread: str) -> None:
        self.ts = ts
        self.core = core
        self.thread = thread


class ThreadFinished(CoreEvent):
    __slots__ = ("thread",)
    kind = "done"

    def __init__(self, ts: int, core: int, thread: str) -> None:
        self.ts = ts
        self.core = core
        self.thread = thread


class ThreadArrived(CoreEvent):
    """A migrating thread's context arrived at its target core."""

    __slots__ = ("thread",)
    kind = "arrive"

    def __init__(self, ts: int, core: int, thread: str) -> None:
        self.ts = ts
        self.core = core
        self.thread = thread


class MigrationStarted(CoreEvent):
    """A thread left ``core`` for ``target``; it lands at ``arrive_ts``."""

    __slots__ = ("thread", "target", "arrive_ts")
    kind = "migrate"

    def __init__(self, ts: int, core: int, thread: str, target: int,
                 arrive_ts: int) -> None:
        self.ts = ts
        self.core = core
        self.thread = thread
        self.target = target
        self.arrive_ts = arrive_ts


class SchedDecision(CoreEvent):
    """Outcome of a ``ct_start`` table lookup.

    ``target`` is None when the operation runs locally (object unassigned
    or already home); otherwise the core the operation migrates to.
    """

    __slots__ = ("thread", "obj", "target")
    kind = "sched"

    def __init__(self, ts: int, core: int, thread: str, obj: str,
                 target: Optional[int]) -> None:
        self.ts = ts
        self.core = core
        self.thread = thread
        self.obj = obj
        self.target = target


class OperationStarted(CoreEvent):
    __slots__ = ("thread", "obj")
    kind = "op_start"

    def __init__(self, ts: int, core: int, thread: str, obj: str) -> None:
        self.ts = ts
        self.core = core
        self.thread = thread
        self.obj = obj


class OperationFinished(CoreEvent):
    """An annotated operation completed on ``core`` after ``cycles``.

    The four attribution fields carry the per-operation counter deltas
    the offline analyzer (:mod:`repro.obs.profile`) breaks costs down
    with: DRAM line fetches, remote-cache hits, memory-stall cycles and
    lock-spin cycles measured between ``ct_start`` and ``ct_end``.  They
    are None when the operation migrated mid-flight (the entry snapshot
    belongs to a different core, so the delta would be garbage) — the
    analyzer counts such operations separately.
    """

    __slots__ = ("thread", "obj", "cycles", "dram", "remote", "mem_stall",
                 "spin")
    kind = "op_end"

    def __init__(self, ts: int, core: int, thread: str, obj: str,
                 cycles: int, dram: Optional[int] = None,
                 remote: Optional[int] = None,
                 mem_stall: Optional[int] = None,
                 spin: Optional[int] = None) -> None:
        self.ts = ts
        self.core = core
        self.thread = thread
        self.obj = obj
        self.cycles = cycles
        self.dram = dram
        self.remote = remote
        self.mem_stall = mem_stall
        self.spin = spin


class ObjectAssigned(CoreEvent):
    """CoreTime assigned ``obj`` to ``core``'s cache."""

    __slots__ = ("obj",)
    kind = "assign"

    def __init__(self, ts: int, core: int, obj: str) -> None:
        self.ts = ts
        self.core = core
        self.obj = obj


class ObjectMoved(CoreEvent):
    """The rebalancer moved ``obj`` from ``core`` to ``target``."""

    __slots__ = ("obj", "target", "heat")
    kind = "move"

    def __init__(self, ts: int, core: int, obj: str, target: int,
                 heat: float) -> None:
        self.ts = ts
        self.core = core
        self.obj = obj
        self.target = target
        self.heat = heat


class RebalanceRound(Event):
    """One monitoring-window rebalance pass finished (``moves`` moves)."""

    __slots__ = ("moves",)
    kind = "rebalance"

    def __init__(self, ts: int, moves: int) -> None:
        self.ts = ts
        self.moves = moves


class CacheEvicted(CoreEvent):
    """A line left the on-chip hierarchy (dropped from ``level``).

    ``obj`` names the object of the annotated operation running on the
    evicting core at that moment (None outside an operation), so the
    analyzer can attribute capacity pressure to the object being
    manipulated — the paper's §4 miss-attribution story, offline.
    """

    __slots__ = ("level", "line", "obj")
    kind = "evict"

    def __init__(self, ts: int, core: int, level: str, line: int,
                 obj: Optional[str] = None) -> None:
        self.ts = ts
        self.core = core
        self.level = level
        self.line = line
        self.obj = obj


class CacheInvalidated(CoreEvent):
    """A store on ``core`` invalidated ``copies`` remote copies of
    ``line``.

    ``obj`` names the object of the operation issuing the store (None
    outside an annotated operation); see :class:`CacheEvicted`.
    """

    __slots__ = ("line", "copies", "obj")
    kind = "invalidate"

    def __init__(self, ts: int, core: int, line: int, copies: int,
                 obj: Optional[str] = None) -> None:
        self.ts = ts
        self.core = core
        self.line = line
        self.copies = copies
        self.obj = obj


class LockContended(CoreEvent):
    """A thread hit a held spin-lock and started spinning.

    Emitted once per contended acquire (the first failed test-and-set),
    not per retry — the ``sim.lock_spins`` counter tracks every retry.
    """

    __slots__ = ("thread", "lock")
    kind = "lock_spin"

    def __init__(self, ts: int, core: int, thread: str, lock: str) -> None:
        self.ts = ts
        self.core = core
        self.thread = thread
        self.lock = lock


class FaultInjected(Event):
    """The verification layer injected a deterministic fault.

    Published by :class:`repro.verify.faults.FaultPlan` right before it
    mutates simulator state, so the flight recorder shows exactly what
    was broken (and when) next to the invariant violation that should
    follow it in a mutation self-test.
    """

    __slots__ = ("fault", "detail")
    kind = "fault"

    def __init__(self, ts: int, fault: str, detail: str) -> None:
        self.ts = ts
        self.fault = fault
        self.detail = detail


class SweepCaseStarted(Event):
    """repro.sweep dispatched one grid cell to a worker.

    ``ts`` is the dispatch sequence number, not a simulated cycle — a
    sweep spans many simulators with unrelated clocks, so the only
    meaningful order is dispatch order (deterministic for ``workers=0``).
    """

    __slots__ = ("case", "scheduler", "workload", "seed")
    kind = "sweep_start"

    def __init__(self, ts: int, case: str, scheduler: str, workload: str,
                 seed: Optional[int]) -> None:
        self.ts = ts
        self.case = case
        self.scheduler = scheduler
        self.workload = workload
        self.seed = seed


class SweepCaseFinished(Event):
    """One grid cell completed; ``kops`` is its measured throughput."""

    __slots__ = ("case", "scheduler", "workload", "kops", "cached")
    kind = "sweep_end"

    def __init__(self, ts: int, case: str, scheduler: str, workload: str,
                 kops: float, cached: bool = False) -> None:
        self.ts = ts
        self.case = case
        self.scheduler = scheduler
        self.workload = workload
        self.kops = kops
        self.cached = cached


class SweepCaseFailed(Event):
    """One grid cell crashed, timed out or raised; the sweep continues."""

    __slots__ = ("case", "scheduler", "workload", "error")
    kind = "sweep_fail"

    def __init__(self, ts: int, case: str, scheduler: str, workload: str,
                 error: str) -> None:
        self.ts = ts
        self.case = case
        self.scheduler = scheduler
        self.workload = workload
        self.error = error


class WorkerJoined(Event):
    """A sweep worker connected to the distributed coordinator.

    ``ts`` is the coordinator's dispatch sequence number (see
    :class:`SweepCaseStarted`); ``worker`` is the worker's self-reported
    name (``host-pid`` by default, ``local-N`` for pool workers).
    """

    __slots__ = ("worker",)
    kind = "worker_join"

    def __init__(self, ts: int, worker: str) -> None:
        self.ts = ts
        self.worker = worker


class WorkerLost(Event):
    """A sweep worker disconnected, went silent or was kicked.

    ``leases`` counts the leases reclaimed from it; each reclaimed lease
    also gets its own :class:`LeaseExpired` event, so the feed shows both
    the lost fleet member and every cell that went back in the queue.
    """

    __slots__ = ("worker", "leases")
    kind = "worker_lost"

    def __init__(self, ts: int, worker: str, leases: int) -> None:
        self.ts = ts
        self.worker = worker
        self.leases = leases


class LeaseExpired(Event):
    """A leased cell was reclaimed from its worker and requeued (or,
    past the retry budget, recorded as failed).

    ``reason`` distinguishes a heartbeat TTL expiry (``"expired"``), a
    lost connection (``"worker lost"``) and a per-case timeout kick
    (``"timeout"``); ``attempt`` is the attempt that just died.
    """

    __slots__ = ("case", "worker", "attempt", "reason")
    kind = "lease_expired"

    def __init__(self, ts: int, case: str, worker: str, attempt: int,
                 reason: str) -> None:
        self.ts = ts
        self.case = case
        self.worker = worker
        self.attempt = attempt
        self.reason = reason


class InvariantViolated(Event):
    """A machine-wide invariant failed its periodic check.

    Published by :class:`repro.verify.invariants.InvariantChecker` just
    before it raises, so the violation itself is the last record in the
    flight ring that gets drained into the exception.
    """

    __slots__ = ("rule", "detail")
    kind = "invariant"

    def __init__(self, ts: int, rule: str, detail: str) -> None:
        self.ts = ts
        self.rule = rule
        self.detail = detail


#: Control-plane events: cheap enough to record on every run with
#: observability enabled (at most a few per operation).
CONTROL_EVENTS: Tuple[Type[Event], ...] = (
    RunMarker, ThreadSpawned, ThreadFinished, ThreadArrived,
    MigrationStarted, SchedDecision, OperationStarted, OperationFinished,
    ObjectAssigned, ObjectMoved, RebalanceRound, LockContended,
    FaultInjected, InvariantViolated,
    SweepCaseStarted, SweepCaseFinished, SweepCaseFailed,
    WorkerJoined, WorkerLost, LeaseExpired,
)

#: Memory-system events: one per eviction/invalidation, far hotter than
#: the control plane; recorded only when explicitly requested
#: (``Observability(capture_memory=True)``).
MEMORY_EVENTS: Tuple[Type[Event], ...] = (CacheEvicted, CacheInvalidated)

ALL_EVENTS: Tuple[Type[Event], ...] = CONTROL_EVENTS + MEMORY_EVENTS

EVENT_KINDS: Dict[str, Type[Event]] = {e.kind: e for e in ALL_EVENTS}

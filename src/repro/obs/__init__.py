"""repro.obs — the unified observability subsystem.

One :class:`Observability` object is the telemetry spine for any number
of simulator runs: it owns the typed :class:`~repro.obs.bus.EventBus`,
the :class:`~repro.obs.metrics.MetricsRegistry`, a bounded
:class:`~repro.obs.bus.EventLog` for exporters and an always-recording
:class:`~repro.obs.flight.FlightRecorder` for post-mortems.  Attach it
with ``Simulator(machine, scheduler, obs=obs)``.

Design rules (see DESIGN.md, "Observability"):

* **Zero overhead when absent.**  Every publisher holds a local ``bus``
  reference that is ``None`` without observability; no event object is
  ever constructed on that path.
* **Pay only for what is watched.**  Publishers gate construction on
  ``bus.wants(EventType)``; hot memory-system events are excluded from
  the default subscriptions (``capture_memory=True`` opts in).
* **Metrics are push or pull.**  Hot counters push; values the simulator
  already tracks are pulled at snapshot time via ``gauge_fn``.

Quick use::

    from repro.obs import Observability

    obs = Observability()
    sim = Simulator(machine, CoreTimeScheduler(), obs=obs)
    workload.spawn_all(sim)
    result = sim.run(until=3_000_000)
    obs.write_chrome_trace("run.trace.json")   # load in Perfetto
    print(result.op_latency)                    # HistogramSummary
    print(obs.ascii_timeline())
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional

from repro.obs.bus import EventBus, EventLog
from repro.obs.events import (ALL_EVENTS, CONTROL_EVENTS, EVENT_KINDS,
                              MEMORY_EVENTS, CacheEvicted, CacheInvalidated,
                              Event, FaultInjected, InvariantViolated,
                              LockContended, MigrationStarted,
                              ObjectAssigned, ObjectMoved, OperationFinished,
                              OperationStarted, RebalanceRound, RunMarker,
                              LeaseExpired, SchedDecision, SweepCaseFailed,
                              SweepCaseFinished, SweepCaseStarted,
                              ThreadArrived, ThreadFinished, ThreadSpawned,
                              WorkerJoined, WorkerLost)
from repro.obs.export import (SCHEMA_VERSION, ascii_timeline, chrome_trace,
                              events_to_jsonl, write_chrome_trace,
                              write_jsonl)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (MIGRATION_BUCKETS, OP_LATENCY_BUCKETS,
                               QUEUE_DEPTH_BUCKETS, Counter, Gauge,
                               Histogram, HistogramSummary, MetricsRegistry)


class Observability:
    """Configuration + wiring for one telemetry pipeline.

    ``events``          record control-plane events into the event log
                        (needed by the exporters);
    ``metrics``         build a metrics registry for counters/histograms;
    ``flight``          ring-buffer capacity for the flight recorder
                        (0 disables it);
    ``capture_memory``  also record per-eviction / per-invalidation
                        events (hot; off by default);
    ``max_events``      event-log bound — exporters report what was
                        dropped rather than growing without limit;
    ``flight_path``     where :meth:`on_crash` writes the post-mortem
                        dump (default: stderr).
    """

    def __init__(self, events: bool = True, metrics: bool = True,
                 flight: int = 2048, capture_memory: bool = False,
                 max_events: int = 250_000,
                 flight_path: Optional[str] = None) -> None:
        self.bus = EventBus()
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None)
        self.log: Optional[EventLog] = (
            EventLog(max_events) if events else None)
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(flight) if flight > 0 else None)
        self.flight_path = flight_path
        self.capture_memory = capture_memory
        self.runs: List[str] = []
        recorded = CONTROL_EVENTS + (MEMORY_EVENTS if capture_memory
                                     else ())
        sink = self._recording_sink()
        if sink is not None:
            self.bus.subscribe(sink, *recorded)

    def _recording_sink(self):
        """One handler feeding both the event log and the flight ring.

        Every recorded event passes through here, so the combined sink
        avoids a second handler dispatch per event when both sinks are
        active (the common configuration).  Returns None when neither
        sink exists — subscribing a no-op would flip ``bus.wants`` and
        destroy the allocation-free disabled path.
        """
        log, flight = self.log, self.flight
        if flight is None:
            return log.record if log is not None else None
        if log is None:
            return flight.record

        def record(event, _log=log, _events=log.events,
                   _max=log.max_events, _flight=flight,
                   _ring_append=flight._ring.append):
            if len(_events) < _max:
                _events.append(event)
            else:
                _log.dropped += 1
            _ring_append(event)
            _flight.recorded += 1

        return record

    # ------------------------------------------------------------------
    # simulator attachment
    # ------------------------------------------------------------------

    def begin_run(self, label: str, ts: int = 0) -> None:
        """Mark the start of one simulator run (exporters split here)."""
        self.runs.append(label)
        if self.bus.wants(RunMarker):
            self.bus.publish(RunMarker(ts, label))

    def events(self) -> List[Event]:
        """Recorded events (empty when ``events=False``)."""
        return list(self.log.events) if self.log is not None else []

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        return chrome_trace(self.events())

    def write_chrome_trace(self, path: str) -> str:
        return write_chrome_trace(path, self.events())

    def write_jsonl(self, path: str) -> str:
        """Dump the event log as JSONL; ``.jsonl.gz`` paths gzip it."""
        return write_jsonl(path, self.events())

    def ascii_timeline(self, n_cores: Optional[int] = None,
                       width: int = 72) -> str:
        return ascii_timeline(self.events(), n_cores=n_cores, width=width)

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.metrics.snapshot() if self.metrics is not None else {}

    def profile_report(self, top: int = 10, width: int = 72) -> str:
        """Offline attribution report over the recorded events.

        Same output as ``repro-analyze report`` on a JSONL dump of this
        pipeline; one section per recorded run.  Imports the analyzer
        lazily — the profiling layer stays off the simulation path.
        """
        from repro.obs.profile import render_stream_report
        return render_stream_report(self.events(), top=top, width=width)

    # ------------------------------------------------------------------
    # post-mortem
    # ------------------------------------------------------------------

    def on_crash(self, exc: BaseException) -> Optional[str]:
        """Dump the flight recorder after a failed run.

        Returns the dump path when ``flight_path`` is set; otherwise the
        dump goes to stderr and None is returned.  Called by the engine —
        the exception is re-raised by the caller, this only preserves the
        evidence.
        """
        if self.flight is None or len(self.flight) == 0:
            return None
        reason = f"{type(exc).__name__}: {exc}"
        if self.flight_path is not None:
            return self.flight.dump_to_file(self.flight_path, reason)
        self.flight.dump(sys.stderr, reason)
        return None


__all__ = [
    "ALL_EVENTS",
    "SCHEMA_VERSION",
    "CONTROL_EVENTS",
    "EVENT_KINDS",
    "MEMORY_EVENTS",
    "MIGRATION_BUCKETS",
    "OP_LATENCY_BUCKETS",
    "QUEUE_DEPTH_BUCKETS",
    "CacheEvicted",
    "CacheInvalidated",
    "Counter",
    "Event",
    "EventBus",
    "EventLog",
    "FaultInjected",
    "FlightRecorder",
    "InvariantViolated",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "LeaseExpired",
    "LockContended",
    "MetricsRegistry",
    "MigrationStarted",
    "ObjectAssigned",
    "ObjectMoved",
    "Observability",
    "OperationFinished",
    "OperationStarted",
    "RebalanceRound",
    "RunMarker",
    "SchedDecision",
    "SweepCaseFailed",
    "SweepCaseFinished",
    "SweepCaseStarted",
    "ThreadArrived",
    "ThreadFinished",
    "ThreadSpawned",
    "WorkerJoined",
    "WorkerLost",
    "ascii_timeline",
    "chrome_trace",
    "events_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]

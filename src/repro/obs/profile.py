"""Offline performance attribution over recorded event streams.

The paper's §4 story is that event counters *explain* performance:
misses are attributed to the object being manipulated, and per-core
counters reveal overloaded cores and overpacked caches.  The online
:class:`~repro.core.monitor.Monitor` consumes those signals live; this
module reproduces the same explanations *offline*, from the JSONL event
streams and metrics snapshots :mod:`repro.obs` already exports — so a
recorded run can be profiled, compared and regression-gated long after
the simulator is gone.

Pipeline::

    recording = load_jsonl("fig2.events.jsonl")   # typed events again
    for run in split_runs(recording.events):      # one per simulator
        print(render_report(run))                 # attribution & co
    print(render_diff(diff_streams(base.events, cand.events)))

Everything here is strictly off the hot path: the simulator never
imports this module, so profiling adds zero overhead to a run that does
not ask for it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Type)

from repro.analysis import SampleStats, summarise
from repro.errors import ProfileError
from repro.obs.events import (EVENT_KINDS, CacheEvicted, CacheInvalidated,
                              Event, LockContended, MigrationStarted,
                              OperationFinished, RunMarker)
from repro.obs.export import SCHEMA_VERSION, open_text

__all__ = [
    "Recording", "Run", "ObjectCost", "CoreBreakdown", "LockStat",
    "StreamSummary", "MetricDelta", "EventDecoder", "load_jsonl",
    "parse_jsonl", "iter_jsonl",
    "split_runs", "object_costs", "core_breakdown", "migration_matrix",
    "lock_table", "occupancy_timeline", "folded_stacks",
    "summarise_stream", "diff_streams", "render_report", "render_diff",
    "render_migration_matrix", "render_lock_table", "diff_metrics",
]


# ---------------------------------------------------------------------------
# ingest: JSONL -> typed events
# ---------------------------------------------------------------------------

@dataclass
class Recording:
    """One parsed JSONL stream."""

    schema_version: int
    events: List[Event]

    @property
    def horizon(self) -> int:
        return stream_horizon(self.events)


def _fields_of(cls: Type[Event]) -> Tuple[str, ...]:
    """Slot names of an event class, base-first (mirrors Event._fields)."""
    names: List[str] = []
    for klass in reversed(cls.__mro__):
        names.extend(getattr(klass, "__slots__", ()))
    return tuple(names)


class EventDecoder:
    """Incremental JSONL/dict -> typed-event decoder.

    One decoder carries the stream's schema state (the ``meta`` header)
    across lines, so both the batch loader and the generator-based
    streaming ingest share identical validation.  Error messages are
    prefixed with ``source`` when given — with ``repro-analyze merge``
    taking many shard files, a bare ``line N`` is ambiguous.

    Repeated ``meta`` lines are accepted mid-stream: concatenated shard
    recordings (``cat a.jsonl.gz b.jsonl.gz``) are valid streams.
    """

    def __init__(self, source: Optional[str] = None) -> None:
        self.source = source
        self.schema = 1          # headerless = legacy
        self.saw_meta = False

    def _error(self, where: str, message: str) -> ProfileError:
        prefix = f"{self.source}: " if self.source else ""
        return ProfileError(f"{prefix}{where}: {message}")

    def decode_line(self, raw: str, lineno: int) -> Optional[Event]:
        """Decode one text line; None for blanks and ``meta`` headers."""
        line = raw.strip()
        if not line:
            return None
        where = f"line {lineno}"
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise self._error(where, f"not valid JSON: {exc}")
        if not isinstance(data, dict) or "kind" not in data:
            raise self._error(
                where, "expected an object with a 'kind' field")
        return self.decode(data, where)

    def decode(self, data: Dict[str, Any],
               where: str = "event") -> Optional[Event]:
        """Decode one ``as_dict``-shaped mapping; None for ``meta``."""
        kind = data["kind"]
        if kind == "meta":
            version = data.get("schema_version")
            if not isinstance(version, int) or version < 1:
                raise self._error(
                    where, f"bad schema_version {version!r}")
            if version > SCHEMA_VERSION:
                raise self._error(
                    where, f"stream schema version {version} is "
                    f"newer than this analyzer ({SCHEMA_VERSION}); "
                    "upgrade repro")
            self.schema = version
            self.saw_meta = True
            return None
        cls = EVENT_KINDS.get(kind)
        if cls is None:
            raise self._error(where, f"unknown event kind {kind!r}")
        fields = _fields_of(cls)
        given = set(data) - {"kind"}
        missing = set(fields) - given
        extra = given - set(fields)
        if extra:
            raise self._error(
                where, f"{kind} carries unknown fields {sorted(extra)}")
        if missing and (self.schema >= SCHEMA_VERSION or self.saw_meta):
            raise self._error(
                where, f"{kind} is missing fields {sorted(missing)}")
        event = object.__new__(cls)
        for name in fields:
            setattr(event, name, data.get(name))
        return event


def parse_jsonl(lines: Iterable[str],
                source: Optional[str] = None) -> Recording:
    """Reconstruct typed events from JSONL text lines.

    Validates the ``meta`` header's ``schema_version`` (streams newer
    than :data:`~repro.obs.export.SCHEMA_VERSION` are refused) and that
    every event line carries exactly the fields its kind declares.
    Streams without a header — PR 1's exporter predates it — are read as
    schema version 1, where the attribution fields introduced in
    version 2 are absent and default to None.
    """
    decoder = EventDecoder(source=source)
    events: List[Event] = []
    for lineno, raw in enumerate(lines, 1):
        event = decoder.decode_line(raw, lineno)
        if event is not None:
            events.append(event)
    return Recording(schema_version=decoder.schema, events=events)


def load_jsonl(path: str) -> Recording:
    """Parse a JSONL file written by ``Observability.write_jsonl``.

    ``.jsonl.gz`` recordings are opened transparently; parse errors name
    the file.
    """
    with open_text(path, "r") as handle:
        return parse_jsonl(handle, source=path)


def iter_jsonl(path: str) -> Iterator[Event]:
    """Stream a recording one event at a time (out-of-core ingest).

    A generator over the same validation as :func:`load_jsonl` that
    never holds more than one event, so multi-GB fleet recordings
    (plain or ``.gz``) can feed :class:`repro.obs.stream.StreamProfiler`
    at constant memory.
    """
    decoder = EventDecoder(source=path)
    with open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, 1):
            event = decoder.decode_line(raw, lineno)
            if event is not None:
                yield event


@dataclass
class Run:
    """One simulator run's slice of an event stream."""

    label: str
    events: List[Event]


def split_runs(events: Sequence[Event]) -> List[Run]:
    """Split a stream on :class:`RunMarker` into per-simulator runs.

    Events before the first marker (streams recorded without one) become
    a run labelled ``"run"``.  Labels repeat as recorded; callers that
    need unique names should add the index themselves.
    """
    runs: List[Run] = []
    current: Optional[Run] = None
    for event in events:
        if type(event) is RunMarker:
            current = Run(event.label, [])
            runs.append(current)
            continue
        if current is None:
            current = Run("run", [])
            runs.append(current)
        current.events.append(event)
    return runs


def stream_horizon(events: Sequence[Event]) -> int:
    """Last cycle touched by any event (migrations count their landing)."""
    horizon = 0
    for event in events:
        ts = event.ts
        if type(event) is MigrationStarted and event.arrive_ts > ts:
            ts = event.arrive_ts
        if ts > horizon:
            horizon = ts
    return horizon


# ---------------------------------------------------------------------------
# per-object attribution
# ---------------------------------------------------------------------------

@dataclass
class ObjectCost:
    """Everything one object cost the machine, mirroring §4's monitor."""

    name: str
    ops: int = 0
    cycles: int = 0
    #: Operations with valid counter deltas (ran on one core end to end).
    attributed_ops: int = 0
    dram_loads: int = 0
    remote_hits: int = 0
    mem_stall_cycles: int = 0
    spin_cycles: int = 0
    #: Migrations triggered while operating on this object, and the
    #: cycles threads spent in flight for them.
    migrations: int = 0
    migration_cycles: int = 0
    #: Memory-event attribution (``capture_memory`` streams only).
    evictions: int = 0
    invalidations: int = 0

    @property
    def total_cycles(self) -> int:
        """Execution plus in-flight migration cycles — the ranking key."""
        return self.cycles + self.migration_cycles

    @property
    def cycles_per_op(self) -> float:
        return self.cycles / self.ops if self.ops else 0.0

    def per_attributed_op(self, value: int) -> float:
        return value / self.attributed_ops if self.attributed_ops else 0.0


def object_costs(events: Sequence[Event]) -> List[ObjectCost]:
    """Attribute cycles, misses and migrations to objects.

    Returned most-expensive first (by :attr:`ObjectCost.total_cycles`).
    Migrations are charged to the object of the operation in progress on
    the migrating thread; a migration outside any operation is nobody's
    fault and lands on the pseudo-object ``(no operation)``.

    Thin wrapper over the streaming
    :class:`repro.obs.stream.ObjectCostsReducer` (single source of
    truth for the attribution rules).
    """
    from repro.obs.stream import ObjectCostsReducer
    reducer = ObjectCostsReducer()
    for event in events:
        reducer.feed(event)
    return reducer.result()


# ---------------------------------------------------------------------------
# per-core time breakdown
# ---------------------------------------------------------------------------

@dataclass
class CoreBreakdown:
    """Where one core's cycles went over the recorded horizon.

    Derived purely from events, so it is an *attribution* of the horizon,
    not a cycle-exact ledger.  ``busy`` sums the cycles of operations
    that ran wholly on this core (those carry valid counter deltas and
    occupy the core continuously); ``mem_stall`` and ``spin`` are the
    attributed slices of that busy time.  An operation that migrated
    mid-flight spans several cores plus queue and flight time, so its
    cycles cannot be placed on any single core — it is reported in
    ``unplaced_ops``/``unplaced_cycles`` on the core it *finished* on
    instead of inflating ``busy``.  ``migrating`` is in-flight time of
    threads the core handed away.
    """

    core: int
    horizon: int
    ops: int = 0
    busy: int = 0
    mem_stall: int = 0
    spin: int = 0
    migrating: int = 0
    unplaced_ops: int = 0
    unplaced_cycles: int = 0

    @property
    def idle(self) -> int:
        """Horizon not covered by local busy or out-migration.

        Includes unannotated work and the unplaceable share of
        cross-core operations, so read it as an upper bound.
        """
        return max(0, self.horizon - self.busy - self.migrating)

    def frac(self, value: int) -> float:
        return value / self.horizon if self.horizon else 0.0


def core_breakdown(events: Sequence[Event],
                   horizon: Optional[int] = None) -> List[CoreBreakdown]:
    """Per-core busy/mem-stall/spin/migrating/idle attribution."""
    from repro.obs.stream import CoreBreakdownReducer
    if horizon is None:
        horizon = stream_horizon(events)
    reducer = CoreBreakdownReducer()
    for event in events:
        reducer.feed(event)
    return reducer.result(horizon)


# ---------------------------------------------------------------------------
# migration matrix & lock contention
# ---------------------------------------------------------------------------

def migration_matrix(events: Sequence[Event]) -> Dict[Tuple[int, int], int]:
    """``(from_core, to_core) -> count`` over all migrations."""
    from repro.obs.stream import MigrationMatrixReducer
    reducer = MigrationMatrixReducer()
    for event in events:
        reducer.feed(event)
    return reducer.result()


@dataclass
class LockStat:
    """Contention on one lock."""

    name: str
    contended_acquires: int = 0
    threads: set = field(default_factory=set)
    per_core: Dict[int, int] = field(default_factory=dict)

    @property
    def hottest_core(self) -> Optional[int]:
        if not self.per_core:
            return None
        return max(self.per_core, key=lambda c: (self.per_core[c], -c))


def lock_table(events: Sequence[Event]) -> List[LockStat]:
    """Per-lock contention, most contended first."""
    from repro.obs.stream import LockTableReducer
    reducer = LockTableReducer()
    for event in events:
        reducer.feed(event)
    return reducer.result()


# ---------------------------------------------------------------------------
# cache occupancy timeline
# ---------------------------------------------------------------------------

def occupancy_timeline(events: Sequence[Event], n_cores: Optional[int] = None,
                       width: int = 72) -> str:
    """Assigned-object count per core cache over time (ASCII strip).

    Built from ``assign``/``move`` events: each column is a time bucket,
    the glyph is the number of objects assigned to that core's cache at
    the bucket's end (``0``–``9``, then ``+``).  A consistently high row
    next to starved rows is the paper's overpacked-cache signal.

    Wrapper over :class:`repro.obs.stream.OccupancyReducer` with the
    same default sample capacity, so batch and streaming reports prune
    (and annotate) giant recordings identically.
    """
    from repro.obs.stream import OccupancyReducer
    reducer = OccupancyReducer()
    for event in events:
        reducer.feed(event)
    return reducer.render(stream_horizon(events), n_cores=n_cores,
                          width=width)


# ---------------------------------------------------------------------------
# folded stacks (speedscope / flamegraph.pl)
# ---------------------------------------------------------------------------

def folded_stacks(events: Sequence[Event], label: str = "run") -> List[str]:
    """``workload;object;phase cycles`` lines for flame-graph tools.

    Phases per object: ``compute`` (cycles minus attributed stalls),
    ``mem-stall``, ``lock-spin``, ``migration``, and ``unattributed``
    for operations whose deltas were lost to a mid-flight migration.
    Load the output with speedscope (https://speedscope.app) or pipe it
    through ``flamegraph.pl``.
    """
    lines: List[str] = []
    for cost in object_costs(events):
        attributed_cycles = 0
        if cost.attributed_ops and cost.ops:
            # Deltas cover only attributed ops; scale busy cycles by the
            # attributed share so phases never exceed measured cycles.
            attributed_cycles = round(
                cost.cycles * cost.attributed_ops / cost.ops)
        stalls = min(attributed_cycles,
                     cost.mem_stall_cycles + cost.spin_cycles)
        compute = max(0, attributed_cycles - stalls)
        unattributed = max(0, cost.cycles - attributed_cycles)
        phases = (("compute", compute),
                  ("mem-stall", cost.mem_stall_cycles),
                  ("lock-spin", cost.spin_cycles),
                  ("migration", cost.migration_cycles),
                  ("unattributed", unattributed))
        for phase, cycles in phases:
            if cycles > 0:
                lines.append(f"{label};{cost.name};{phase} {cycles}")
    return lines


# ---------------------------------------------------------------------------
# stream summary & diff
# ---------------------------------------------------------------------------

@dataclass
class StreamSummary:
    """Per-metric samples and counts for one recording (diff fodder)."""

    label: str
    horizon: int
    ops: int
    migrations: int
    migration_cycles: int
    lock_contended: int
    evictions: int
    invalidations: int
    op_cycles: List[int]
    op_dram: List[int]
    op_remote: List[int]
    op_mem_stall: List[int]
    op_spin: List[int]


def summarise_stream(events: Sequence[Event],
                     label: str = "run") -> StreamSummary:
    """Collect the per-operation samples and counts a diff compares."""
    op_cycles: List[int] = []
    op_dram: List[int] = []
    op_remote: List[int] = []
    op_mem: List[int] = []
    op_spin: List[int] = []
    migrations = migration_cycles = lock_contended = 0
    evictions = invalidations = 0
    for event in events:
        etype = type(event)
        if etype is OperationFinished:
            op_cycles.append(event.cycles)
            if event.dram is not None:
                op_dram.append(event.dram)
                op_remote.append(event.remote)
                op_mem.append(event.mem_stall)
                op_spin.append(event.spin)
        elif etype is MigrationStarted:
            migrations += 1
            migration_cycles += event.arrive_ts - event.ts
        elif etype is LockContended:
            lock_contended += 1
        elif etype is CacheEvicted:
            evictions += 1
        elif etype is CacheInvalidated:
            invalidations += event.copies
    return StreamSummary(
        label=label, horizon=stream_horizon(events), ops=len(op_cycles),
        migrations=migrations, migration_cycles=migration_cycles,
        lock_contended=lock_contended, evictions=evictions,
        invalidations=invalidations, op_cycles=op_cycles, op_dram=op_dram,
        op_remote=op_remote, op_mem_stall=op_mem, op_spin=op_spin)


@dataclass
class MetricDelta:
    """One metric's baseline/candidate comparison."""

    name: str
    baseline: Optional[SampleStats]
    candidate: Optional[SampleStats]
    #: Plain values for count metrics (no per-sample distribution).
    baseline_value: Optional[float] = None
    candidate_value: Optional[float] = None

    @property
    def sampled(self) -> bool:
        return self.baseline is not None and self.candidate is not None

    @property
    def delta(self) -> float:
        if self.sampled:
            return self.candidate.mean - self.baseline.mean
        return (self.candidate_value or 0.0) - (self.baseline_value or 0.0)

    @property
    def delta_pct(self) -> Optional[float]:
        base = (self.baseline.mean if self.sampled
                else self.baseline_value)
        if not base:
            return None
        return 100.0 * self.delta / base

    @property
    def ci95(self) -> Optional[float]:
        """95% half-width of the delta (independent-samples normal
        approximation); None for count metrics."""
        if not self.sampled:
            return None
        se = (self.baseline.stderr ** 2
              + self.candidate.stderr ** 2) ** 0.5
        return 1.96 * se

    @property
    def significant(self) -> Optional[bool]:
        ci = self.ci95
        if ci is None:
            return None
        return abs(self.delta) > ci


def _sample_delta(name: str, base: List[int],
                  cand: List[int]) -> Optional[MetricDelta]:
    if not base or not cand:
        return None
    return MetricDelta(name, summarise(base), summarise(cand))


def diff_streams(baseline: Sequence[Event], candidate: Sequence[Event],
                 baseline_label: str = "baseline",
                 candidate_label: str = "candidate") -> List[MetricDelta]:
    """Per-metric deltas between two recordings, CI-qualified.

    Sample metrics (per-operation distributions) carry
    :class:`~repro.analysis.SampleStats` confidence intervals so a
    scheduler A/B — or a bench-regression gate — can tell signal from
    seed noise; count metrics report plain deltas.
    """
    base = summarise_stream(baseline, baseline_label)
    cand = summarise_stream(candidate, candidate_label)
    deltas: List[MetricDelta] = []
    for name, bvals, cvals in (
            ("op latency (cycles/op)", base.op_cycles, cand.op_cycles),
            ("dram loads/op", base.op_dram, cand.op_dram),
            ("remote hits/op", base.op_remote, cand.op_remote),
            ("mem-stall (cycles/op)", base.op_mem_stall, cand.op_mem_stall),
            ("lock-spin (cycles/op)", base.op_spin, cand.op_spin)):
        delta = _sample_delta(name, bvals, cvals)
        if delta is not None:
            deltas.append(delta)
    for name, bval, cval in (
            ("ops", base.ops, cand.ops),
            ("migrations", base.migrations, cand.migrations),
            ("migration cycles", base.migration_cycles,
             cand.migration_cycles),
            ("contended lock acquires", base.lock_contended,
             cand.lock_contended),
            ("L3 evictions", base.evictions, cand.evictions),
            ("invalidated copies", base.invalidations,
             cand.invalidations),
            ("horizon (cycles)", base.horizon, cand.horizon)):
        if bval or cval:
            deltas.append(MetricDelta(name, None, None,
                                      float(bval), float(cval)))
    return deltas


def diff_metrics(baseline: Dict[str, Any],
                 candidate: Dict[str, Any]) -> List[MetricDelta]:
    """Deltas between two metrics-registry snapshots (JSON dicts).

    Scalar instruments compare directly; histogram summaries compare by
    their mean.  Metrics present on only one side are skipped.
    """
    deltas: List[MetricDelta] = []
    for name in sorted(set(baseline) & set(candidate)):
        bval, cval = baseline[name], candidate[name]
        if isinstance(bval, dict):
            bval, cval = bval.get("mean"), (cval or {}).get("mean")
            name = f"{name}.mean"
        if isinstance(bval, (int, float)) and isinstance(cval, (int, float)):
            deltas.append(MetricDelta(name, None, None,
                                      float(bval), float(cval)))
    return deltas


# ---------------------------------------------------------------------------
# text rendering
# ---------------------------------------------------------------------------

def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [max(len(headers[i]), *(len(row[i]) for row in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_object_costs(costs: Sequence[ObjectCost],
                        top: int = 10) -> str:
    """Top-N attribution table, §4's per-object story as text."""
    if not costs:
        return "(no annotated operations recorded)"
    rows = []
    for cost in costs[:top]:
        stall_pct = (100.0 * cost.mem_stall_cycles / cost.cycles
                     if cost.cycles else 0.0)
        rows.append([
            cost.name,
            f"{cost.ops:,}",
            f"{cost.total_cycles:,}",
            f"{cost.cycles_per_op:,.0f}",
            f"{cost.per_attributed_op(cost.dram_loads):.2f}",
            f"{cost.per_attributed_op(cost.remote_hits):.2f}",
            f"{stall_pct:.0f}%",
            f"{cost.per_attributed_op(cost.spin_cycles):,.0f}",
            f"{cost.migrations:,}",
            f"{cost.migration_cycles:,}",
        ])
    table = _table(
        ["object", "ops", "cycles", "cyc/op", "dram/op", "remote/op",
         "stall", "spin/op", "migr", "migr-cyc"], rows)
    shown = min(top, len(costs))
    dropped = len(costs) - shown
    note = f"; {dropped:,} rows dropped" if dropped else ""
    return (f"Per-object attribution (top {shown} of {len(costs)} "
            "by total cycles; dram/remote/stall/spin over attributed "
            f"ops{note})\n{table}")


def render_core_breakdown(cores: Sequence[CoreBreakdown]) -> str:
    if not cores:
        return "(no per-core activity recorded)"
    rows = []
    for item in cores:
        rows.append([
            str(item.core),
            f"{item.ops:,}",
            f"{100 * item.frac(item.busy):.0f}%",
            f"{100 * item.frac(item.mem_stall):.0f}%",
            f"{100 * item.frac(item.spin):.0f}%",
            f"{100 * item.frac(item.migrating):.0f}%",
            f"{100 * item.frac(item.idle):.0f}%",
            f"{item.unplaced_ops:,}",
        ])
    table = _table(
        ["core", "ops", "busy", "mem-stall", "spin", "migrating",
         "idle/other", "x-core ops"], rows)
    horizon = cores[0].horizon
    return (f"Per-core time breakdown over {horizon:,} cycles "
            "(busy = operations that ran wholly on the core; "
            "x-core ops finished here\nafter migrating, so their cycles "
            f"are not placed on any single core)\n{table}")


def render_migration_matrix(matrix: Dict[Tuple[int, int], int]) -> str:
    if not matrix:
        return "(no migrations recorded)"
    cores = sorted({core for pair in matrix for core in pair})
    headers = ["from\\to"] + [str(core) for core in cores] + ["total"]
    rows = []
    for source in cores:
        row = [str(source)]
        total = 0
        for target in cores:
            count = matrix.get((source, target), 0)
            total += count
            row.append(f"{count:,}" if count else ".")
        row.append(f"{total:,}")
        rows.append(row)
    return ("Core-to-core migration matrix (rows = departing core)\n"
            + _table(headers, rows))


def render_lock_table(locks: Sequence[LockStat], top: int = 10) -> str:
    if not locks:
        return "(no lock contention recorded)"
    rows = [[stat.name, f"{stat.contended_acquires:,}",
             str(len(stat.threads)), str(stat.hottest_core)]
            for stat in locks[:top]]
    shown = min(top, len(locks))
    dropped = len(locks) - shown
    note = (f" (top {shown} of {len(locks)}; {dropped:,} rows dropped)"
            if dropped else "")
    return (f"Lock contention (one event per contended acquire){note}\n"
            + _table(["lock", "contended", "threads", "hottest core"],
                     rows))


def render_diff(deltas: Sequence[MetricDelta]) -> str:
    """Diff table; sampled metrics carry ±CI95 and a significance flag."""
    if not deltas:
        return "(no comparable metrics)"
    rows = []
    for delta in deltas:
        if delta.sampled:
            base = (f"{delta.baseline.mean:,.1f}"
                    f"±{1.96 * delta.baseline.stderr:,.1f}")
            cand = (f"{delta.candidate.mean:,.1f}"
                    f"±{1.96 * delta.candidate.stderr:,.1f}")
            verdict = ("significant" if delta.significant
                       else "within noise")
            change = f"{delta.delta:+,.1f} ± {delta.ci95:,.1f}"
        else:
            base = f"{delta.baseline_value:,.0f}"
            cand = f"{delta.candidate_value:,.0f}"
            verdict = ""
            change = f"{delta.delta:+,.0f}"
        pct = delta.delta_pct
        change += f" ({pct:+.1f}%)" if pct is not None else ""
        rows.append([delta.name, base, cand, change, verdict])
    return _table(["metric", "baseline", "candidate", "delta", ""], rows)


def render_report(run: Run, top: int = 10, width: int = 72) -> str:
    """Full offline report for one run: every §4 explanation as text.

    Rebased on the streaming core: one :class:`repro.obs.stream
    .RunProfile` fed with the run's events renders exactly this report,
    which is what makes ``repro-analyze report --stream`` byte-identical
    to the batch path.
    """
    from repro.obs.stream import RunProfile
    return RunProfile.from_events(run.label, run.events).render(
        top=top, width=width)


def render_stream_report(events: Sequence[Event], top: int = 10,
                         width: int = 72) -> str:
    """Report every run in a stream (streams may hold several)."""
    return "\n\n".join(render_report(run, top=top, width=width)
                       for run in split_runs(events))

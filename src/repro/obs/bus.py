"""The event bus: typed publish/subscribe with a zero-overhead gate.

Publishers follow one discipline everywhere in the simulator::

    bus = self._bus                  # None when observability is off
    if bus is not None and bus.wants(OperationFinished):
        bus.publish(OperationFinished(...))

``wants`` is a set-membership test, so a disabled or unsubscribed event
type costs one lookup and — crucially — **no event allocation**.  With no
bus attached the publisher pays a single ``is not None`` check, keeping
the simulator's hot path identical to a build without observability.

Handlers are plain callables taking the event.  A handler may subscribe
to specific event classes or (with no classes given) to everything.
Exact-type matching is used, mirroring ``type(event)`` dispatch in the
engine itself; subscribing to a base class does not capture subclasses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.obs.events import Event

Handler = Callable[[Event], None]


class EventBus:
    """Synchronous typed pub/sub hub."""

    __slots__ = ("_subs", "_all", "published", "dropped_unwanted")

    def __init__(self) -> None:
        self._subs: Dict[Type[Event], List[Handler]] = {}
        self._all: List[Handler] = []
        #: Events delivered to at least one handler.
        self.published = 0
        #: ``publish`` calls that found no handler (indicates a caller
        #: skipping the ``wants`` gate; should stay 0 in the engine).
        self.dropped_unwanted = 0

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------

    def subscribe(self, handler: Handler,
                  *event_types: Type[Event]) -> Handler:
        """Register ``handler`` for ``event_types`` (or all events).

        Returns the handler so call sites can keep the token for
        :meth:`unsubscribe`.
        """
        if not event_types:
            self._all.append(handler)
        else:
            for etype in event_types:
                self._subs.setdefault(etype, []).append(handler)
        return handler

    def unsubscribe(self, handler: Handler,
                    *event_types: Type[Event]) -> None:
        """Remove ``handler`` from ``event_types`` (or from everywhere).

        Unknown registrations are ignored, so tear-down is idempotent.
        """
        if event_types:
            targets = [(etype, self._subs.get(etype)) for etype in event_types]
        else:
            targets = [(etype, handlers)
                       for etype, handlers in self._subs.items()]
            while handler in self._all:
                self._all.remove(handler)
        for etype, handlers in targets:
            if not handlers:
                continue
            while handler in handlers:
                handlers.remove(handler)
            if not handlers:
                self._subs.pop(etype, None)

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------

    def wants(self, event_type: Type[Event]) -> bool:
        """Would an event of this type reach any handler?

        Publishers call this *before* constructing the event, which is
        what keeps unobserved paths allocation-free.
        """
        return bool(self._all) or event_type in self._subs

    def publish(self, event: Event) -> None:
        delivered = False
        for handler in self._all:
            handler(event)
            delivered = True
        handlers = self._subs.get(type(event))
        if handlers:
            for handler in handlers:
                handler(event)
            delivered = True
        if delivered:
            self.published += 1
        else:
            self.dropped_unwanted += 1

    # ------------------------------------------------------------------

    def handler_count(self) -> int:
        return len(self._all) + sum(len(h) for h in self._subs.values())

    def __repr__(self) -> str:
        return (f"EventBus({self.handler_count()} handlers, "
                f"{self.published} published)")


class EventLog:
    """A bounded in-memory sink for exporters.

    Keeps the first ``max_events`` events and counts the rest, so a long
    sweep cannot consume unbounded memory while short runs (the normal
    tracing case) are captured completely.  The cap is reported by
    exporters rather than silently truncating.
    """

    __slots__ = ("events", "max_events", "dropped")

    def __init__(self, max_events: int = 250_000) -> None:
        self.events: List[Event] = []
        self.max_events = max_events
        self.dropped = 0

    def __call__(self, event: Event) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped += 1

    record = __call__

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

"""repro — a reproduction of "Reinventing Scheduling for Multicore
Systems" (Boyd-Wickizer, Morris, Kaashoek; HotOS 2009).

The package implements the paper's O2 scheduler, **CoreTime**, together
with everything it runs on: a deterministic discrete-event multicore
simulator (caches, coherence, interconnect, DRAM), a cooperative threading
runtime, baseline thread schedulers, and the modified-EFSL FAT file system
used in the paper's evaluation.

Quick start::

    from repro import (Machine, MachineSpec, Simulator,
                       CoreTimeScheduler, ThreadScheduler,
                       DirectoryLookupWorkload, DirWorkloadSpec)

    machine = Machine(MachineSpec.scaled(8))
    sim = Simulator(machine, CoreTimeScheduler())
    workload = DirectoryLookupWorkload(machine, DirWorkloadSpec.scaled(8))
    workload.spawn_all(sim)
    result = sim.run(until=2_000_000)
    print(result.kops_per_sec, "thousand resolutions/s")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro._version import __version__
from repro.core import (CoreTimeConfig, CoreTimeScheduler, CtObject,
                        ObjectTable, ct_object, operation)
from repro.cpu import Core, LatencySpec, Machine, MachineSpec
from repro.errors import (ConfigError, DeadlockError, FilesystemError,
                          PackingError, ReproError, SchedulerError,
                          SimulationError)
from repro.fs import EfslFat, FatFilesystem
from repro.obs import Observability
from repro.sched import (SchedulerRuntime, ThreadClusteringScheduler,
                         ThreadScheduler, WorkStealingScheduler)
from repro.sim import RunResult, Simulator
from repro.threads import SimThread, SpinLock
from repro.workloads import (DirectoryLookupWorkload, DirWorkloadSpec,
                             ObjectOpsSpec, ObjectOpsWorkload,
                             OperationTrace, TraceReplayWorkload,
                             WebServerSpec, WebServerWorkload)

__all__ = [
    "ConfigError",
    "Core",
    "CoreTimeConfig",
    "CoreTimeScheduler",
    "CtObject",
    "DeadlockError",
    "DirWorkloadSpec",
    "DirectoryLookupWorkload",
    "EfslFat",
    "FatFilesystem",
    "FilesystemError",
    "LatencySpec",
    "Machine",
    "MachineSpec",
    "ObjectOpsSpec",
    "ObjectOpsWorkload",
    "ObjectTable",
    "Observability",
    "OperationTrace",
    "TraceReplayWorkload",
    "WebServerSpec",
    "WebServerWorkload",
    "PackingError",
    "ReproError",
    "RunResult",
    "SchedulerError",
    "SchedulerRuntime",
    "SimThread",
    "SimulationError",
    "Simulator",
    "SpinLock",
    "ThreadClusteringScheduler",
    "ThreadScheduler",
    "WorkStealingScheduler",
    "ct_object",
    "operation",
    "__version__",
]

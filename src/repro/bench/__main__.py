"""Command-line entry point: ``python -m repro.bench <experiment>``.

Regenerates any figure or ablation from DESIGN.md §4 and writes the text
report to ``benchmarks/results/``.  ``all`` runs everything; ``--full``
uses the long profile for the two paper figures.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import EXPERIMENTS
from repro.bench.report import save_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures and the ablations.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which experiment to run")
    parser.add_argument("--full", action="store_true",
                        help="long profile (more points, longer windows) "
                             "for fig4a/fig4b")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the report file paths")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        runner = EXPERIMENTS[name]
        kwargs = {}
        if name in ("fig4a", "fig4b"):
            kwargs["profile"] = "full" if args.full else "quick"
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        path = save_report(result.name, result.report)
        if not args.quiet:
            print(result.report)
            print()
        print(f"[{name}] {elapsed:.1f}s -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: ``python -m repro.bench <experiment>``.

Regenerates any figure or ablation from DESIGN.md §4 and writes the text
report to ``benchmarks/results/``.  ``all`` runs everything; ``--full``
uses the long profile for the two paper figures.

Observability: ``--trace-out run.trace.json`` captures every simulator in
the experiment into one Chrome trace (load it at https://ui.perfetto.dev),
``--events-out run.events.jsonl`` dumps the raw event stream for
``repro-analyze`` (a ``.jsonl.gz`` path gzips it on the way out; the
analyzer reads either transparently, and ``repro-analyze report
--stream`` handles recordings of any size in constant memory),
``--metrics-out metrics.json`` dumps the
metrics-registry snapshot, ``--profile-out NAME`` writes the offline
attribution report next to the figure reports, and ``--seed N`` overrides
the workload RNG seed where the experiment supports it.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time

from repro.bench.figures import EXPERIMENTS
from repro.bench.report import save_report
from repro.obs import Observability


def _describe(runner) -> str:
    """First line of the experiment's docstring."""
    doc = inspect.getdoc(runner)
    return doc.splitlines()[0] if doc else ""


def _list_experiments() -> str:
    from repro.workloads import scenarios
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:<{width}}  {_describe(EXPERIMENTS[name])}")
    lines.append(f"  {'all':<{width}}  every experiment above, in order")
    lines.append(f"  {'perf':<{width}}  simulator performance kernels "
                 "(regression gate; see --baseline/--check)")
    lines.append(f"  {'scenario':<{width}}  one named workload scenario "
                 "(--scenario NAME|all)")
    lines.append("")
    lines.append("registered scenarios (--scenario):")
    name_width = max(len(item.name) for item in scenarios.entries())
    for item in scenarios.entries():
        lines.append(f"  {item.name:<{name_width}}  [{item.stress}] "
                     f"{item.summary}")
    return "\n".join(lines)


def _derived_path(path: str, name: str, many: bool) -> str:
    """Output path for one experiment; ``fig2`` of ``out.json`` becomes
    ``out.fig2.json`` when several experiments share one --*-out flag."""
    if not many:
        return path
    stem, dot, suffix = path.rpartition(".")
    if not dot:
        return f"{path}.{name}"
    return f"{stem}.{name}.{suffix}"


def _run_scenarios(args) -> int:
    """The 'scenario' experiment: one or every registered scenario."""
    from repro.bench.figures import run_scenario
    from repro.errors import ReproError
    from repro.workloads import scenarios
    if not args.scenario:
        print("scenario experiment needs --scenario NAME (or 'all'); "
              f"registered: {', '.join(scenarios.names())}",
              file=sys.stderr)
        return 1
    names = (list(scenarios.names()) if args.scenario == "all"
             else args.scenario.split(","))
    many = len(names) > 1
    want_events = (args.trace_out is not None
                   or args.events_out is not None
                   or args.profile_out is not None)
    want_obs = want_events or args.metrics_out is not None
    for name in names:
        obs = Observability(events=want_events) if want_obs else None
        started = time.perf_counter()
        try:
            result = run_scenario(name, seed=args.seed, obs=obs)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        path = save_report(result.name, result.report)
        if not args.quiet:
            print(result.report)
            print()
        print(f"[{result.name}] {elapsed:.1f}s -> {path}")
        if obs is not None:
            if args.trace_out is not None:
                out = _derived_path(args.trace_out, name, many)
                obs.write_chrome_trace(out)
                print(f"[{result.name}] trace -> {out}")
            if args.events_out is not None:
                out = _derived_path(args.events_out, name, many)
                obs.write_jsonl(out)
                print(f"[{result.name}] events -> {out}")
            if args.profile_out is not None:
                profile_name = (f"{args.profile_out}.{name}" if many
                                else args.profile_out)
                out = save_report(profile_name, obs.profile_report())
                print(f"[{result.name}] profile -> {out}")
            if args.metrics_out is not None:
                out = _derived_path(args.metrics_out, name, many)
                with open(out, "w", encoding="utf-8") as stream:
                    json.dump(obs.metrics_snapshot(), stream, indent=2,
                              sort_keys=True)
                    stream.write("\n")
                print(f"[{result.name}] metrics -> {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures and the ablations.")
    parser.add_argument("experiment", nargs="?",
                        choices=sorted(EXPERIMENTS) + ["all", "perf",
                                                       "scenario"],
                        help="which experiment to run "
                             "(see --list for descriptions); 'perf' runs "
                             "the simulator performance kernels; "
                             "'scenario' runs a named workload scenario")
    parser.add_argument("--scenario", metavar="NAME", default=None,
                        help="scenario name for the 'scenario' "
                             "experiment ('all' runs every registered "
                             "scenario; see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list experiments with one-line descriptions "
                             "and exit")
    parser.add_argument("--full", action="store_true",
                        help="long profile (more points, longer windows) "
                             "for fig4a/fig4b")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed override (experiments "
                             "that take one)")
    parser.add_argument("--workers", type=int, default=0,
                        help="shard sweep points over N worker processes "
                             "(experiments that support it: fig4a/fig4b; "
                             "default 0 = serial)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome/Perfetto trace of every "
                             "simulator run to PATH")
    parser.add_argument("--events-out", metavar="PATH", default=None,
                        help="write the raw event stream (JSONL, for "
                             "repro-analyze) to PATH; a .jsonl.gz "
                             "suffix gzips it")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the metrics-registry snapshot (JSON) "
                             "to PATH")
    parser.add_argument("--profile-out", metavar="NAME", default=None,
                        help="write the offline attribution report "
                             "(repro-analyze report) under "
                             "benchmarks/results/NAME.txt")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the report file paths")
    parser.add_argument("--verify", action="store_true",
                        help="attach the repro.verify invariant checker "
                             "to every simulator the experiment builds "
                             "(slower; raises InvariantViolation on any "
                             "internal inconsistency)")
    perf_group = parser.add_argument_group(
        "perf", "options for the 'perf' experiment (simulator kernels "
        "+ benchmark-regression gate; see BENCH_simulator.json)")
    perf_group.add_argument("--repeats", type=int, default=5,
                            help="timed repeats per kernel (default 5)")
    perf_group.add_argument("--kernels", default=None,
                            help="comma-separated workload-kernel subset "
                                 "(default: all)")
    perf_group.add_argument("--engine-kernels", default=None,
                            help="comma-separated engine-kernel subset, "
                                 "e.g. 'batched' (default: generic and "
                                 "batched)")
    perf_group.add_argument("--out", metavar="PATH", default=None,
                            help="write the perf report JSON to PATH")
    perf_group.add_argument("--baseline", metavar="PATH", default=None,
                            help="compare against a committed perf "
                                 "baseline JSON")
    perf_group.add_argument("--tolerance", type=float, default=0.20,
                            help="relative regression tolerance for "
                                 "--baseline (default 0.20)")
    perf_group.add_argument("--check", action="store_true",
                            help="exit non-zero when --baseline "
                                 "comparison finds a regression")
    args = parser.parse_args(argv)

    if args.list:
        print(_list_experiments())
        return 0
    if args.experiment is None:
        parser.error("experiment is required (or use --list)")
    if args.verify:
        # Every Simulator built from here on gets an invariant checker
        # (experiments construct their own sims, so a construction-time
        # default is the only seam that reaches all of them).
        from repro.sim.engine import set_default_checker
        from repro.verify import InvariantChecker
        set_default_checker(lambda: InvariantChecker(interval=1024))
        print("verify: invariant checker attached to every simulator")
    if args.experiment == "perf":
        from repro.bench.perf import main_perf
        return main_perf(args)
    if args.experiment == "scenario":
        return _run_scenarios(args)

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    many = len(names) > 1
    want_events = (args.trace_out is not None
                   or args.events_out is not None
                   or args.profile_out is not None)
    want_obs = want_events or args.metrics_out is not None
    for name in names:
        runner = EXPERIMENTS[name]
        supported = inspect.signature(runner).parameters
        kwargs = {}
        if name in ("fig4a", "fig4b"):
            kwargs["profile"] = "full" if args.full else "quick"
        if args.seed is not None:
            if "seed" in supported:
                kwargs["seed"] = args.seed
            else:
                print(f"[{name}] note: --seed not supported, ignored")
        if args.workers:
            if "workers" in supported and not want_obs:
                kwargs["workers"] = args.workers
            else:
                print(f"[{name}] note: --workers not supported here "
                      "(needs a parallelisable sweep and no obs "
                      "capture), ignored")
        obs = None
        if want_obs and "obs" in supported:
            obs = Observability(events=want_events)
            kwargs["obs"] = obs
        elif want_obs:
            print(f"[{name}] note: --trace-out/--events-out/"
                  "--metrics-out/--profile-out not supported, ignored")
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        path = save_report(result.name, result.report)
        if not args.quiet:
            print(result.report)
            print()
        print(f"[{name}] {elapsed:.1f}s -> {path}")
        if obs is not None:
            if args.trace_out is not None:
                out = _derived_path(args.trace_out, name, many)
                obs.write_chrome_trace(out)
                print(f"[{name}] trace -> {out}")
            if args.events_out is not None:
                out = _derived_path(args.events_out, name, many)
                obs.write_jsonl(out)
                print(f"[{name}] events -> {out}")
            if args.profile_out is not None:
                profile_name = (f"{args.profile_out}.{name}" if many
                                else args.profile_out)
                out = save_report(profile_name, obs.profile_report())
                print(f"[{name}] profile -> {out}")
            if args.metrics_out is not None:
                out = _derived_path(args.metrics_out, name, many)
                with open(out, "w", encoding="utf-8") as stream:
                    json.dump(obs.metrics_snapshot(), stream, indent=2,
                              sort_keys=True)
                    stream.write("\n")
                print(f"[{name}] metrics -> {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

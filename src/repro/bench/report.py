"""Text reports for benchmark results."""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence

from repro.bench.ascii_plot import plot
from repro.bench.harness import Series


def _results_dir() -> Path:
    """Locate ``benchmarks/results/`` for report output.

    Walk up from this module looking for the repo root (the directory
    holding ``pyproject.toml``); from a checkout that puts reports in
    the tracked ``benchmarks/results/`` tree.  When the package runs
    from an installed wheel or zipapp there is no repo root above it,
    so fall back to ``benchmarks/results`` under the current directory.
    """
    for parent in Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            return parent / "benchmarks" / "results"
    return Path.cwd() / "benchmarks" / "results"


#: Directory where benchmark runs drop their text reports.
RESULTS_DIR = str(_results_dir())


def table(series_list: Sequence[Series], x_header: str = "x") -> str:
    """Aligned table: one row per x, one column per scheduler."""
    if not series_list:
        return "(no data)"
    xs = series_list[0].xs
    headers = [x_header] + [s.label for s in series_list]
    rows: List[List[str]] = []
    for index, x in enumerate(xs):
        row = [f"{x:g}"]
        for series in series_list:
            row.append(f"{series.points[index].kops_per_sec:,.0f}")
        if len(series_list) >= 2:
            base = series_list[0].points[index].kops_per_sec
            other = series_list[1].points[index].kops_per_sec
            row.append(f"{other / base:.2f}x" if base else "-")
        rows.append(row)
    if len(series_list) >= 2:
        headers = headers + [f"{series_list[1].label}/{series_list[0].label}"]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def figure_report(title: str, series_list: Sequence[Series],
                  x_label: str, y_label: str,
                  notes: Optional[str] = None) -> str:
    """Complete text report: chart + table + notes."""
    xs = series_list[0].xs if series_list else []
    chart = plot(xs, [s.ys for s in series_list],
                 [s.label for s in series_list],
                 title=title, x_label=x_label, y_label=y_label)
    parts = [chart, "", table(series_list, x_header=x_label)]
    if notes:
        parts.extend(["", notes])
    return "\n".join(parts)


def save_report(name: str, text: str) -> str:
    """Write a report under ``benchmarks/results/``; returns the path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path

"""Benchmark harness: one measured point and parameter sweeps.

Every figure and ablation reduces to the same experiment: build a machine,
attach a scheduler, spawn the workload, warm up, measure throughput over a
window.  :func:`run_point` is that experiment; :func:`sweep` maps it over
a parameter axis; :data:`SCHEDULERS` is a dict-like live view of the
scheduler registry (:mod:`repro.sched.registry`) — the scheduler
configurations benchmarks compare, kept here as a back-compat alias.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.cpu.machine import Machine
from repro.cpu.topology import MachineSpec
from repro.errors import ConfigError
from repro.sched import registry
from repro.sched.base import SchedulerRuntime
from repro.sched.registry import (BENCH_MONITOR_INTERVAL as
                                  BENCH_MONITOR_INTERVAL,
                                  coretime_factory as coretime_factory)
from repro.sim.engine import Simulator
from repro.workloads.dirlookup import DirectoryLookupWorkload, DirWorkloadSpec

SchedulerFactory = Callable[[], SchedulerRuntime]


class _RegistryView(Mapping):
    """Read-only dict view of :mod:`repro.sched.registry`.

    Keeps the historical ``SCHEDULERS[name]`` / ``name in SCHEDULERS`` /
    ``sorted(SCHEDULERS)`` idioms working while making every registered
    scheduler — including ones registered after import — visible to the
    bench layer.  Lookups raise :class:`KeyError` (the Mapping contract)
    so existing ``except KeyError`` error paths keep their messages.
    """

    def __getitem__(self, name: str) -> SchedulerFactory:
        try:
            return registry.resolve(name)
        except ConfigError:
            raise KeyError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in registry.names()

    def __iter__(self) -> Iterator[str]:
        return iter(registry.names())

    def __len__(self) -> int:
        return len(registry.names())

    def __repr__(self) -> str:
        return f"SCHEDULERS({', '.join(registry.names())})"


#: Back-compat alias: the scheduler registry, as the dict this module
#: used to define.  Register new schedulers via ``repro.sched.register``.
SCHEDULERS: Mapping = _RegistryView()


@dataclass
class BenchPoint:
    """One measured throughput point."""

    scheduler: str
    x: float                      # sweep coordinate (e.g. total KB)
    kops_per_sec: float
    ops: int
    migrations: int
    dram_lines: int
    cross_chip_messages: int
    #: Coherence traffic only (transfers + invalidations, no migration
    #: context payload).
    cross_chip_data_messages: int = 0
    scheduler_stats: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"{self.scheduler:<22} x={self.x:<10g} "
                f"{self.kops_per_sec:>10,.0f} kops/s")


def run_point(machine_spec: MachineSpec,
              scheduler_factory: SchedulerFactory,
              workload_spec: DirWorkloadSpec,
              warmup_cycles: int = 2_000_000,
              measure_cycles: int = 3_000_000,
              x: Optional[float] = None,
              workload_factory=None,
              seed: Optional[int] = None,
              obs=None) -> BenchPoint:
    """Measure one (machine, scheduler, workload) combination.

    Throughput is counted over the measurement window only, after a
    warm-up long enough for caches to fill and CoreTime's monitor to
    assign objects.  ``seed`` overrides the workload spec's RNG seed;
    ``obs`` attaches a (shareable) :class:`~repro.obs.Observability`
    pipeline to the simulator.
    """
    if warmup_cycles < 0 or measure_cycles <= 0:
        raise ConfigError("warmup must be >= 0 and measure window > 0")
    if seed is not None:
        workload_spec = dataclasses.replace(workload_spec, seed=seed)
    machine = Machine(machine_spec)
    scheduler = scheduler_factory()
    simulator = Simulator(machine, scheduler, obs=obs)
    if workload_factory is not None:
        workload = workload_factory(machine, workload_spec)
    else:
        workload = DirectoryLookupWorkload(machine, workload_spec)
    workload.spawn_all(simulator)
    if warmup_cycles:
        simulator.run(until=warmup_cycles)
    interconnect = machine.memory.interconnect
    ops_before = simulator.total_ops
    migrations_before = simulator.total_migrations
    dram_before = machine.memory.dram.total_lines_served
    xchip_before = interconnect.cross_chip_messages()
    data_before = interconnect.data_messages()
    simulator.run(until=warmup_cycles + measure_cycles)
    window_ops = simulator.total_ops - ops_before
    seconds = machine_spec.seconds(measure_cycles)
    return BenchPoint(
        scheduler=scheduler.name,
        x=x if x is not None else workload_spec.total_data_bytes / 1024,
        kops_per_sec=window_ops / seconds / 1e3,
        ops=window_ops,
        migrations=simulator.total_migrations - migrations_before,
        dram_lines=machine.memory.dram.total_lines_served - dram_before,
        cross_chip_messages=(
            interconnect.cross_chip_messages() - xchip_before),
        cross_chip_data_messages=(
            interconnect.data_messages() - data_before),
        scheduler_stats=scheduler.stats(),
    )


@dataclass
class Series:
    """One scheduler's curve across a sweep."""

    label: str
    points: List[BenchPoint]

    @property
    def xs(self) -> List[float]:
        return [point.x for point in self.points]

    @property
    def ys(self) -> List[float]:
        return [point.kops_per_sec for point in self.points]

    def at(self, x: float) -> BenchPoint:
        for point in self.points:
            if point.x == x:
                return point
        raise KeyError(f"no point at x={x} in series {self.label}")


def _case_seed(seed: Optional[int], scheduler_name: str,
               index: int) -> Optional[int]:
    """Per-point workload seed for a sweep.

    A root ``seed`` fans out into one independent seed per (scheduler,
    point) through :func:`repro.sim.rng.derive_seed` — the same helper
    ``repro-sweep`` and ``repro.verify fuzz`` use — so a point's seed
    depends only on its coordinates, never on execution order or which
    tool ran it.  None keeps each workload spec's own seed.
    """
    if seed is None:
        return None
    from repro.sim.rng import derive_seed
    return derive_seed(seed, scheduler_name, index)


def sweep(machine_spec: MachineSpec,
          scheduler_names: Sequence[str],
          workload_specs: Sequence[DirWorkloadSpec],
          warmup_cycles: int = 2_000_000,
          measure_cycles: int = 3_000_000,
          xs: Optional[Sequence[float]] = None,
          workload_factory=None,
          schedulers: Optional[Dict[str, SchedulerFactory]] = None,
          seed: Optional[int] = None,
          obs=None,
          workers: int = 0) -> List[Series]:
    """Run every scheduler over every workload spec; returns one
    :class:`Series` per scheduler, in the order given.

    ``workers=0`` (the default) evaluates points serially in-process.
    On either path a :class:`KeyboardInterrupt` re-raises with the
    completed points attached as ``exc.partial_series``, so a long
    interactive sweep never loses finished work.  ``workers=N`` shards
    the grid over ``N`` processes via :mod:`repro.sweep` — identical
    per-point results —
    which requires registry-named schedulers and plain directory-lookup
    workloads (custom ``schedulers`` factories or a ``workload_factory``
    cannot cross a process boundary; neither can a shared ``obs``
    pipeline).
    """
    if workers:
        return _sweep_parallel(machine_spec, scheduler_names,
                               workload_specs, warmup_cycles,
                               measure_cycles, xs, workload_factory,
                               schedulers, seed, obs, workers)
    registry = schedulers or SCHEDULERS
    result: List[Series] = []
    points: List[BenchPoint] = []
    try:
        for name in scheduler_names:
            try:
                factory = registry[name]
            except KeyError:
                raise ConfigError(
                    f"unknown scheduler {name!r}; "
                    f"choose from {sorted(registry)}") from None
            points = []
            for index, workload_spec in enumerate(workload_specs):
                x = xs[index] if xs is not None else None
                points.append(run_point(
                    machine_spec, factory, workload_spec,
                    warmup_cycles=warmup_cycles,
                    measure_cycles=measure_cycles, x=x,
                    workload_factory=workload_factory,
                    seed=_case_seed(seed, name, index), obs=obs))
            result.append(Series(name, points))
    except KeyboardInterrupt as interrupt:
        # Flush what finished: completed series plus the partial one, so
        # callers (and the CLI) can keep hours of completed points.
        if points:
            result.append(Series(f"{name} (partial)", points))
        interrupt.partial_series = result
        raise
    return result


def _sweep_parallel(machine_spec, scheduler_names, workload_specs,
                    warmup_cycles, measure_cycles, xs, workload_factory,
                    schedulers, seed, obs, workers: int) -> List[Series]:
    """The ``workers>0`` path: shard the grid through repro.sweep."""
    from repro.errors import ReproError
    from repro.sweep.runner import RunnerOptions, run_cases
    from repro.sweep.spec import SweepCase
    if schedulers is not None or workload_factory is not None:
        raise ConfigError(
            "parallel sweep supports registry schedulers and the default "
            "directory-lookup workload only (factories cannot cross a "
            "process boundary); use workers=0")
    if obs is not None:
        raise ConfigError(
            "parallel sweep cannot share one observability pipeline; "
            "use workers=0 for --trace-out/--events-out runs")
    for name in scheduler_names:
        if name not in SCHEDULERS:
            raise ConfigError(
                f"unknown scheduler {name!r}; "
                f"choose from {sorted(SCHEDULERS)}")
    grid = []        # (scheduler, point index) in result order
    cases = []
    for name in scheduler_names:
        for index, workload_spec in enumerate(workload_specs):
            if not isinstance(workload_spec, DirWorkloadSpec):
                raise ConfigError(
                    "parallel sweep expects DirWorkloadSpec workloads; "
                    f"got {type(workload_spec).__name__}")
            grid.append((name, index))
            cases.append(SweepCase(
                machine_label=machine_spec.name,
                machine=machine_spec,
                scheduler=name,
                workload_kind="dirlookup",
                workload_label=f"w{index}",
                workload=workload_spec,
                seed_index=index,
                seed=_case_seed(seed, name, index),
                warmup_cycles=warmup_cycles,
                measure_cycles=measure_cycles,
                x=xs[index] if xs is not None else None))
    try:
        outcome = run_cases(cases, options=RunnerOptions(workers=workers))
    except KeyboardInterrupt as interrupt:
        # Mirror the workers=0 contract: completed points ride along on
        # the exception (run_cases attached the raw records).
        records = getattr(interrupt, "partial_records", {})
        partial: List[Series] = []
        for name in scheduler_names:
            points = []
            for case, (case_name, index) in zip(cases, grid):
                if case_name != name:
                    continue
                record = records.get(case.key())
                if record is not None and record["status"] == "ok":
                    points.append((index, BenchPoint(**record["point"])))
            if not points:
                continue
            label = (name if len(points) == len(workload_specs)
                     else f"{name} (partial)")
            partial.append(Series(
                label, [point for _, point in sorted(points)]))
        interrupt.partial_series = partial
        raise
    by_coord: Dict = {}
    for case, (name, index) in zip(cases, grid):
        record = outcome.records[case.key()]
        if record is None or record["status"] != "ok":
            error = record["error"] if record else "never ran"
            raise ReproError(
                f"sweep point {name}/{index} failed: {error}")
        by_coord[(name, index)] = BenchPoint(**record["point"])
    return [Series(name, [by_coord[(name, index)]
                          for index in range(len(workload_specs))])
            for name in scheduler_names]

"""Benchmark harness: one measured point and parameter sweeps.

Every figure and ablation reduces to the same experiment: build a machine,
attach a scheduler, spawn the workload, warm up, measure throughput over a
window.  :func:`run_point` is that experiment; :func:`sweep` maps it over
a parameter axis; :data:`SCHEDULERS` names the scheduler configurations
benchmarks compare.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.coretime import CoreTimeConfig, CoreTimeScheduler
from repro.cpu.machine import Machine
from repro.cpu.topology import MachineSpec
from repro.errors import ConfigError
from repro.sched.base import SchedulerRuntime
from repro.sched.cache_sharing import CacheSharingScheduler
from repro.sched.thread_clustering import ThreadClusteringScheduler
from repro.sched.thread_sched import ThreadScheduler
from repro.sched.work_stealing import WorkStealingScheduler
from repro.sim.engine import Simulator
from repro.workloads.dirlookup import DirectoryLookupWorkload, DirWorkloadSpec

#: Default monitoring window used in benchmarks on scaled machines.
BENCH_MONITOR_INTERVAL = 100_000

SchedulerFactory = Callable[[], SchedulerRuntime]


def coretime_factory(**config_changes) -> SchedulerFactory:
    """Factory for a CoreTime scheduler with benchmark-friendly defaults."""
    def make() -> CoreTimeScheduler:
        config = CoreTimeConfig(monitor_interval=BENCH_MONITOR_INTERVAL)
        if config_changes:
            config = config.replace(**config_changes)
        return CoreTimeScheduler(config)
    return make


SCHEDULERS: Dict[str, SchedulerFactory] = {
    "thread": ThreadScheduler,
    "work-stealing": WorkStealingScheduler,
    "thread-clustering": ThreadClusteringScheduler,
    "cache-sharing": CacheSharingScheduler,
    "coretime": coretime_factory(),
    "coretime-norebalance": coretime_factory(rebalance=False),
}


@dataclass
class BenchPoint:
    """One measured throughput point."""

    scheduler: str
    x: float                      # sweep coordinate (e.g. total KB)
    kops_per_sec: float
    ops: int
    migrations: int
    dram_lines: int
    cross_chip_messages: int
    #: Coherence traffic only (transfers + invalidations, no migration
    #: context payload).
    cross_chip_data_messages: int = 0
    scheduler_stats: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"{self.scheduler:<22} x={self.x:<10g} "
                f"{self.kops_per_sec:>10,.0f} kops/s")


def run_point(machine_spec: MachineSpec,
              scheduler_factory: SchedulerFactory,
              workload_spec: DirWorkloadSpec,
              warmup_cycles: int = 2_000_000,
              measure_cycles: int = 3_000_000,
              x: Optional[float] = None,
              workload_factory=None,
              seed: Optional[int] = None,
              obs=None) -> BenchPoint:
    """Measure one (machine, scheduler, workload) combination.

    Throughput is counted over the measurement window only, after a
    warm-up long enough for caches to fill and CoreTime's monitor to
    assign objects.  ``seed`` overrides the workload spec's RNG seed;
    ``obs`` attaches a (shareable) :class:`~repro.obs.Observability`
    pipeline to the simulator.
    """
    if warmup_cycles < 0 or measure_cycles <= 0:
        raise ConfigError("warmup must be >= 0 and measure window > 0")
    if seed is not None:
        workload_spec = dataclasses.replace(workload_spec, seed=seed)
    machine = Machine(machine_spec)
    scheduler = scheduler_factory()
    simulator = Simulator(machine, scheduler, obs=obs)
    if workload_factory is not None:
        workload = workload_factory(machine, workload_spec)
    else:
        workload = DirectoryLookupWorkload(machine, workload_spec)
    workload.spawn_all(simulator)
    if warmup_cycles:
        simulator.run(until=warmup_cycles)
    interconnect = machine.memory.interconnect
    ops_before = simulator.total_ops
    migrations_before = simulator.total_migrations
    dram_before = machine.memory.dram.total_lines_served
    xchip_before = interconnect.cross_chip_messages()
    data_before = interconnect.data_messages()
    simulator.run(until=warmup_cycles + measure_cycles)
    window_ops = simulator.total_ops - ops_before
    seconds = machine_spec.seconds(measure_cycles)
    return BenchPoint(
        scheduler=scheduler.name,
        x=x if x is not None else workload_spec.total_data_bytes / 1024,
        kops_per_sec=window_ops / seconds / 1e3,
        ops=window_ops,
        migrations=simulator.total_migrations - migrations_before,
        dram_lines=machine.memory.dram.total_lines_served - dram_before,
        cross_chip_messages=(
            interconnect.cross_chip_messages() - xchip_before),
        cross_chip_data_messages=(
            interconnect.data_messages() - data_before),
        scheduler_stats=scheduler.stats(),
    )


@dataclass
class Series:
    """One scheduler's curve across a sweep."""

    label: str
    points: List[BenchPoint]

    @property
    def xs(self) -> List[float]:
        return [point.x for point in self.points]

    @property
    def ys(self) -> List[float]:
        return [point.kops_per_sec for point in self.points]

    def at(self, x: float) -> BenchPoint:
        for point in self.points:
            if point.x == x:
                return point
        raise KeyError(f"no point at x={x} in series {self.label}")


def sweep(machine_spec: MachineSpec,
          scheduler_names: Sequence[str],
          workload_specs: Sequence[DirWorkloadSpec],
          warmup_cycles: int = 2_000_000,
          measure_cycles: int = 3_000_000,
          xs: Optional[Sequence[float]] = None,
          workload_factory=None,
          schedulers: Optional[Dict[str, SchedulerFactory]] = None,
          seed: Optional[int] = None,
          obs=None) -> List[Series]:
    """Run every scheduler over every workload spec; returns one
    :class:`Series` per scheduler, in the order given."""
    registry = schedulers or SCHEDULERS
    result: List[Series] = []
    for name in scheduler_names:
        try:
            factory = registry[name]
        except KeyError:
            raise ConfigError(
                f"unknown scheduler {name!r}; "
                f"choose from {sorted(registry)}") from None
        points = []
        for index, workload_spec in enumerate(workload_specs):
            x = xs[index] if xs is not None else None
            points.append(run_point(
                machine_spec, factory, workload_spec,
                warmup_cycles=warmup_cycles,
                measure_cycles=measure_cycles, x=x,
                workload_factory=workload_factory, seed=seed, obs=obs))
        result.append(Series(name, points))
    return result

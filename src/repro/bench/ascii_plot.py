"""Terminal line plots for benchmark figures.

The paper's figures are throughput-vs-data-size curves; :func:`plot`
renders the same curves as ASCII so every benchmark's output is
self-contained in a terminal or a CI log.
"""

from __future__ import annotations

from typing import List, Sequence

_MARKERS = "o+x*#@%"


def plot(xs: Sequence[float], series: Sequence[Sequence[float]],
         labels: Sequence[str], width: int = 64, height: int = 18,
         title: str = "", x_label: str = "", y_label: str = "") -> str:
    """Render one or more y-series over shared xs as an ASCII chart."""
    if not xs or not series:
        return "(no data)"
    y_max = max((max(ys) for ys in series if ys), default=1.0) or 1.0
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, ys in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / x_span * (width - 1))
            row = int((1.0 - y / y_max) * (height - 1))
            row = min(height - 1, max(0, row))
            grid[row][col] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            axis_label = f"{y_max:>10,.0f} |"
        elif row_index == height - 1:
            axis_label = f"{0:>10,.0f} |"
        else:
            axis_label = " " * 11 + "|"
        lines.append(axis_label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    left = f"{x_min:,.0f}"
    right = f"{x_max:,.0f}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * 12 + left + " " * pad + right)
    if x_label:
        lines.append(" " * 12 + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(labels))
    lines.append(" " * 12 + legend)
    if y_label:
        lines.insert(1 if title else 0, f"[y: {y_label}]")
    return "\n".join(lines)

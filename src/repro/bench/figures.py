"""Experiment definitions: every figure and ablation in DESIGN.md §4.

Each ``figure_*`` / ``ablation_*`` function runs one experiment end to end
and returns a :class:`FigureResult` (data series + formatted report).
Benchmarks and the CLI call these with different effort profiles:
``profile="quick"`` keeps pytest-benchmark runs short; ``profile="full"``
uses more points and longer windows for the committed EXPERIMENTS.md
numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import (SCHEDULERS, Series, coretime_factory,
                                 run_point, sweep)
from repro.bench.report import figure_report
from repro.core.object_table import CtObject
from repro.core.packing import make_budgets, pack
from repro.cpu.machine import Machine
from repro.cpu.topology import MachineSpec
from repro.errors import ConfigError
from repro.mem.inspect import residency_table
from repro.sim.engine import Simulator
from repro.workloads.dirlookup import DirectoryLookupWorkload, DirWorkloadSpec
from repro.workloads.synthetic import ObjectOpsSpec, ObjectOpsWorkload

#: Scale factor all benchmark machines use (capacities and the workload
#: shrink together; see DESIGN.md §2).
BENCH_SCALE = 8


@dataclass
class FigureResult:
    """Output of one experiment."""

    name: str
    series: List[Series]
    report: str
    details: Dict = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"{self.name}: no series {label!r}")


@dataclass(frozen=True)
class Profile:
    """Effort level of an experiment run."""

    n_dirs_list: Sequence[int]
    warmup_cycles: int
    measure_cycles: int


PROFILES: Dict[str, Profile] = {
    "quick": Profile((16, 64, 160, 320, 512),
                     warmup_cycles=1_500_000, measure_cycles=1_500_000),
    "full": Profile((2, 4, 8, 16, 32, 64, 96, 128, 192, 256, 320, 384,
                     448, 512, 576, 640),
                    warmup_cycles=2_000_000, measure_cycles=3_000_000),
}


def _profile(profile) -> Profile:
    if isinstance(profile, Profile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise ConfigError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        ) from None


# ---------------------------------------------------------------------------
# E1 — Figure 4(a): uniform directory popularity
# ---------------------------------------------------------------------------

def figure_4a(profile="quick", scale: int = BENCH_SCALE,
              seed: Optional[int] = None, obs=None,
              workers: int = 0) -> FigureResult:
    """Resolutions/s vs total data size, uniform popularity (Figure 4a)."""
    prof = _profile(profile)
    machine_spec = MachineSpec.scaled(scale)
    workload_specs = [DirWorkloadSpec.scaled(scale, n_dirs=n)
                      for n in prof.n_dirs_list]
    xs = [spec.total_data_bytes / 1024 for spec in workload_specs]
    series = sweep(machine_spec, ("thread", "coretime"), workload_specs,
                   warmup_cycles=prof.warmup_cycles,
                   measure_cycles=prof.measure_cycles, xs=xs,
                   seed=seed, obs=obs, workers=workers)
    report = figure_report(
        "Figure 4(a): file system benchmark, uniform directory popularity",
        series, x_label="total data size (KB, scaled machine)",
        y_label="1000s of resolutions per second",
        notes=("Paper shape: both low at the left edge (lock waits), both "
               "fast while a copy fits each chip's caches, CoreTime 2-3x "
               "faster once the data exceeds them."))
    return FigureResult("fig4a", series, report)


# ---------------------------------------------------------------------------
# E2 — Figure 4(b): oscillating directory popularity
# ---------------------------------------------------------------------------

def figure_4b(profile="quick", scale: int = BENCH_SCALE,
              rotate: bool = True, seed: Optional[int] = None,
              obs=None, workers: int = 0) -> FigureResult:
    """Resolutions/s vs data size, oscillating active set (Figure 4b)."""
    prof = _profile(profile)
    machine_spec = MachineSpec.scaled(scale)
    workload_specs = [
        DirWorkloadSpec.scaled(
            scale, n_dirs=n, popularity="oscillating",
            oscillation_period=1_000_000, oscillation_rotate=rotate)
        for n in prof.n_dirs_list
    ]
    xs = [spec.total_data_bytes / 1024 for spec in workload_specs]
    series = sweep(machine_spec, ("thread", "coretime"), workload_specs,
                   warmup_cycles=prof.warmup_cycles,
                   measure_cycles=prof.measure_cycles, xs=xs,
                   seed=seed, obs=obs, workers=workers)
    report = figure_report(
        "Figure 4(b): file system benchmark, oscillated directory "
        "popularity",
        series, x_label="total data size (KB, scaled machine)",
        y_label="1000s of resolutions per second",
        notes=("Paper: CoreTime rebalances directories across caches and "
               "performs more than twice as fast for most data sizes."))
    return FigureResult("fig4b", series, report)


# ---------------------------------------------------------------------------
# E3 — Figure 2: cache contents under the two schedulers
# ---------------------------------------------------------------------------

def figure_2(n_dirs: int = 20, run_cycles: int = 3_000_000,
             seed: Optional[int] = None, obs=None) -> FigureResult:
    """Snapshot of per-cache directory residency (Figure 2).

    Uses a single-chip, four-core machine sized so that a core's private
    caches hold about three directories and the shared L3 about eight —
    the geometry of the paper's figure.
    """
    spec = MachineSpec(
        name="fig2-4core", n_chips=1, cores_per_chip=4,
        l1_bytes=2048, l2_bytes=12 * 1024, l3_bytes=32 * 1024,
        migration_cost=250)
    lines: List[str] = ["Figure 2: cache contents, directory lookup "
                        f"workload, {n_dirs} directories", ""]
    details: Dict[str, Dict] = {}
    for label, factory in (
            ("thread scheduler", SCHEDULERS["thread"]),
            ("O2 scheduler (CoreTime)",
             coretime_factory(monitor_interval=50_000))):
        machine = Machine(spec)
        simulator = Simulator(machine, factory(), obs=obs)
        workload_spec = DirWorkloadSpec(
            n_dirs=n_dirs, files_per_dir=128, cluster_bytes=512,
            think_cycles=12, threads_per_core=4,
            seed=42 if seed is None else seed)
        workload = DirectoryLookupWorkload(machine, workload_spec)
        workload.spawn_all(simulator)
        simulator.run(until=run_cycles)
        regions = [(d.name.replace("dir:DIR", "dir"),
                    d.object.addr, d.object.size)
                   for d in workload.efsl.directories]
        residency = residency_table(machine.memory, regions)
        details[label] = residency
        lines.append(f"--- {label}")
        for location in sorted(residency):
            names = " ".join(residency[location])
            lines.append(f"  {location:<10} {names}")
        on_chip = sum(len(v) for k, v in residency.items()
                      if k != "off-chip")
        lines.append(f"  => {on_chip}/{n_dirs} directories resident "
                     "on-chip")
        lines.append("")
    report = "\n".join(lines)
    return FigureResult("fig2", [], report, details=details)


# ---------------------------------------------------------------------------
# E4 — packing algorithm complexity (Θ(n log n) claim)
# ---------------------------------------------------------------------------

def packing_complexity(ns: Sequence[int] = (1000, 2000, 4000, 8000, 16000),
                       repeats: int = 3) -> FigureResult:
    """Wall-clock scaling of the greedy first-fit cache packing."""
    rows = []
    timings: List[float] = []
    for n in ns:
        objects = []
        for index in range(n):
            obj = CtObject(f"o{index}", index * 4096, 2048 + (index % 7) * 512)
            obj.heat = float((index * 2654435761) % 1000)
            objects.append(obj)
        best = float("inf")
        for _ in range(repeats):
            budgets = make_budgets(1 << 20, 16)
            start = time.perf_counter()
            pack(objects, budgets)
            best = min(best, time.perf_counter() - start)
        timings.append(best)
        rows.append(f"  n={n:>7}  {best * 1e3:8.2f} ms"
                    f"  {best / n * 1e6:6.2f} us/object")
    # Θ(n log n): time per object should grow no faster than log n.
    report = "\n".join(
        ["E4: greedy first-fit cache packing runtime (paper: Θ(n log n))"]
        + rows)
    return FigureResult("packing_complexity", [], report,
                        details={"ns": list(ns), "seconds": timings})


# ---------------------------------------------------------------------------
# E5 — migration cost sensitivity
# ---------------------------------------------------------------------------

def migration_cost_sweep(costs: Sequence[int] = (0, 125, 250, 500, 1000,
                                                 2000, 4000),
                         n_dirs: int = 320,
                         scale: int = BENCH_SCALE,
                         warmup_cycles: int = 1_500_000,
                         measure_cycles: int = 1_500_000,
                         seed: Optional[int] = None, obs=None) \
        -> FigureResult:
    """CoreTime throughput as the migration cost varies (§5 measured 2000
    cycles on real hardware; §6.1 expects active messages to cut it)."""
    workload_spec = DirWorkloadSpec.scaled(scale, n_dirs=n_dirs)
    points = []
    for cost in costs:
        machine_spec = MachineSpec.scaled(scale, migration_cost=cost)
        points.append(run_point(
            machine_spec, SCHEDULERS["coretime"], workload_spec,
            warmup_cycles=warmup_cycles, measure_cycles=measure_cycles,
            x=cost, seed=seed, obs=obs))
    baseline = run_point(MachineSpec.scaled(scale), SCHEDULERS["thread"],
                         workload_spec, warmup_cycles=warmup_cycles,
                         measure_cycles=measure_cycles, x=0,
                         seed=seed, obs=obs)
    series = [Series("coretime", points),
              Series("thread (any cost)", [baseline] * len(points))]
    report = figure_report(
        "E5: CoreTime throughput vs migration cost "
        f"({n_dirs} dirs, {workload_spec.total_data_bytes // 1024} KB)",
        series, x_label="migration cost (cycles)",
        y_label="1000s of resolutions per second",
        notes=("O2 scheduling pays off while migration is cheaper than "
               "fetching the object (§4); the crossover is where the "
               "curves meet."))
    return FigureResult("migration_cost", series, report)


# ---------------------------------------------------------------------------
# E6 — thread clustering does not help this workload (§2 claim)
# ---------------------------------------------------------------------------

def clustering_comparison(n_dirs_list: Sequence[int] = (64, 160, 320),
                          scale: int = BENCH_SCALE,
                          warmup_cycles: int = 1_500_000,
                          measure_cycles: int = 1_500_000,
                          seed: Optional[int] = None, obs=None) \
        -> FigureResult:
    """Thread clustering vs plain threads vs CoreTime (§2: "Thread
    clustering will not improve performance since all threads look up
    files in the same directories")."""
    machine_spec = MachineSpec.scaled(scale)
    workload_specs = [DirWorkloadSpec.scaled(scale, n_dirs=n)
                      for n in n_dirs_list]
    xs = [spec.total_data_bytes / 1024 for spec in workload_specs]
    series = sweep(machine_spec,
                   ("thread", "thread-clustering", "coretime"),
                   workload_specs, warmup_cycles=warmup_cycles,
                   measure_cycles=measure_cycles, xs=xs,
                   seed=seed, obs=obs)
    report = figure_report(
        "E6: thread clustering vs O2 scheduling",
        series, x_label="total data size (KB)",
        y_label="1000s of resolutions per second",
        notes=("All threads share every directory, so clustering "
               "degenerates to ordinary placement while CoreTime "
               "partitions the data."))
    return FigureResult("clustering", series, report)


# ---------------------------------------------------------------------------
# E7 — future multicores (§6.1)
# ---------------------------------------------------------------------------

def future_multicore(n_dirs_list: Sequence[int] = (64, 160, 320, 512),
                     warmup_cycles: int = 1_500_000,
                     measure_cycles: int = 1_500_000,
                     seed: Optional[int] = None, obs=None) -> FigureResult:
    """CoreTime's advantage on today's machine vs a §6.1 future machine
    (scarcer off-chip bandwidth, bigger caches, cheap active-message
    migration)."""
    today = MachineSpec.scaled(BENCH_SCALE)
    future = MachineSpec.future(n_chips=4, cores_per_chip=4,
                                l2_bytes=128 * 1024, l3_bytes=1024 * 1024,
                                migration_cost=60)
    rows = []
    details = {}
    for label, machine_spec in (("today", today), ("future", future)):
        specs = [DirWorkloadSpec.scaled(BENCH_SCALE, n_dirs=n)
                 for n in n_dirs_list]
        xs = [spec.total_data_bytes / 1024 for spec in specs]
        pair = sweep(machine_spec, ("thread", "coretime"), specs,
                     warmup_cycles=warmup_cycles,
                     measure_cycles=measure_cycles, xs=xs,
                     seed=seed, obs=obs)
        ratios = [c.kops_per_sec / max(1.0, t.kops_per_sec)
                  for t, c in zip(pair[0].points, pair[1].points)]
        details[label] = {"series": pair, "ratios": ratios}
        rows.append(f"  {label:<8} speedups: " + "  ".join(
            f"{x:,.0f}KB:{r:.2f}x" for x, r in zip(xs, ratios)))
    report = "\n".join(
        ["E7: CoreTime speedup over thread scheduling, today's machine vs "
         "a future multicore (bigger caches, scarcer DRAM bandwidth, "
         "cheap migration)"] + rows +
        ["", "Paper §6.1: these trends should make O2 scheduling "
             "attractive for more workloads."])
    all_series = details["today"]["series"] + details["future"]["series"]
    return FigureResult("future", all_series, report, details=details)


# ---------------------------------------------------------------------------
# E8 — replication of read-only objects (§6.2)
# ---------------------------------------------------------------------------

def replication_ablation(n_objects_list: Sequence[int] = (96, 448),
                         scale: int = BENCH_SCALE,
                         warmup_cycles: int = 1_500_000,
                         measure_cycles: int = 1_500_000,
                         seed: Optional[int] = None, obs=None) \
        -> FigureResult:
    """Zipf-skewed read-only objects: replicate the hot ones or not.

    The objects are lock-free (readers need no mutual exclusion — a
    replicated object guarded by one global lock would serialise anyway).
    With few objects, replicas are free capacity-wise and shorten
    migrations; with many objects, every replica displaces a distinct
    object from the caches — the §6.2 trade-off.
    """
    machine_spec = MachineSpec.scaled(scale)
    workload_specs = [
        ObjectOpsSpec(n_objects=n, object_bytes=4096, popularity="zipf",
                      zipf_s=1.1, think_cycles=12, with_locks=False)
        for n in n_objects_list
    ]
    schedulers = {
        "coretime": coretime_factory(),
        "coretime+replication": coretime_factory(
            replicate_read_only=True, replication_heat_factor=2.0),
    }
    def factory(machine, spec):
        return ObjectOpsWorkload(machine, spec)
    series = sweep(machine_spec, tuple(schedulers), workload_specs,
                   warmup_cycles=warmup_cycles,
                   measure_cycles=measure_cycles,
                   xs=list(n_objects_list),
                   workload_factory=factory, schedulers=schedulers,
                   seed=seed, obs=obs)
    # Label the series by configuration, not by the shared runtime name.
    for label, s in zip(schedulers, series):
        s.label = label
    report = figure_report(
        "E8: replicating hot read-only objects (Zipf popularity)",
        series, x_label="objects", y_label="1000s of ops per second",
        notes=("§6.2: sometimes it is better to replicate read-only "
               "objects, other times to schedule more distinct objects."))
    return FigureResult("replication", series, report)


# ---------------------------------------------------------------------------
# E9 — replacement policy for working sets > on-chip memory (§6.2)
# ---------------------------------------------------------------------------

def replacement_ablation(n_dirs: int = 1024, scale: int = BENCH_SCALE,
                         warmup_cycles: int = 2_000_000,
                         measure_cycles: int = 4_000_000,
                         seed: Optional[int] = None, obs=None) \
        -> FigureResult:
    """Working set far beyond on-chip capacity with a *shifting* hot set:
    keep the currently-frequent objects on-chip (LFU) or leave the table
    frozen at whatever was packed first.

    A static skew is not enough to separate the policies — heat-ordered
    first-fit already favours hot objects at assignment time.  The LFU
    policy earns its keep when popularity moves and stale assignments
    must be evicted for the new hot set.
    """
    machine_spec = MachineSpec.scaled(scale)
    workload_spec = DirWorkloadSpec.scaled(
        scale, n_dirs=n_dirs, popularity="oscillating",
        oscillation_period=800_000, oscillation_rotate=True)
    schedulers = {
        "thread": SCHEDULERS["thread"],
        "coretime-firstfit": coretime_factory(),
        "coretime+lfu": coretime_factory(lfu_replacement=True,
                                         lfu_margin=1.5),
    }
    series = sweep(machine_spec, tuple(schedulers), [workload_spec],
                   warmup_cycles=warmup_cycles,
                   measure_cycles=measure_cycles,
                   xs=[workload_spec.total_data_bytes / 1024],
                   schedulers=schedulers, seed=seed, obs=obs)
    for label, s in zip(schedulers, series):
        s.label = label
    report = figure_report(
        f"E9: replacement policy, {n_dirs} Zipf directories "
        f"({workload_spec.total_data_bytes // 1024} KB, beyond on-chip)",
        series, x_label="total data size (KB)",
        y_label="1000s of resolutions per second",
        notes=("§6.2: with working sets larger than on-chip memory, an O2 "
               "scheduler should keep the most frequently accessed "
               "objects on-chip."))
    return FigureResult("replacement", series, report)


# ---------------------------------------------------------------------------
# E10 — object clustering (§6.2)
# ---------------------------------------------------------------------------

def object_clustering_ablation(n_objects: int = 64,
                               scale: int = BENCH_SCALE,
                               warmup_cycles: int = 1_500_000,
                               measure_cycles: int = 1_500_000,
                               seed: Optional[int] = None, obs=None) \
        -> FigureResult:
    """Operations that touch an object then its partner: co-locating the
    pair saves one migration round trip per paired operation."""
    machine_spec = MachineSpec.scaled(scale)
    base = ObjectOpsSpec(n_objects=n_objects, object_bytes=4096,
                         pair_probability=0.8, think_cycles=12)
    # Balanced packing spreads objects evenly (heat-ordered first-fit
    # would co-locate similarly-hot pairs by accident), and threads stay
    # where an operation leaves them (with return-home, the round trip
    # happens whether or not the partner is co-located, hiding the
    # effect being measured).
    schedulers = {
        "coretime": coretime_factory(packing="balanced",
                                     return_home=False),
        "coretime+autocluster": coretime_factory(
            packing="balanced", return_home=False, auto_cluster=True,
            auto_cluster_threshold=16),
    }
    def plain_factory(machine, spec):
        workload = ObjectOpsWorkload(machine, spec)
        for obj in workload.objects:
            obj.cluster_key = None     # learning must do the work
        return workload
    def declared_factory(machine, spec):
        return ObjectOpsWorkload(machine, spec)   # keeps pair-N keys
    series_plain = sweep(machine_spec, ("coretime",), [base],
                         warmup_cycles=warmup_cycles,
                         measure_cycles=measure_cycles, xs=[n_objects],
                         workload_factory=plain_factory,
                         schedulers=schedulers, seed=seed, obs=obs)
    series_auto = sweep(machine_spec, ("coretime+autocluster",), [base],
                        warmup_cycles=warmup_cycles,
                        measure_cycles=measure_cycles, xs=[n_objects],
                        workload_factory=plain_factory,
                        schedulers=schedulers, seed=seed, obs=obs)
    series_declared = sweep(machine_spec, ("coretime",), [base],
                            warmup_cycles=warmup_cycles,
                            measure_cycles=measure_cycles, xs=[n_objects],
                            workload_factory=declared_factory,
                            schedulers=schedulers, seed=seed, obs=obs)
    series = [series_plain[0], series_auto[0], series_declared[0]]
    series[0].label = "no clustering"
    series[1].label = "learned clusters"
    series[2].label = "declared clusters"
    rows = ["", "traffic (the quantity clustering reduces — §1 warns "
                "about interconnect saturation):"]
    for s in series:
        point = s.points[0]
        rows.append(
            f"  {s.label:<18} {point.migrations / max(1, point.ops):5.2f} "
            f"migrations/op, {point.cross_chip_messages:>8,} cross-chip "
            "messages")
    report = figure_report(
        "E10: object clustering for paired operations",
        series, x_label="objects", y_label="1000s of ops per second",
        notes="\n".join(rows + [
            "", "§6.2: objects used together belong in the same cache; "
            "clusters can be declared by the programmer or learned from "
            "the operation stream.  Throughput is saturated here, so the "
            "win appears as halved migration traffic."]))
    return FigureResult("object_clustering", series, report)


# ---------------------------------------------------------------------------
# E11 — packing-policy ablation (design choice from §4)
# ---------------------------------------------------------------------------

def packing_policy_ablation(n_dirs: int = 320, scale: int = BENCH_SCALE,
                            warmup_cycles: int = 1_500_000,
                            measure_cycles: int = 1_500_000,
                            seed: Optional[int] = None, obs=None) \
        -> FigureResult:
    """First-fit (the paper's choice) vs alternatives.

    The paper picks greedy first-fit and relies on the rebalancer to fix
    its hot spots.  This ablation compares it against balanced (emptiest
    budget first) and popularity-blind hash placement, with and without
    the rebalancer, quantifying how much of first-fit's viability is
    owed to rebalancing.
    """
    machine_spec = MachineSpec.scaled(scale)
    workload_spec = DirWorkloadSpec.scaled(scale, n_dirs=n_dirs)
    schedulers = {
        "first-fit": coretime_factory(packing="first_fit"),
        "first-fit-norebalance": coretime_factory(
            packing="first_fit", rebalance=False),
        "balanced": coretime_factory(packing="balanced"),
        "hash": coretime_factory(packing="hash"),
    }
    series = sweep(machine_spec, tuple(schedulers), [workload_spec],
                   warmup_cycles=warmup_cycles,
                   measure_cycles=measure_cycles,
                   xs=[workload_spec.total_data_bytes / 1024],
                   schedulers=schedulers, seed=seed, obs=obs)
    for label, s in zip(schedulers, series):
        s.label = label
    report = figure_report(
        f"E11: packing policy ablation ({n_dirs} dirs, "
        f"{workload_spec.total_data_bytes // 1024} KB)",
        series, x_label="total data size (KB)",
        y_label="1000s of resolutions per second",
        notes=("§4 chooses greedy first-fit and repairs its pathologies "
               "at runtime; the no-rebalance column shows how much of "
               "the repair the rebalancer does."))
    return FigureResult("packing_policy", series, report)


# ---------------------------------------------------------------------------
# named workload scenarios (repro.workloads.scenarios)
# ---------------------------------------------------------------------------

def run_scenario(name: str, seed: Optional[int] = None,
                 schedulers: Sequence[str] = ("thread", "coretime"),
                 warmup_cycles: int = 120_000,
                 measure_cycles: int = 200_000, obs=None) -> FigureResult:
    """One registered scenario, thread vs CoreTime on the tiny machine.

    The quick interactive view of a scenario (``python -m repro.bench
    scenario --scenario NAME``); the full cross-scheduler matrix is the
    ``scenarios`` sweep preset.
    """
    from repro.workloads import scenarios as catalog
    from repro.workloads.scenarios import ScenarioSpec
    item = catalog.resolve(name)
    spec = ScenarioSpec(name=name)
    machine_spec = MachineSpec.tiny()
    series = []
    for scheduler in schedulers:
        try:
            factory = SCHEDULERS[scheduler]
        except KeyError:
            raise ConfigError(
                f"unknown scheduler {scheduler!r}; "
                f"choose from {sorted(SCHEDULERS)}") from None
        point = run_point(
            machine_spec, factory, spec,
            warmup_cycles=warmup_cycles, measure_cycles=measure_cycles,
            workload_factory=catalog.build, seed=seed, obs=obs)
        series.append(Series(scheduler, [point]))
    ops = catalog.compile_spec(spec)
    report = figure_report(
        f"scenario {name} [{item.stress}]: {item.summary}",
        series, x_label="footprint (KB)",
        y_label="1000s of operations per second",
        notes=(f"seed-deterministic scenario from "
               f"repro.workloads.scenarios ({ops.total_bytes // 1024} KB "
               f"over {ops.n_objects} objects on MachineSpec.tiny()); "
               f"run the 'scenarios' sweep preset for the full "
               f"scheduler matrix."))
    return FigureResult(f"scenario-{name}", series, report)


#: Experiment registry for the CLI.
EXPERIMENTS: Dict[str, Callable[..., FigureResult]] = {
    "fig4a": figure_4a,
    "fig4b": figure_4b,
    "fig2": figure_2,
    "packing": packing_complexity,
    "migration": migration_cost_sweep,
    "clustering": clustering_comparison,
    "future": future_multicore,
    "replication": replication_ablation,
    "replacement": replacement_ablation,
    "objclustering": object_clustering_ablation,
    "packingpolicy": packing_policy_ablation,
}

"""Benchmark harness regenerating the paper's figures and ablations."""

from repro.bench.ascii_plot import plot
from repro.bench.figures import (EXPERIMENTS, BENCH_SCALE, FigureResult,
                                 Profile, PROFILES, clustering_comparison,
                                 figure_2, figure_4a, figure_4b,
                                 future_multicore, migration_cost_sweep,
                                 object_clustering_ablation,
                                 packing_complexity, replacement_ablation,
                                 replication_ablation)
from repro.bench.harness import (SCHEDULERS, BenchPoint, Series,
                                 coretime_factory, run_point, sweep)
from repro.bench.report import figure_report, save_report, table

__all__ = [
    "BENCH_SCALE",
    "BenchPoint",
    "EXPERIMENTS",
    "FigureResult",
    "PROFILES",
    "Profile",
    "SCHEDULERS",
    "Series",
    "clustering_comparison",
    "coretime_factory",
    "figure_2",
    "figure_4a",
    "figure_4b",
    "figure_report",
    "future_multicore",
    "migration_cost_sweep",
    "object_clustering_ablation",
    "packing_complexity",
    "plot",
    "replacement_ablation",
    "replication_ablation",
    "run_point",
    "save_report",
    "sweep",
    "table",
]

"""Simulator performance kernels and the benchmark-regression gate.

``python -m repro.bench perf`` times three representative workload
kernels — the Figure 2 residency workload, a Figure 4(a) sweep point,
and a migration-heavy CoreTime run — measuring **only** the simulation
loop (workload/image construction is excluded), and writes the results
to ``BENCH_simulator.json``.

Each workload kernel is timed under every requested *engine* kernel
(``generic`` oracle loop and the ``batched`` macro-step loop from
:mod:`repro.sim.batch`); report entries are keyed
``<workload>:<engine>`` (e.g. ``fig2:batched``), so the regression gate
covers both run loops independently — the batched kernel cannot
silently regress back to generic speed, and the generic oracle cannot
rot.

Raw wall-clock numbers are useless across machines, so a pure-Python
*calibration burst* exercising the same interpreter operations the
simulator leans on (ordered-dict inserts/evictions, holder-set
mutation) runs adjacent to every timed repeat, and each repeat is
normalized by its own burst — pairing them cancels machine-load drift
within a run.  Kernel throughput is reported both raw (steps/second)
and *normalized* — steps per second divided by the paired calibration
score — and the CI gate (``--check``) compares normalized
throughput against the committed baseline with a symmetric tolerance
band: a drop beyond it fails the build, a gain beyond it warns that the
baseline is stale.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import summarise
from repro.bench.harness import SCHEDULERS, coretime_factory
from repro.cpu.machine import Machine
from repro.cpu.topology import MachineSpec
from repro.sim.engine import KERNELS as ENGINE_KERNELS
from repro.sim.engine import Simulator
from repro.workloads.dirlookup import DirectoryLookupWorkload, DirWorkloadSpec

#: Schema version of BENCH_simulator.json.  2: kernel entries are keyed
#: ``<workload>:<engine-kernel>`` and both engine run loops are gated.
SCHEMA = 2

#: Default repeats per kernel (first repeat is discarded as warm-up
#: unless it is the only one).
DEFAULT_REPEATS = 5

#: Relative tolerance of the regression gate: normalized throughput may
#: drift this far from the committed baseline before CI reacts.
DEFAULT_TOLERANCE = 0.20

#: Iterations of the calibration burst.
_CALIBRATION_N = 300_000


# ---------------------------------------------------------------------------
# kernels: build (untimed) -> run (timed)
# ---------------------------------------------------------------------------

def _fig2_setup() -> Tuple[Simulator, int]:
    """The Figure 2 machine/workload (quick profile geometry)."""
    spec = MachineSpec(
        name="fig2-4core", n_chips=1, cores_per_chip=4,
        l1_bytes=2048, l2_bytes=12 * 1024, l3_bytes=32 * 1024,
        migration_cost=250)
    machine = Machine(spec)
    simulator = Simulator(machine, SCHEDULERS["thread"]())
    workload_spec = DirWorkloadSpec(
        n_dirs=20, files_per_dir=128, cluster_bytes=512,
        think_cycles=12, threads_per_core=4, seed=42)
    DirectoryLookupWorkload(machine, workload_spec).spawn_all(simulator)
    return simulator, 3_000_000


def _fig4a_setup() -> Tuple[Simulator, int]:
    """One Figure 4(a) sweep point (quick profile, thread scheduler)."""
    from repro.bench.figures import BENCH_SCALE
    machine = Machine(MachineSpec.scaled(BENCH_SCALE))
    simulator = Simulator(machine, SCHEDULERS["thread"]())
    workload_spec = DirWorkloadSpec.scaled(BENCH_SCALE, n_dirs=160)
    DirectoryLookupWorkload(machine, workload_spec).spawn_all(simulator)
    return simulator, 1_500_000


def _migration_setup() -> Tuple[Simulator, int]:
    """The same sweep point under CoreTime (migration-heavy path)."""
    from repro.bench.figures import BENCH_SCALE
    machine = Machine(MachineSpec.scaled(BENCH_SCALE))
    simulator = Simulator(
        machine, coretime_factory(monitor_interval=50_000)())
    workload_spec = DirWorkloadSpec.scaled(BENCH_SCALE, n_dirs=160)
    DirectoryLookupWorkload(machine, workload_spec).spawn_all(simulator)
    return simulator, 1_500_000


KERNELS: Dict[str, Callable[[], Tuple[Simulator, int]]] = {
    "fig2": _fig2_setup,
    "fig4a": _fig4a_setup,
    "migration": _migration_setup,
}


# ---------------------------------------------------------------------------
# calibration
# ---------------------------------------------------------------------------

def _calibration_burst(n: int = _CALIBRATION_N) -> int:
    """Fixed interpreter work shaped like the simulator's hot path."""
    lines: "OrderedDict[int, None]" = OrderedDict()
    holders: Dict[int, set] = {}
    total = 0
    for i in range(n):
        key = i & 1023
        if key in lines:
            lines.move_to_end(key)
        else:
            lines[key] = None
            if len(lines) > 512:
                victim = lines.popitem(last=False)[0]
                total += victim
        bucket = holders.get(i & 511)
        if bucket is None:
            holders[i & 511] = {i & 255}
        else:
            bucket.add(i & 255)
    return total + len(lines) + len(holders)


def calibrate(repeats: int = 3) -> float:
    """Calibration score: burst iterations per second (best of repeats)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _calibration_burst()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return _CALIBRATION_N / best


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------

def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted samples."""
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def _stats_dict(values: List[float]) -> Dict[str, float]:
    stats = summarise(values)
    ordered = sorted(values)
    return {
        "n": stats.n,
        "mean": stats.mean,
        "stdev": stats.stdev,
        "min": stats.minimum,
        "max": stats.maximum,
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
    }


def run_kernel(name: str, repeats: int = DEFAULT_REPEATS,
               engine_kernel: str = "generic") -> Dict:
    """Time one kernel ``repeats`` times; returns raw samples + stats.

    Each repeat builds a fresh simulator (untimed), selects the
    requested engine run loop, and times only ``Simulator.run``.  The
    first repeat is discarded as interpreter warm-up when more than one
    was requested.

    A calibration burst runs *adjacent to every repeat* and each
    repeat is normalized by its own burst: machine load drifts on the
    scale of whole perf runs, so one calibration at process start can
    sample a quiet (or busy) instant and skew every kernel measured
    minutes later.  Pairing them cancels the drift; the per-kernel
    ``normalized_throughput`` is the *median* paired ratio — a max
    would reward repeats whose burst happened to land on a busy
    instant (slow burst inflates the ratio), which is exactly the
    noise the pairing is meant to cancel.
    """
    setup = KERNELS[name]
    samples: List[float] = []
    scores: List[float] = []
    steps = 0
    for _ in range(repeats + (1 if repeats > 1 else 0)):
        started = time.perf_counter()
        _calibration_burst()
        scores.append(_CALIBRATION_N / (time.perf_counter() - started))
        simulator, until = setup()
        simulator.kernel = engine_kernel
        started = time.perf_counter()
        simulator.run(until=until)
        elapsed = time.perf_counter() - started
        steps = simulator.total_steps
        samples.append(elapsed)
    if len(samples) > 1:
        samples = samples[1:]
        scores = scores[1:]
    throughput = [steps / s for s in samples]
    return {
        "steps": steps,
        "engine_kernel": engine_kernel,
        "wall_seconds": _stats_dict(samples),
        "steps_per_sec": _stats_dict(throughput),
        "calibration": _stats_dict(scores),
        "normalized_throughput": _percentile(
            sorted(t / s for t, s in zip(throughput, scores)), 0.50),
    }


def run_perf(repeats: int = DEFAULT_REPEATS,
             kernels: Optional[Sequence[str]] = None,
             engine_kernels: Optional[Sequence[str]] = None) -> Dict:
    """Run the calibration burst plus every requested kernel.

    Every workload kernel is timed once per engine kernel (default:
    all of :data:`repro.sim.engine.KERNELS`); the report keys the
    entries ``<workload>:<engine>``.
    """
    names = list(kernels) if kernels else list(KERNELS)
    engines = list(engine_kernels) if engine_kernels \
        else list(ENGINE_KERNELS)
    score = calibrate()
    report: Dict = {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "calibration_score": score,
        "engine_kernels": engines,
        "kernels": {},
    }
    for name in names:
        for engine in engines:
            report["kernels"][f"{name}:{engine}"] = run_kernel(
                name, repeats, engine_kernel=engine)
    return report


# ---------------------------------------------------------------------------
# regression gate
# ---------------------------------------------------------------------------

def compare(current: Dict, baseline: Dict,
            tolerance: float = DEFAULT_TOLERANCE) -> Tuple[List[str],
                                                           List[str]]:
    """Compare normalized throughput against a committed baseline.

    Returns ``(regressions, improvements)`` message lists.  Only kernels
    present in both reports are compared; a kernel missing from the
    current run counts as a regression (the gate must not silently pass
    because a kernel stopped running).
    """
    regressions: List[str] = []
    improvements: List[str] = []
    for name, base in baseline.get("kernels", {}).items():
        base_norm = base.get("normalized_throughput")
        if base_norm is None:
            continue
        now = current.get("kernels", {}).get(name)
        if now is None:
            regressions.append(f"{name}: kernel missing from current run")
            continue
        ratio = now["normalized_throughput"] / base_norm
        line = (f"{name}: normalized throughput {ratio:.3f}x of baseline "
                f"({now['normalized_throughput']:.3f} vs {base_norm:.3f})")
        if ratio < 1.0 - tolerance:
            regressions.append(line)
        elif ratio > 1.0 + tolerance:
            improvements.append(line)
    return regressions, improvements


def format_report(report: Dict) -> str:
    lines = [
        "simulator perf kernels "
        f"(python {report['python']}, {report['repeats']} repeats, "
        f"calibration score {report['calibration_score']:,.0f}/s)",
    ]
    for name, kernel in report["kernels"].items():
        sps = kernel["steps_per_sec"]
        lines.append(
            f"  {name:<16} {sps['p50']:>12,.0f} steps/s p50 "
            f"(p95 {sps['p95']:,.0f}, mean {sps['mean']:,.0f}) "
            f"normalized {kernel['normalized_throughput']:.3f}")
    # Batched-over-generic speedup per workload, when both were run.
    kernels = report["kernels"]
    for name in sorted({key.split(":")[0] for key in kernels}):
        generic = kernels.get(f"{name}:generic")
        batched = kernels.get(f"{name}:batched")
        if generic and batched:
            ratio = (batched["normalized_throughput"]
                     / generic["normalized_throughput"])
            lines.append(f"  {name:<16} batched/generic speedup "
                         f"{ratio:.2f}x")
    return "\n".join(lines)


def main_perf(args) -> int:
    """Back end of ``python -m repro.bench perf``."""
    kernels = args.kernels.split(",") if args.kernels else None
    if kernels:
        unknown = [k for k in kernels if k not in KERNELS]
        if unknown:
            print(f"unknown kernels: {', '.join(unknown)} "
                  f"(choose from {', '.join(KERNELS)})", file=sys.stderr)
            return 2
    engines = (args.engine_kernels.split(",")
               if getattr(args, "engine_kernels", None) else None)
    if engines:
        unknown = [k for k in engines if k not in ENGINE_KERNELS]
        if unknown:
            print(f"unknown engine kernels: {', '.join(unknown)} "
                  f"(choose from {', '.join(ENGINE_KERNELS)})",
                  file=sys.stderr)
            return 2
    report = run_perf(repeats=args.repeats, kernels=kernels,
                      engine_kernels=engines)
    print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"perf report -> {args.out}")
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as stream:
            baseline = json.load(stream)
        regressions, improvements = compare(report, baseline,
                                            tolerance=args.tolerance)
        for line in improvements:
            print(f"IMPROVEMENT (refresh the baseline?): {line}")
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        if args.check and regressions:
            return 1
    return 0

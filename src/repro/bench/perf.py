"""Simulator performance kernels and the benchmark-regression gate.

``python -m repro.bench perf`` times three representative kernels —
the Figure 2 residency workload, a Figure 4(a) sweep point, and a
migration-heavy CoreTime run — measuring **only** the simulation loop
(workload/image construction is excluded), and writes the results to
``BENCH_simulator.json``.

Raw wall-clock numbers are useless across machines, so every run first
times a pure-Python *calibration burst* exercising the same interpreter
operations the simulator leans on (ordered-dict inserts/evictions,
holder-set mutation).  Kernel throughput is reported both raw
(steps/second) and *normalized* — steps per second divided by the
calibration score — and the CI gate (``--check``) compares normalized
throughput against the committed baseline with a symmetric tolerance
band: a drop beyond it fails the build, a gain beyond it warns that the
baseline is stale.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import summarise
from repro.bench.harness import SCHEDULERS, coretime_factory
from repro.cpu.machine import Machine
from repro.cpu.topology import MachineSpec
from repro.sim.engine import Simulator
from repro.workloads.dirlookup import DirectoryLookupWorkload, DirWorkloadSpec

#: Schema version of BENCH_simulator.json.
SCHEMA = 1

#: Default repeats per kernel (first repeat is discarded as warm-up
#: unless it is the only one).
DEFAULT_REPEATS = 5

#: Relative tolerance of the regression gate: normalized throughput may
#: drift this far from the committed baseline before CI reacts.
DEFAULT_TOLERANCE = 0.20

#: Iterations of the calibration burst.
_CALIBRATION_N = 300_000


# ---------------------------------------------------------------------------
# kernels: build (untimed) -> run (timed)
# ---------------------------------------------------------------------------

def _fig2_setup() -> Tuple[Simulator, int]:
    """The Figure 2 machine/workload (quick profile geometry)."""
    spec = MachineSpec(
        name="fig2-4core", n_chips=1, cores_per_chip=4,
        l1_bytes=2048, l2_bytes=12 * 1024, l3_bytes=32 * 1024,
        migration_cost=250)
    machine = Machine(spec)
    simulator = Simulator(machine, SCHEDULERS["thread"]())
    workload_spec = DirWorkloadSpec(
        n_dirs=20, files_per_dir=128, cluster_bytes=512,
        think_cycles=12, threads_per_core=4, seed=42)
    DirectoryLookupWorkload(machine, workload_spec).spawn_all(simulator)
    return simulator, 3_000_000


def _fig4a_setup() -> Tuple[Simulator, int]:
    """One Figure 4(a) sweep point (quick profile, thread scheduler)."""
    from repro.bench.figures import BENCH_SCALE
    machine = Machine(MachineSpec.scaled(BENCH_SCALE))
    simulator = Simulator(machine, SCHEDULERS["thread"]())
    workload_spec = DirWorkloadSpec.scaled(BENCH_SCALE, n_dirs=160)
    DirectoryLookupWorkload(machine, workload_spec).spawn_all(simulator)
    return simulator, 1_500_000


def _migration_setup() -> Tuple[Simulator, int]:
    """The same sweep point under CoreTime (migration-heavy path)."""
    from repro.bench.figures import BENCH_SCALE
    machine = Machine(MachineSpec.scaled(BENCH_SCALE))
    simulator = Simulator(
        machine, coretime_factory(monitor_interval=50_000)())
    workload_spec = DirWorkloadSpec.scaled(BENCH_SCALE, n_dirs=160)
    DirectoryLookupWorkload(machine, workload_spec).spawn_all(simulator)
    return simulator, 1_500_000


KERNELS: Dict[str, Callable[[], Tuple[Simulator, int]]] = {
    "fig2": _fig2_setup,
    "fig4a": _fig4a_setup,
    "migration": _migration_setup,
}


# ---------------------------------------------------------------------------
# calibration
# ---------------------------------------------------------------------------

def _calibration_burst(n: int = _CALIBRATION_N) -> int:
    """Fixed interpreter work shaped like the simulator's hot path."""
    lines: "OrderedDict[int, None]" = OrderedDict()
    holders: Dict[int, set] = {}
    total = 0
    for i in range(n):
        key = i & 1023
        if key in lines:
            lines.move_to_end(key)
        else:
            lines[key] = None
            if len(lines) > 512:
                victim = lines.popitem(last=False)[0]
                total += victim
        bucket = holders.get(i & 511)
        if bucket is None:
            holders[i & 511] = {i & 255}
        else:
            bucket.add(i & 255)
    return total + len(lines) + len(holders)


def calibrate(repeats: int = 3) -> float:
    """Calibration score: burst iterations per second (best of repeats)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _calibration_burst()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return _CALIBRATION_N / best


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------

def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted samples."""
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def _stats_dict(values: List[float]) -> Dict[str, float]:
    stats = summarise(values)
    ordered = sorted(values)
    return {
        "n": stats.n,
        "mean": stats.mean,
        "stdev": stats.stdev,
        "min": stats.minimum,
        "max": stats.maximum,
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
    }


def run_kernel(name: str, repeats: int = DEFAULT_REPEATS) -> Dict:
    """Time one kernel ``repeats`` times; returns raw samples + stats.

    Each repeat builds a fresh simulator (untimed) and times only
    ``Simulator.run``.  The first repeat is discarded as interpreter
    warm-up when more than one was requested.
    """
    setup = KERNELS[name]
    samples: List[float] = []
    steps = 0
    for _ in range(repeats + (1 if repeats > 1 else 0)):
        simulator, until = setup()
        started = time.perf_counter()
        simulator.run(until=until)
        elapsed = time.perf_counter() - started
        steps = simulator.total_steps
        samples.append(elapsed)
    if len(samples) > 1:
        samples = samples[1:]
    throughput = [steps / s for s in samples]
    return {
        "steps": steps,
        "wall_seconds": _stats_dict(samples),
        "steps_per_sec": _stats_dict(throughput),
    }


def run_perf(repeats: int = DEFAULT_REPEATS,
             kernels: Optional[Sequence[str]] = None) -> Dict:
    """Run the calibration burst plus every requested kernel."""
    names = list(kernels) if kernels else list(KERNELS)
    score = calibrate()
    report: Dict = {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "calibration_score": score,
        "kernels": {},
    }
    for name in names:
        result = run_kernel(name, repeats)
        # Best-of, not median: scheduling noise only ever *slows* the
        # interpreter, so max throughput is the stable estimator — the
        # p50/p95 spread is still reported for visibility.
        result["normalized_throughput"] = (
            result["steps_per_sec"]["max"] / score)
        report["kernels"][name] = result
    return report


# ---------------------------------------------------------------------------
# regression gate
# ---------------------------------------------------------------------------

def compare(current: Dict, baseline: Dict,
            tolerance: float = DEFAULT_TOLERANCE) -> Tuple[List[str],
                                                           List[str]]:
    """Compare normalized throughput against a committed baseline.

    Returns ``(regressions, improvements)`` message lists.  Only kernels
    present in both reports are compared; a kernel missing from the
    current run counts as a regression (the gate must not silently pass
    because a kernel stopped running).
    """
    regressions: List[str] = []
    improvements: List[str] = []
    for name, base in baseline.get("kernels", {}).items():
        base_norm = base.get("normalized_throughput")
        if base_norm is None:
            continue
        now = current.get("kernels", {}).get(name)
        if now is None:
            regressions.append(f"{name}: kernel missing from current run")
            continue
        ratio = now["normalized_throughput"] / base_norm
        line = (f"{name}: normalized throughput {ratio:.3f}x of baseline "
                f"({now['normalized_throughput']:.3f} vs {base_norm:.3f})")
        if ratio < 1.0 - tolerance:
            regressions.append(line)
        elif ratio > 1.0 + tolerance:
            improvements.append(line)
    return regressions, improvements


def format_report(report: Dict) -> str:
    lines = [
        "simulator perf kernels "
        f"(python {report['python']}, {report['repeats']} repeats, "
        f"calibration score {report['calibration_score']:,.0f}/s)",
    ]
    for name, kernel in report["kernels"].items():
        sps = kernel["steps_per_sec"]
        lines.append(
            f"  {name:<10} {sps['p50']:>12,.0f} steps/s p50 "
            f"(p95 {sps['p95']:,.0f}, mean {sps['mean']:,.0f}) "
            f"normalized {kernel['normalized_throughput']:.3f}")
    return "\n".join(lines)


def main_perf(args) -> int:
    """Back end of ``python -m repro.bench perf``."""
    kernels = args.kernels.split(",") if args.kernels else None
    if kernels:
        unknown = [k for k in kernels if k not in KERNELS]
        if unknown:
            print(f"unknown kernels: {', '.join(unknown)} "
                  f"(choose from {', '.join(KERNELS)})", file=sys.stderr)
            return 2
    report = run_perf(repeats=args.repeats, kernels=kernels)
    print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"perf report -> {args.out}")
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as stream:
            baseline = json.load(stream)
        regressions, improvements = compare(report, baseline,
                                            tolerance=args.tolerance)
        for line in improvements:
            print(f"IMPROVEMENT (refresh the baseline?): {line}")
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        if args.check and regressions:
            return 1
    return 0

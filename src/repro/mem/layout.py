"""Simulated address-space allocator.

Workloads and the FAT image need stable, non-overlapping address regions so
that distinct objects map to distinct cache lines.  :class:`AddressSpace` is
a simple bump allocator with line alignment and named regions — enough to
lay out images deterministically and to translate an address back to the
region (and therefore the object) that owns it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AllocationError
from repro.mem.line import align_up


@dataclass(frozen=True)
class Region:
    """A named, contiguous allocation."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressSpace:
    """Bump allocator over a flat simulated address space."""

    def __init__(self, size: int = 1 << 40, base: int = 0,
                 line_size: int = 64) -> None:
        if size <= 0:
            raise AllocationError("address space size must be positive")
        self._base = base
        self._limit = base + size
        self._next = base
        self._line_size = line_size
        self._regions: Dict[str, Region] = {}
        self._starts: List[int] = []          # sorted region bases
        self._by_start: List[Region] = []     # regions sorted by base

    @property
    def line_size(self) -> int:
        return self._line_size

    @property
    def bytes_used(self) -> int:
        return self._next - self._base

    def alloc(self, name: str, size: int,
              alignment: Optional[int] = None) -> Region:
        """Allocate ``size`` bytes, aligned to a line by default.

        Region names must be unique; they are how tooling maps addresses
        back to objects.
        """
        if size <= 0:
            raise AllocationError(f"region {name!r}: size must be positive")
        if name in self._regions:
            raise AllocationError(f"region {name!r} already allocated")
        alignment = alignment or self._line_size
        base = align_up(self._next, alignment)
        if base + size > self._limit:
            raise AllocationError(
                f"region {name!r}: out of address space "
                f"({base + size - self._limit} bytes over)")
        region = Region(name, base, size)
        self._next = base + size
        self._regions[name] = region
        index = bisect.bisect(self._starts, base)
        self._starts.insert(index, base)
        self._by_start.insert(index, region)
        return region

    def region(self, name: str) -> Region:
        return self._regions[name]

    def regions(self) -> List[Region]:
        return list(self._by_start)

    def find(self, addr: int) -> Optional[Region]:
        """Region containing ``addr``, or None."""
        index = bisect.bisect(self._starts, addr) - 1
        if index < 0:
            return None
        region = self._by_start[index]
        return region if region.contains(addr) else None

"""Global line-sharing directory (the coherence substrate).

Real AMD hardware locates remote copies with coherence broadcasts over the
square interconnect; we model the *outcome* of that protocol with a global
directory mapping each line to the set of holders that currently cache it.
The directory is how the simulator reproduces the two effects the paper
cares about:

* **replication** — a line read by many cores appears in many holder sets,
  consuming capacity in each (visible as shrinking effective on-chip data);
* **invalidation** — a store removes every remote copy, so read/write
  sharing generates interconnect traffic and subsequent remote misses.

Holder ids are small integers: ``0 .. n_cores-1`` identify the private
(L1+L2) hierarchy of each core, and ``n_cores + chip_id`` identifies a
chip's shared L3.  Only :class:`repro.mem.system.MemorySystem` mutates the
directory, keeping it consistent with actual cache contents.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set


class SharingDirectory:
    """Tracks, for every cached line, which holders have a copy."""

    __slots__ = ("n_cores", "_holders")

    def __init__(self, n_cores: int) -> None:
        self.n_cores = n_cores
        self._holders: Dict[int, Set[int]] = {}

    # -- holder-id helpers ------------------------------------------------

    def core_holder(self, core_id: int) -> int:
        """Holder id for a core's private caches."""
        return core_id

    def l3_holder(self, chip_id: int) -> int:
        """Holder id for a chip's shared L3."""
        return self.n_cores + chip_id

    def is_l3_holder(self, holder: int) -> bool:
        return holder >= self.n_cores

    def chip_of_holder(self, holder: int, cores_per_chip: int) -> int:
        """Chip on which ``holder`` (core or L3) resides."""
        if holder >= self.n_cores:
            return holder - self.n_cores
        return holder // cores_per_chip

    # -- membership --------------------------------------------------------

    def add(self, line: int, holder: int) -> None:
        holders = self._holders.get(line)
        if holders is None:
            self._holders[line] = {holder}
        else:
            holders.add(holder)

    def discard(self, line: int, holder: int) -> None:
        holders = self._holders.get(line)
        if holders is None:
            return
        holders.discard(holder)
        if not holders:
            del self._holders[line]

    def holders(self, line: int) -> FrozenSet[int]:
        """Immutable view of the holders of ``line`` (empty if uncached)."""
        holders = self._holders.get(line)
        return frozenset(holders) if holders else frozenset()

    def holders_excluding(self, line: int, holder: int) -> List[int]:
        """Holders of ``line`` other than ``holder`` (mutation-safe list)."""
        holders = self._holders.get(line)
        if not holders:
            return []
        return [h for h in holders if h != holder]

    def any_holder(self, line: int) -> Optional[int]:
        holders = self._holders.get(line)
        if not holders:
            return None
        return next(iter(holders))

    def is_cached(self, line: int) -> bool:
        return line in self._holders

    def quiescent_for(self, line: int, holder: int) -> bool:
        """True when touching ``line`` from ``holder`` cannot generate
        coherence traffic: the line is uncached, or ``holder`` is its sole
        holder.  The batched engine kernel uses this to decide whether a
        store can skip the invalidation sweep entirely (no remote copy
        exists to invalidate), keeping a quiescent core's run of events
        free of cross-core interaction."""
        holders = self._holders.get(line)
        if holders is None:
            return True
        return len(holders) == 1 and holder in holders

    def sharer_count(self, line: int) -> int:
        holders = self._holders.get(line)
        return len(holders) if holders else 0

    def cached_lines(self) -> Iterable[int]:
        return self._holders.keys()

    def items(self) -> Iterable[tuple]:
        """(line, holder-set view) pairs — the invariant checker walks
        these to reconcile the directory against actual cache contents."""
        return self._holders.items()

    def clear(self) -> None:
        """Forget every holder, in place (keeps the dict's identity — the
        memory system's fast path holds a direct reference to it)."""
        self._holders.clear()

    def __len__(self) -> int:
        return len(self._holders)

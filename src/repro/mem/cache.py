"""Cache capacity models.

Two interchangeable models are provided:

* :class:`LRUCache` — fully associative, true LRU.  This is the fast path
  used by the benchmark harness; for the workloads studied here (streaming
  scans over objects much larger than a set) it predicts the same resident
  sets as a set-associative cache.
* :class:`SetAssociativeCache` — index-bit set mapping with per-set LRU,
  for experiments where conflict misses matter.

Caches store only *presence* and recency of lines.  Coherence state (which
caches hold a line) lives in :class:`repro.mem.sharing.SharingDirectory`;
keeping the two separate keeps the per-access hot path small.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.errors import ConfigError


class LRUCache:
    """Fully associative cache with true LRU replacement.

    The unit is a cache-line number; the cache neither knows nor cares
    about byte addresses.  ``insert`` returns the evicted victim line (if
    any) so callers can cascade victims to the next level.
    """

    __slots__ = ("cache_id", "capacity", "_lines", "pinned", "evictions")

    def __init__(self, capacity: int, cache_id: str = "?") -> None:
        if capacity < 1:
            raise ConfigError(f"cache {cache_id}: capacity must be >= 1 line")
        self.cache_id = cache_id
        self.capacity = capacity
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        #: Lines exempt from eviction (used by explicit cache control
        #: experiments, §6.1).  Pinned lines still count against capacity.
        self.pinned: set = set()
        #: Lifetime capacity evictions (victims returned by ``insert``);
        #: pulled into the observability metrics registry as a gauge.
        self.evictions = 0

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def free_lines(self) -> int:
        return self.capacity - len(self._lines)

    def touch(self, line: int) -> None:
        """Mark ``line`` most-recently-used.  No-op if absent."""
        if line in self._lines:
            self._lines.move_to_end(line)

    def insert(self, line: int) -> Optional[int]:
        """Insert ``line`` as MRU; return the evicted victim, if any.

        Inserting a line already present just refreshes its recency and
        returns None.
        """
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
            return None
        lines[line] = None
        if len(lines) <= self.capacity:
            return None
        return self._evict()

    def _evict(self) -> int:
        """Pop and return the LRU victim (the cache is over capacity).

        Split out of :meth:`insert` so the memory system's flattened hot
        path can do the presence test and MRU insert inline on ``_lines``
        and only pay a method call on actual overflow.
        """
        lines = self._lines
        self.evictions += 1
        if not self.pinned:
            victim, _ = lines.popitem(last=False)
            return victim
        for candidate in lines:
            if candidate not in self.pinned:
                del lines[candidate]
                return candidate
        # Everything pinned: evict the newcomer's LRU anyway to preserve
        # the capacity invariant.
        victim, _ = lines.popitem(last=False)
        return victim

    def remove(self, line: int) -> None:
        """Remove ``line``; silently ignores absent lines (invalidation of
        a line another cache already evicted is common)."""
        self._lines.pop(line, None)
        self.pinned.discard(line)

    def pin(self, line: int) -> None:
        if line in self._lines:
            self.pinned.add(line)

    def unpin(self, line: int) -> None:
        self.pinned.discard(line)

    def lines(self) -> Iterator[int]:
        """Lines in LRU-to-MRU order."""
        return iter(self._lines)

    def clear(self) -> None:
        self._lines.clear()
        self.pinned.clear()


class SetAssociativeCache:
    """Set-associative cache with per-set LRU replacement.

    Exposes the same interface as :class:`LRUCache`.  The set index is the
    low bits of the line number, as in real hardware.
    """

    __slots__ = ("cache_id", "capacity", "n_sets", "ways", "_sets", "_size",
                 "pinned", "evictions")

    def __init__(self, capacity: int, ways: int = 8,
                 cache_id: str = "?") -> None:
        if capacity < 1:
            raise ConfigError(f"cache {cache_id}: capacity must be >= 1 line")
        if ways < 1:
            raise ConfigError(f"cache {cache_id}: ways must be >= 1")
        ways = min(ways, capacity)
        n_sets = max(1, capacity // ways)
        # Round down to a power of two so the index is a mask.
        while n_sets & (n_sets - 1):
            n_sets &= n_sets - 1
        self.cache_id = cache_id
        self.n_sets = n_sets
        self.ways = capacity // n_sets
        self.capacity = self.n_sets * self.ways
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(n_sets)]
        self._size = 0
        self.pinned: set = set()
        self.evictions = 0

    def _set_of(self, line: int) -> "OrderedDict[int, None]":
        return self._sets[line & (self.n_sets - 1)]

    def __contains__(self, line: int) -> bool:
        return line in self._set_of(line)

    def __len__(self) -> int:
        return self._size

    @property
    def free_lines(self) -> int:
        return self.capacity - self._size

    def touch(self, line: int) -> None:
        bucket = self._set_of(line)
        if line in bucket:
            bucket.move_to_end(line)

    def insert(self, line: int) -> Optional[int]:
        bucket = self._set_of(line)
        if line in bucket:
            bucket.move_to_end(line)
            return None
        bucket[line] = None
        self._size += 1
        if len(bucket) <= self.ways:
            return None
        victim = None
        for candidate in bucket:
            if candidate not in self.pinned:
                victim = candidate
                break
        if victim is None:
            victim = next(iter(bucket))
        del bucket[victim]
        self._size -= 1
        self.evictions += 1
        return victim

    def remove(self, line: int) -> None:
        bucket = self._set_of(line)
        if line in bucket:
            del bucket[line]
            self._size -= 1
        self.pinned.discard(line)

    def pin(self, line: int) -> None:
        if line in self._set_of(line):
            self.pinned.add(line)

    def unpin(self, line: int) -> None:
        self.pinned.discard(line)

    def lines(self) -> Iterator[int]:
        for bucket in self._sets:
            yield from bucket

    def clear(self) -> None:
        for bucket in self._sets:
            bucket.clear()
        self._size = 0
        self.pinned.clear()

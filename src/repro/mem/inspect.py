"""Cache-content inspection (Figure 2 support).

Figure 2 of the paper is a snapshot of which directories live in which
caches under the two schedulers.  These helpers compute exactly that from
a live :class:`~repro.mem.system.MemorySystem`: for an address range, how
many of its lines each cache currently holds, and which single location
"owns" the object for presentation purposes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.mem.system import MemorySystem

#: Location labels used in residency maps.
OFF_CHIP = "off-chip"


def region_residency(memory: MemorySystem, addr: int,
                     nbytes: int) -> Dict[str, int]:
    """Lines of ``[addr, addr+nbytes)`` held per location.

    Locations are ``core<N>`` (private L1+L2), ``L3.<chip>``, and
    ``off-chip`` for lines in no cache.  A line replicated in several
    caches counts once per location (replication is the point).
    """
    line_size = memory.line_size
    first = addr // line_size
    last = (addr + nbytes - 1) // line_size
    counts: Dict[str, int] = {}
    directory = memory.directory
    n_cores = memory.spec.n_cores
    for line in range(first, last + 1):
        holders = directory.holders(line)
        if not holders:
            counts[OFF_CHIP] = counts.get(OFF_CHIP, 0) + 1
            continue
        for holder in holders:
            if holder >= n_cores:
                label = f"L3.{holder - n_cores}"
            else:
                label = f"core{holder}"
            counts[label] = counts.get(label, 0) + 1
    return counts


def dominant_location(memory: MemorySystem, addr: int, nbytes: int,
                      on_chip_threshold: float = 0.7) -> str:
    """The single location that best describes where the region lives.

    If fewer than ``on_chip_threshold`` of the region's lines are cached
    anywhere, the region is reported off-chip (it must be fetched from
    DRAM to be used), matching Figure 2's "off-chip" box.
    """
    line_size = memory.line_size
    total_lines = (addr + nbytes - 1) // line_size - addr // line_size + 1
    counts = region_residency(memory, addr, nbytes)
    off = counts.pop(OFF_CHIP, 0)
    if not counts or (total_lines - off) / total_lines < on_chip_threshold:
        return OFF_CHIP
    return max(counts.items(), key=lambda item: (item[1], item[0]))[0]


def residency_table(memory: MemorySystem,
                    regions: List[Tuple[str, int, int]]) -> Dict[str, List[str]]:
    """Group named regions by dominant location.

    ``regions`` is a list of (name, addr, nbytes).  Returns a mapping
    location -> sorted names, the shape of Figure 2.
    """
    table: Dict[str, List[str]] = {}
    for name, addr, nbytes in regions:
        location = dominant_location(memory, addr, nbytes)
        table.setdefault(location, []).append(name)
    for names in table.values():
        names.sort()
    return table

"""Address and cache-line arithmetic helpers.

The simulated address space is a flat range of byte addresses.  Caches and
the coherence directory operate on *line numbers* (address // line_size).
These helpers centralise the arithmetic so that no module hard-codes the
line size.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import AddressError


def line_of(addr: int, line_size: int) -> int:
    """Line number containing byte address ``addr``."""
    if addr < 0:
        raise AddressError(f"negative address {addr:#x}")
    return addr // line_size


def line_addr(line: int, line_size: int) -> int:
    """First byte address of ``line``."""
    return line * line_size


def lines_spanned(addr: int, nbytes: int, line_size: int) -> int:
    """Number of lines touched by ``nbytes`` starting at ``addr``."""
    if nbytes <= 0:
        return 0
    first = addr // line_size
    last = (addr + nbytes - 1) // line_size
    return last - first + 1


def line_range(addr: int, nbytes: int, line_size: int) -> Tuple[int, int]:
    """(first_line, n_lines) for the byte range ``[addr, addr + nbytes)``."""
    return addr // line_size, lines_spanned(addr, nbytes, line_size)


def iter_lines(addr: int, nbytes: int, line_size: int) -> Iterator[int]:
    """Yield every line number touched by the byte range."""
    first, count = line_range(addr, nbytes, line_size)
    return iter(range(first, first + count))


def align_up(addr: int, alignment: int) -> int:
    """Smallest multiple of ``alignment`` that is >= ``addr``."""
    return (addr + alignment - 1) & ~(alignment - 1)

"""Simulated hardware event counters.

CoreTime's runtime decisions are driven entirely by event counters (§4,
"Runtime monitoring"): per-object cache-miss counts decide which objects
are expensive to fetch, and per-core idle-cycle / DRAM-load / L2-load
counts decide when to rebalance.  :class:`CoreCounters` is the per-core
counter bank the memory system and engine update on the hot path, and
:class:`CounterSnapshot` supports the delta arithmetic the monitor uses
("misses between a pair of CoreTime annotations").
"""

from __future__ import annotations

from typing import Dict, List

#: Counter names in a fixed order (snapshot/delta rely on it).
COUNTER_FIELDS = (
    "l1_hits",
    "l2_hits",
    "l3_hits",
    "remote_hits",
    "dram_loads",
    "stores",
    "invalidations",
    "lock_acquires",
    "lock_spins",
    "migrations_in",
    "migrations_out",
    "idle_cycles",
    "busy_cycles",
    "mem_cycles",
    "ops_completed",
)


class CoreCounters:
    """Event counters for one core.  All fields are monotonically
    non-decreasing within a run."""

    __slots__ = COUNTER_FIELDS + ("core_id",)

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        for field in COUNTER_FIELDS:
            setattr(self, field, 0)

    # -- derived -----------------------------------------------------------

    @property
    def loads(self) -> int:
        """Total line loads observed by this core."""
        return (self.l1_hits + self.l2_hits + self.l3_hits
                + self.remote_hits + self.dram_loads)

    @property
    def l1_misses(self) -> int:
        """Loads that missed the L1 (the paper's per-object miss signal)."""
        return self.loads - self.l1_hits

    @property
    def offcore_loads(self) -> int:
        """Loads served beyond the core's private caches."""
        return self.l3_hits + self.remote_hits + self.dram_loads

    def snapshot(self) -> "CounterSnapshot":
        # Tuple literal in COUNTER_FIELDS order (tests pin the
        # correspondence); every ct_start takes a snapshot, so this path
        # avoids the genexpr/getattr machinery of the generic form.
        return CounterSnapshot((
            self.l1_hits, self.l2_hits, self.l3_hits, self.remote_hits,
            self.dram_loads, self.stores, self.invalidations,
            self.lock_acquires, self.lock_spins, self.migrations_in,
            self.migrations_out, self.idle_cycles, self.busy_cycles,
            self.mem_cycles, self.ops_completed))

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in COUNTER_FIELDS}

    def reset(self) -> None:
        for field in COUNTER_FIELDS:
            setattr(self, field, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        busy = self.busy_cycles
        return (f"CoreCounters(core={self.core_id}, loads={self.loads}, "
                f"dram={self.dram_loads}, idle={self.idle_cycles}, "
                f"busy={busy})")


class CounterSnapshot:
    """Immutable copy of a counter bank, supporting subtraction."""

    __slots__ = ("values",)

    def __init__(self, values: tuple) -> None:
        self.values = values

    def __getattr__(self, name: str) -> int:
        try:
            return self.values[COUNTER_FIELDS.index(name)]
        except ValueError:
            raise AttributeError(name) from None

    def __sub__(self, older: "CounterSnapshot") -> "CounterDelta":
        return CounterDelta(tuple(
            new - old for new, old in zip(self.values, older.values)))

    def as_dict(self) -> Dict[str, int]:
        return dict(zip(COUNTER_FIELDS, self.values))


class CounterDelta(CounterSnapshot):
    """Difference between two snapshots of the same counter bank."""

    @property
    def loads(self) -> int:
        return (self.l1_hits + self.l2_hits + self.l3_hits
                + self.remote_hits + self.dram_loads)

    @property
    def l1_misses(self) -> int:
        return self.loads - self.l1_hits

    @property
    def offcore_loads(self) -> int:
        return self.l3_hits + self.remote_hits + self.dram_loads


def aggregate(banks: List[CoreCounters]) -> Dict[str, int]:
    """Sum counters across cores (for machine-wide reporting)."""
    totals = {field: 0 for field in COUNTER_FIELDS}
    for bank in banks:
        for field in COUNTER_FIELDS:
            totals[field] += getattr(bank, field)
    return totals

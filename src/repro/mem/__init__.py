"""Simulated memory hierarchy: caches, coherence, interconnect, DRAM."""

from repro.mem.cache import LRUCache, SetAssociativeCache
from repro.mem.counters import (COUNTER_FIELDS, CoreCounters, CounterDelta,
                                CounterSnapshot, aggregate)
from repro.mem.dram import Dram, MemoryController
from repro.mem.interconnect import Interconnect
from repro.mem.layout import AddressSpace, Region
from repro.mem.line import (align_up, iter_lines, line_addr, line_of,
                            line_range, lines_spanned)
from repro.mem.sharing import SharingDirectory
from repro.mem.system import (SOURCE_NAMES, SRC_DRAM, SRC_L1, SRC_L2,
                              SRC_L3, SRC_REMOTE, MemorySystem)

__all__ = [
    "AddressSpace",
    "COUNTER_FIELDS",
    "CoreCounters",
    "CounterDelta",
    "CounterSnapshot",
    "Dram",
    "Interconnect",
    "LRUCache",
    "MemoryController",
    "MemorySystem",
    "Region",
    "SOURCE_NAMES",
    "SRC_DRAM",
    "SRC_L1",
    "SRC_L2",
    "SRC_L3",
    "SRC_REMOTE",
    "SetAssociativeCache",
    "SharingDirectory",
    "aggregate",
    "align_up",
    "iter_lines",
    "line_addr",
    "line_of",
    "line_range",
    "lines_spanned",
]

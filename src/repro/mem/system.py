"""The simulated memory hierarchy.

:class:`MemorySystem` is the single authority over cache contents.  It owns
every cache (per-core L1/L2, per-chip L3), the global sharing directory,
the DRAM controllers and the interconnect, and exposes three operations to
cores:

* :meth:`load` / :meth:`store` — one line, demand access;
* :meth:`scan` — a sequential byte range (a directory search), handled in
  one call per the design's scan-batching decision.

Cache levels are *exclusive*: a line lives in exactly one level of a core's
private hierarchy or in a chip's L3, so aggregate on-chip capacity is the
sum of the levels — matching the paper's arithmetic (16 MB = 4 x 2 MB L3 +
16 x 512 KB L2).  A load inserts the line at L1 and cascades victims
downward (L1 -> L2 -> chip L3 -> dropped); a hit in a lower level moves the
line up and out of that level.

Reads may be satisfied from any remote cache (replicating the line into the
local hierarchy); stores invalidate every remote copy via the sharing
directory.  Both effects — replication eating capacity, invalidation
generating interconnect traffic — are exactly what §1 of the paper blames
for poor implicit on-chip-memory scheduling.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.cpu.topology import MachineSpec
from repro.errors import ConfigError
from repro.mem.cache import LRUCache
from repro.obs.events import CacheEvicted, CacheInvalidated
from repro.mem.counters import CoreCounters
from repro.mem.dram import Dram
from repro.mem.interconnect import Interconnect
from repro.mem.sharing import SharingDirectory

#: Where a load was satisfied (returned by the internal load path and used
#: by the scan loop's stream-prefetch logic and by tests).
SRC_L1 = 0
SRC_L2 = 1
SRC_L3 = 2
SRC_REMOTE = 3
SRC_DRAM = 4

SOURCE_NAMES = ("L1", "L2", "L3", "REMOTE", "DRAM")

CacheFactory = Callable[[int, str], LRUCache]


def _default_cache_factory(capacity: int, cache_id: str) -> LRUCache:
    return LRUCache(capacity, cache_id)


class MemorySystem:
    """All caches, coherence state, interconnect and DRAM of one machine."""

    def __init__(self, spec: MachineSpec,
                 cache_factory: CacheFactory = _default_cache_factory) -> None:
        spec.validate()
        self.spec = spec
        self.line_size = spec.line_size
        n_cores = spec.n_cores
        self.l1s: List[LRUCache] = [
            cache_factory(spec.l1_lines, f"L1.{c}") for c in range(n_cores)]
        self.l2s: List[LRUCache] = [
            cache_factory(spec.l2_lines, f"L2.{c}") for c in range(n_cores)]
        self.l3s: List[LRUCache] = [
            cache_factory(spec.l3_lines, f"L3.{chip}")
            for chip in range(spec.n_chips)]
        self.directory = SharingDirectory(n_cores)
        self.dram = Dram(spec)
        self.interconnect = Interconnect(spec)
        self.counters: List[CoreCounters] = [
            CoreCounters(c) for c in range(n_cores)]
        # Pre-computed per-core values for the hot path.
        self._chip_of = [spec.chip_of(c) for c in range(n_cores)]
        self._lat = spec.latency
        # Observability: None until attach_observability(); publish sites
        # gate on it so the un-observed hot path allocates nothing.
        self._bus = None
        # Per-core operation context: the name of the annotated object the
        # core is currently operating on, maintained by the engine only
        # when memory-event capture is on (None otherwise), so miss-level
        # events can be attributed to the object being manipulated.
        self.op_obj: Optional[List[Optional[str]]] = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def attach_observability(self, obs) -> None:
        """Wire this memory system into an ``Observability`` pipeline.

        Per-event publishing (evictions, invalidations) only activates
        when the pipeline opted into memory events (``capture_memory``);
        aggregate statistics are exposed as pull gauges either way.
        """
        if obs is None:
            return
        if obs.capture_memory:
            self._bus = obs.bus
            self.op_obj = [None] * self.spec.n_cores
        else:
            self._bus = None
        registry = obs.metrics
        if registry is None:
            return
        caches = self.l1s + self.l2s + self.l3s
        registry.gauge_fn(
            "mem.cache_evictions",
            lambda: sum(c.evictions for c in caches))
        registry.gauge_fn(
            "mem.dram_lines", lambda: self.dram.total_lines_served)
        registry.gauge_fn(
            "mem.cross_chip_messages", self.interconnect.cross_chip_messages)

    # ------------------------------------------------------------------
    # single-line operations
    # ------------------------------------------------------------------

    def load(self, core_id: int, addr: int, now: int) -> int:
        """Load the line containing ``addr``; return latency in cycles."""
        latency, _ = self._load_line(
            core_id, addr // self.line_size, now, sequential=False)
        self.counters[core_id].mem_cycles += latency
        return latency

    def store(self, core_id: int, addr: int, now: int) -> int:
        """Store to the line containing ``addr``; return latency in cycles.

        The line is first brought local (charged like a load), then every
        remote copy is invalidated.  Invalidations happen in parallel on
        real hardware, so we charge the slowest one, not the sum.
        """
        line = addr // self.line_size
        latency, _ = self._load_line(core_id, line, now, sequential=False)
        counters = self.counters[core_id]
        counters.stores += 1
        my_holder = core_id  # directory.core_holder(core_id)
        others = self.directory.holders_excluding(line, my_holder)
        if others:
            my_chip = self._chip_of[core_id]
            worst = 0
            for holder in others:
                self._drop_from_holder(line, holder)
                holder_chip = self.directory.chip_of_holder(
                    holder, self.spec.cores_per_chip)
                cost = self.interconnect.invalidate_latency(
                    my_chip, holder_chip)
                if cost > worst:
                    worst = cost
                counters.invalidations += 1
            latency += worst
            bus = self._bus
            if bus is not None and bus.wants(CacheInvalidated):
                bus.publish(CacheInvalidated(now, core_id, line, len(others),
                                             self.op_obj[core_id]))
        counters.mem_cycles += latency
        return latency

    # ------------------------------------------------------------------
    # batched sequential scan
    # ------------------------------------------------------------------

    def scan(self, core_id: int, addr: int, nbytes: int, now: int,
             per_line_compute: int = 0) -> int:
        """Sequentially read ``[addr, addr + nbytes)``; return total cycles.

        Consecutive DRAM fetches after the first are charged the stream
        (prefetched) latency.  ``per_line_compute`` adds fixed compute per
        line, modelling the entry-compare loop of a directory search.
        """
        if nbytes <= 0:
            return 0
        line_size = self.line_size
        first = addr // line_size
        last = (addr + nbytes - 1) // line_size
        load_line = self._load_line
        total = 0
        stream_run = False
        for line in range(first, last + 1):
            latency, source = load_line(core_id, line, now + total,
                                        stream_run)
            total += latency + per_line_compute
            stream_run = source >= SRC_REMOTE
        self.counters[core_id].mem_cycles += total
        return total

    def prefetch(self, core_id: int, addr: int, nbytes: int, now: int) -> int:
        """Warm the local hierarchy with a byte range (no compute cost)."""
        return self.scan(core_id, addr, nbytes, now)

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------

    def _load_line(self, core_id: int, line: int, now: int,
                   sequential: bool) -> Tuple[int, int]:
        """Load one line for ``core_id``; return (latency, source)."""
        counters = self.counters[core_id]
        lat = self._lat
        l1 = self.l1s[core_id]
        if line in l1:
            l1.touch(line)
            counters.l1_hits += 1
            return lat.l1, SRC_L1
        l2 = self.l2s[core_id]
        if line in l2:
            counters.l2_hits += 1
            l2.remove(line)
            self._insert_local(core_id, line, now, already_held=True)
            return lat.l2, SRC_L2
        chip = self._chip_of[core_id]
        l3 = self.l3s[chip]
        if line in l3:
            # AMD K10's non-inclusive L3: on a hit, keep the L3 copy when
            # the line is shared (other private holders exist), so chip-
            # shared data keeps serving at 75 cycles; hand it over
            # exclusively when this requester is the only interested
            # party, so single-reader data (CoreTime-partitioned objects)
            # does not burn capacity twice.
            counters.l3_hits += 1
            if self.directory.sharer_count(line) > 1:
                l3.touch(line)
            else:
                l3.remove(line)
                self.directory.discard(line, self.directory.l3_holder(chip))
            self._insert_local(core_id, line, now, already_held=False)
            return lat.l3, SRC_L3
        holder = self._nearest_holder(line, chip)
        if holder is not None:
            counters.remote_hits += 1
            holder_chip = self.directory.chip_of_holder(
                holder, self.spec.cores_per_chip)
            if sequential:
                # A remote fetch continuing a sequential stream is
                # prefetch-pipelined like a streamed DRAM read.
                hops = self.spec.chip_distance(chip, holder_chip)
                latency = lat.remote_stream + lat.remote_hop * hops // 3
            else:
                latency = self.interconnect.remote_cache_latency(
                    chip, holder_chip)
            # Read-sharing: the remote copy stays put; we replicate.
            self._insert_local(core_id, line, now, already_held=False)
            return latency, SRC_REMOTE
        counters.dram_loads += 1
        latency = self.dram.load(line, chip, now, sequential)
        self._insert_local(core_id, line, now, already_held=False)
        return latency, SRC_DRAM

    def _nearest_holder(self, line: int, from_chip: int) -> Optional[int]:
        """Closest holder of ``line`` by chip distance, or None."""
        holders = self.directory._holders.get(line)
        if not holders:
            return None
        chip_of_holder = self.directory.chip_of_holder
        cores_per_chip = self.spec.cores_per_chip
        distance = self.spec.chip_distance
        best = None
        best_d = 1 << 30
        for holder in holders:
            d = distance(from_chip, chip_of_holder(holder, cores_per_chip))
            if d < best_d:
                best, best_d = holder, d
                if d == 0:
                    break
        return best

    def _insert_local(self, core_id: int, line: int, now: int,
                      already_held: bool) -> None:
        """Insert ``line`` at the core's L1, cascading victims downward."""
        directory = self.directory
        if not already_held:
            directory.add(line, core_id)
        victim = self.l1s[core_id].insert(line)
        if victim is None:
            return
        victim2 = self.l2s[core_id].insert(victim)
        if victim2 is None:
            return
        # Leaving the private hierarchy for the chip's shared L3.
        directory.discard(victim2, core_id)
        chip = self._chip_of[core_id]
        l3_holder = directory.l3_holder(chip)
        directory.add(victim2, l3_holder)
        victim3 = self.l3s[chip].insert(victim2)
        if victim3 is not None:
            # Clean drop: DRAM always has the data.
            directory.discard(victim3, l3_holder)
            bus = self._bus
            if bus is not None and bus.wants(CacheEvicted):
                bus.publish(CacheEvicted(now, core_id, "L3", victim3,
                                         self.op_obj[core_id]))

    def _drop_from_holder(self, line: int, holder: int) -> None:
        """Remove ``line`` from ``holder``'s caches and the directory."""
        if self.directory.is_l3_holder(holder):
            self.l3s[holder - self.directory.n_cores].remove(line)
        else:
            self.l1s[holder].remove(line)
            self.l2s[holder].remove(line)
        self.directory.discard(line, holder)

    # ------------------------------------------------------------------
    # maintenance / inspection
    # ------------------------------------------------------------------

    def flush_line(self, line: int) -> None:
        """Remove a line from every cache (test/maintenance helper)."""
        for holder in list(self.directory.holders(line)):
            self._drop_from_holder(line, holder)

    def flush_all(self) -> None:
        for cache in self.l1s + self.l2s + self.l3s:
            cache.clear()
        self.directory = SharingDirectory(self.spec.n_cores)

    def holder_caches(self, holder: int) -> List[LRUCache]:
        """The concrete cache objects behind a directory holder id."""
        if self.directory.is_l3_holder(holder):
            return [self.l3s[holder - self.directory.n_cores]]
        return [self.l1s[holder], self.l2s[holder]]

    def where_is(self, addr: int) -> List[str]:
        """Human-readable locations of the line containing ``addr``."""
        line = addr // self.line_size
        names = []
        for core_id in range(self.spec.n_cores):
            if line in self.l1s[core_id]:
                names.append(f"L1.{core_id}")
            if line in self.l2s[core_id]:
                names.append(f"L2.{core_id}")
        for chip in range(self.spec.n_chips):
            if line in self.l3s[chip]:
                names.append(f"L3.{chip}")
        return names

    def check_invariants(self) -> None:
        """Verify directory/cache consistency (test helper; O(total lines)).

        Raises :class:`~repro.errors.ConfigError` on violation.
        """
        seen = {}
        for core_id in range(self.spec.n_cores):
            for cache in (self.l1s[core_id], self.l2s[core_id]):
                for line in cache.lines():
                    holders = seen.setdefault(line, set())
                    holders.add(core_id)
        for chip in range(self.spec.n_chips):
            holder = self.directory.l3_holder(chip)
            for line in self.l3s[chip].lines():
                seen.setdefault(line, set()).add(holder)
        for core_id in range(self.spec.n_cores):
            l1, l2 = self.l1s[core_id], self.l2s[core_id]
            both = set(l1.lines()) & set(l2.lines())
            if both:
                raise ConfigError(
                    f"core {core_id}: lines in both L1 and L2: {both}")
        for line, holders in seen.items():
            recorded = set(self.directory.holders(line))
            if holders != recorded:
                raise ConfigError(
                    f"line {line}: caches say {holders}, "
                    f"directory says {recorded}")
        for line in self.directory.cached_lines():
            if line not in seen:
                raise ConfigError(f"line {line}: directory entry with no copy")

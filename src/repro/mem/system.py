"""The simulated memory hierarchy.

:class:`MemorySystem` is the single authority over cache contents.  It owns
every cache (per-core L1/L2, per-chip L3), the global sharing directory,
the DRAM controllers and the interconnect, and exposes three operations to
cores:

* :meth:`load` / :meth:`store` — one line, demand access;
* :meth:`scan` — a sequential byte range (a directory search), handled in
  one call per the design's scan-batching decision.

Cache levels are *exclusive*: a line lives in exactly one level of a core's
private hierarchy or in a chip's L3, so aggregate on-chip capacity is the
sum of the levels — matching the paper's arithmetic (16 MB = 4 x 2 MB L3 +
16 x 512 KB L2).  A load inserts the line at L1 and cascades victims
downward (L1 -> L2 -> chip L3 -> dropped); a hit in a lower level moves the
line up and out of that level.

Reads may be satisfied from any remote cache (replicating the line into the
local hierarchy); stores invalidate every remote copy via the sharing
directory.  Both effects — replication eating capacity, invalidation
generating interconnect traffic — are exactly what §1 of the paper blames
for poor implicit on-chip-memory scheduling.

Hot-path layout: when every cache is a plain :class:`LRUCache` (the
default factory), per-line lookups run through :meth:`_load_line_fast`,
which works on a per-core tuple of flattened state — counter bank, the
caches' underlying ordered dicts and capacities, chip id, L3 holder id —
plus the directory's raw line->holders dict.  This removes every Python
method call from the hit paths and the insert cascade while mutating the
exact same underlying structures, so behaviour (and event streams) are
bit-identical to the generic path used under a custom ``cache_factory``.
"""

from __future__ import annotations

from math import exp as _exp
from typing import Callable, List, Optional, Tuple

from repro.cpu.topology import MachineSpec
from repro.errors import ConfigError
from repro.mem.cache import LRUCache
from repro.obs.events import CacheEvicted, CacheInvalidated
from repro.mem.counters import CoreCounters
from repro.mem.dram import UTILISATION_CAP, UTILISATION_TAU, Dram
from repro.mem.interconnect import Interconnect
from repro.mem.sharing import SharingDirectory

#: Where a load was satisfied (returned by the internal load path and used
#: by the scan loop's stream-prefetch logic and by tests).
SRC_L1 = 0
SRC_L2 = 1
SRC_L3 = 2
SRC_REMOTE = 3
SRC_DRAM = 4

SOURCE_NAMES = ("L1", "L2", "L3", "REMOTE", "DRAM")

CacheFactory = Callable[[int, str], LRUCache]


def _default_cache_factory(capacity: int, cache_id: str) -> LRUCache:
    return LRUCache(capacity, cache_id)


class MemorySystem:
    """All caches, coherence state, interconnect and DRAM of one machine."""

    def __init__(self, spec: MachineSpec,
                 cache_factory: CacheFactory = _default_cache_factory) -> None:
        spec.validate()
        self.spec = spec
        self.line_size = spec.line_size
        n_cores = spec.n_cores
        self.l1s: List[LRUCache] = [
            cache_factory(spec.l1_lines, f"L1.{c}") for c in range(n_cores)]
        self.l2s: List[LRUCache] = [
            cache_factory(spec.l2_lines, f"L2.{c}") for c in range(n_cores)]
        self.l3s: List[LRUCache] = [
            cache_factory(spec.l3_lines, f"L3.{chip}")
            for chip in range(spec.n_chips)]
        self.directory = SharingDirectory(n_cores)
        self.dram = Dram(spec)
        self.interconnect = Interconnect(spec)
        self.counters: List[CoreCounters] = [
            CoreCounters(c) for c in range(n_cores)]
        # Pre-computed per-core values for the hot path.
        self._chip_of = [spec.chip_of(c) for c in range(n_cores)]
        self._lat = spec.latency
        self._lat_l1 = spec.latency.l1
        self._lat_l2 = spec.latency.l2
        self._lat_l3 = spec.latency.l3
        #: holder id -> chip id, for every valid holder (cores then L3s).
        self._holder_chip: List[int] = (
            [spec.chip_of(c) for c in range(n_cores)]
            + list(range(spec.n_chips)))
        #: chip x chip hop-distance matrix (avoids spec method calls).
        self._dist: List[List[int]] = [
            [spec.chip_distance(a, b) for b in range(spec.n_chips)]
            for a in range(spec.n_chips)]
        #: The directory's raw line -> holder-set dict.  Shared identity
        #: with ``self.directory._holders`` for the lifetime of the
        #: system (``flush_all`` clears it in place).
        self._holders = self.directory._holders
        # Flattened per-core state for the fast path: one tuple per core,
        # unpacked in C on every line access instead of chasing
        # list-index + attribute chains.  Only valid when every cache is
        # a plain LRUCache; custom factories use the generic path.
        self._fast = all(
            type(c) is LRUCache
            for c in self.l1s + self.l2s + self.l3s)
        if self._fast:
            self._core_state: List[tuple] = []
            for c in range(n_cores):
                l1, l2 = self.l1s[c], self.l2s[c]
                chip = self._chip_of[c]
                l3 = self.l3s[chip]
                self._core_state.append((
                    self.counters[c],
                    l1, l1._lines, l1.capacity,
                    l2, l2._lines, l2.capacity,
                    l3, l3._lines, l3.capacity,
                    chip, self.directory.l3_holder(chip), c))
            #: Just the L1 ordered dicts, for the hit path's early probe
            #: (no 13-tuple unpack on a hit).
            self._l1ds = [l1._lines for l1 in self.l1s]
            #: Interned (latency, source) results for the fixed-latency
            #: hit levels — no tuple allocation per access.
            self._res_l1 = (self._lat_l1, SRC_L1)
            self._res_l2 = (self._lat_l2, SRC_L2)
            self._res_l3 = (self._lat_l3, SRC_L3)
            self._load_line = self._load_line_fast
        # Observability: None until attach_observability(); publish sites
        # gate on it so the un-observed hot path allocates nothing.
        self._bus = None
        # Per-core operation context: the name of the annotated object the
        # core is currently operating on, maintained by the engine only
        # when memory-event capture is on (None otherwise), so miss-level
        # events can be attributed to the object being manipulated.
        self.op_obj: Optional[List[Optional[str]]] = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def attach_observability(self, obs) -> None:
        """Wire this memory system into an ``Observability`` pipeline.

        Per-event publishing (evictions, invalidations) only activates
        when the pipeline opted into memory events (``capture_memory``);
        aggregate statistics are exposed as pull gauges either way.
        """
        if obs is None:
            return
        if obs.capture_memory:
            self._bus = obs.bus
            self.op_obj = [None] * self.spec.n_cores
        else:
            self._bus = None
        registry = obs.metrics
        if registry is None:
            return
        caches = self.l1s + self.l2s + self.l3s
        registry.gauge_fn(
            "mem.cache_evictions",
            lambda: sum(c.evictions for c in caches))
        registry.gauge_fn(
            "mem.dram_lines", lambda: self.dram.total_lines_served)
        registry.gauge_fn(
            "mem.cross_chip_messages", self.interconnect.cross_chip_messages)

    # ------------------------------------------------------------------
    # single-line operations
    # ------------------------------------------------------------------

    def load(self, core_id: int, addr: int, now: int) -> int:
        """Load the line containing ``addr``; return latency in cycles."""
        latency, _ = self._load_line(
            core_id, addr // self.line_size, now, False)
        self.counters[core_id].mem_cycles += latency
        return latency

    def store(self, core_id: int, addr: int, now: int) -> int:
        """Store to the line containing ``addr``; return latency in cycles.

        The line is first brought local (charged like a load), then every
        remote copy is invalidated.  Invalidations happen in parallel on
        real hardware, so we charge the slowest one, not the sum.
        """
        line = addr // self.line_size
        latency, _ = self._load_line(core_id, line, now, False)
        counters = self.counters[core_id]
        counters.stores += 1
        holders = self._holders.get(line)
        others = ([h for h in holders if h != core_id]
                  if holders else None)
        if others:
            my_chip = self._chip_of[core_id]
            holder_chip = self._holder_chip
            invalidate = self.interconnect.invalidate_latency
            worst = 0
            for holder in others:
                self._drop_from_holder(line, holder)
                cost = invalidate(my_chip, holder_chip[holder])
                if cost > worst:
                    worst = cost
            counters.invalidations += len(others)
            latency += worst
            bus = self._bus
            if bus is not None and bus.wants(CacheInvalidated):
                bus.publish(CacheInvalidated(now, core_id, line, len(others),
                                             self.op_obj[core_id]))
        counters.mem_cycles += latency
        return latency

    # ------------------------------------------------------------------
    # batched sequential scan
    # ------------------------------------------------------------------

    def scan(self, core_id: int, addr: int, nbytes: int, now: int,
             per_line_compute: int = 0) -> int:
        """Sequentially read ``[addr, addr + nbytes)``; return total cycles.

        Consecutive DRAM fetches after the first are charged the stream
        (prefetched) latency.  ``per_line_compute`` adds fixed compute per
        line, modelling the entry-compare loop of a directory search.
        """
        if nbytes <= 0:
            return 0
        line_size = self.line_size
        first = addr // line_size
        last = (addr + nbytes - 1) // line_size
        load_line = self._load_line
        total = 0
        stream_run = False
        if self._fast:
            state = self._core_state[core_id]
            (counters, l1, l1d, l1_cap, l2, l2d, l2_cap, l3, l3d, l3_cap,
             chip, l3_holder, _) = state
            if not (l1.pinned or l2.pinned or l3.pinned):
                return self._scan_fast(
                    core_id, first, last, now, per_line_compute, state)
            # Pinned lines anywhere in the hierarchy: inline only the
            # L1-hit case (one dict probe + move_to_end per line, hit
            # counts batched outside the loop); misses take the per-line
            # fast path, whose _evict() honours pins.
            move_to_end = l1d.move_to_end
            hit_cost = self._lat_l1 + per_line_compute
            l1_hits = 0
            for line in range(first, last + 1):
                if line in l1d:
                    move_to_end(line)
                    l1_hits += 1
                    total += hit_cost
                    stream_run = False
                else:
                    latency, source = load_line(core_id, line, now + total,
                                                stream_run)
                    total += latency + per_line_compute
                    stream_run = source >= SRC_REMOTE
            counters.l1_hits += l1_hits
            counters.mem_cycles += total
            return total
        for line in range(first, last + 1):
            latency, source = load_line(core_id, line, now + total,
                                        stream_run)
            total += latency + per_line_compute
            stream_run = source >= SRC_REMOTE
        self.counters[core_id].mem_cycles += total
        return total

    def prefetch(self, core_id: int, addr: int, nbytes: int, now: int) -> int:
        """Warm the local hierarchy with a byte range (no compute cost)."""
        return self.scan(core_id, addr, nbytes, now)

    def _scan_fast(self, core_id: int, first: int, last: int, now: int,
                   per_line_compute: int, state: tuple) -> int:
        """Whole-scan inline loop for pin-free all-LRU hierarchies.

        Unrolls :meth:`_load_line_fast` across the scanned range with the
        per-core state, the directory dict, the interconnect cost tables
        and the DRAM controllers all held in locals, and with counter
        increments accumulated outside the loop.  Mutations — dict probe
        order, the L1 -> L2 -> L3 victim cascade, holder-set history, DRAM
        demand decay — are performed in exactly the order of the per-line
        path, so counters and event streams stay byte-identical to it.
        """
        (counters, l1, l1d, l1_cap, l2, l2d, l2_cap, l3, l3d, l3_cap,
         chip, l3_holder, _) = state
        holders_map = self._holders
        hit1 = self._lat_l1 + per_line_compute
        hit2 = self._lat_l2 + per_line_compute
        hit3 = self._lat_l3 + per_line_compute
        dist = self._dist[chip]
        holder_chips = self._holder_chip
        one_chip = len(dist) == 1
        interconnect = self.interconnect
        remote_cost = interconnect._remote_cost[chip]
        stream_cost = interconnect._stream_cost[chip]
        transfers = interconnect.transfers
        dram = self.dram
        n_chips = dram._n_chips
        raw_base = dram._raw_base[chip]
        raw_stream = dram._raw_stream[chip]
        controllers = dram.controllers
        if one_chip:
            # Single-chip machine: every line's home bank is controller
            # 0 and every holder is distance 0, so the cost tables are
            # scalars and the controller's queueing state can live in
            # locals for the whole scan (written back below) — the
            # arithmetic runs in the exact order of the general branch.
            ctrl = controllers[0]
            ctl_occ = ctrl.occupancy
            ctl_demand = ctrl.demand
            ctl_clock = ctrl.clock
            ctl_lines = 0
            ctl_queued = 0
            rb0 = raw_base[0]
            rs0 = raw_stream[0]
            rc0 = remote_cost[0]
            sc0 = stream_cost[0]
        bus = self._bus
        # Pre-line timestamps are only observable through CacheEvicted
        # (L3 spill) and the DRAM controller clock; when eviction events
        # are off, only the DRAM branches need ``line_now``.
        publishing = bus is not None and bus.wants(CacheEvicted)
        l1_move = l1d.move_to_end
        l2_move = l2d.move_to_end
        l3_move = l3d.move_to_end
        l1_pop = l1d.popitem
        l2_pop = l2d.popitem
        l3_pop = l3d.popitem
        # Cache occupancies tracked in locals: the loop below performs
        # every mutation of these three dicts, so the counts stay exact
        # without a len() call per level per line.
        n1 = len(l1d)
        n2 = len(l2d)
        n3 = len(l3d)
        c1 = c2 = c3 = cr = cd = e1 = e2 = e3 = 0
        total = 0
        stream_run = False
        for line in range(first, last + 1):
            if line in l1d:
                l1_move(line)
                c1 += 1
                total += hit1
                stream_run = False
                continue
            if publishing:
                line_now = now + total
            # One holders probe classifies the line AND feeds the insert
            # cascade below (``grow`` is the set to extend with core_id,
            # or None when a fresh singleton must be created) — the
            # per-line path probes twice, with identical results.
            if line in l2d:
                c2 += 1
                del l2d[line]
                n2 -= 1
                grow = False
                total += hit2
                stream_run = False
            elif line in l3d:
                c3 += 1
                holders = holders_map.get(line)
                if holders is not None and len(holders) > 1:
                    l3_move(line)
                    grow = holders
                else:
                    del l3d[line]
                    n3 -= 1
                    grow = None
                    if holders is not None:
                        holders.discard(l3_holder)
                        if holders:
                            grow = holders
                        else:
                            del holders_map[line]
                total += hit3
                stream_run = False
            elif one_chip:
                holders = holders_map.get(line)
                grow = holders or None
                if holders:
                    # Any holder is distance 0; identity never affects
                    # cost or counters on one chip.
                    cr += 1
                    total += (sc0 if stream_run else rc0) \
                        + per_line_compute
                else:
                    cd += 1
                    line_now = now + total
                    if line_now > ctl_clock:
                        ctl_demand *= _exp(
                            (ctl_clock - line_now) / UTILISATION_TAU)
                        ctl_clock = line_now
                    ctl_demand += ctl_occ
                    rho = ctl_demand / UTILISATION_TAU
                    if rho > UTILISATION_CAP:
                        rho = UTILISATION_CAP
                    queue_delay = int(ctl_occ * rho / (1.0 - rho) * 0.5)
                    ctl_lines += 1
                    ctl_queued += queue_delay
                    total += (queue_delay
                              + (rs0 if stream_run else rb0)
                              + per_line_compute)
                stream_run = True
            else:
                holders = holders_map.get(line)
                holder = None
                if holders:
                    best_d = 1 << 30
                    for h in holders:
                        d = dist[holder_chips[h]]
                        if d < best_d:
                            holder, best_d = h, d
                            if d == 0:
                                break
                grow = holders or None
                if holder is not None:
                    cr += 1
                    hchip = holder_chips[holder]
                    if stream_run:
                        total += stream_cost[hchip] + per_line_compute
                    else:
                        if chip != hchip:
                            key = (hchip, chip)
                            transfers[key] = transfers.get(key, 0) + 1
                        total += remote_cost[hchip] + per_line_compute
                    stream_run = True
                else:
                    cd += 1
                    line_now = now + total
                    bank = line % n_chips
                    controller = controllers[bank]
                    if line_now > controller.clock:
                        controller.demand *= _exp(
                            (controller.clock - line_now) / UTILISATION_TAU)
                        controller.clock = line_now
                    demand = controller.demand + controller.occupancy
                    controller.demand = demand
                    rho = demand / UTILISATION_TAU
                    if rho > UTILISATION_CAP:
                        rho = UTILISATION_CAP
                    queue_delay = int(
                        controller.occupancy * rho / (1.0 - rho) * 0.5)
                    controller.lines_served += 1
                    controller.queued_cycles += queue_delay
                    total += (queue_delay + (raw_stream if stream_run
                                             else raw_base)[bank]
                              + per_line_compute)
                    stream_run = True
            # --- inlined insert cascade (pin-free variant) --------------
            if grow is not False:
                if grow is None:
                    holders_map[line] = {core_id}
                else:
                    grow.add(core_id)
            l1d[line] = None
            n1 += 1
            if n1 <= l1_cap:
                continue
            e1 += 1
            n1 -= 1
            victim = l1_pop(False)[0]
            if victim in l2d:
                l2_move(victim)
                continue
            l2d[victim] = None
            n2 += 1
            if n2 <= l2_cap:
                continue
            e2 += 1
            n2 -= 1
            victim2 = l2_pop(False)[0]
            holders = holders_map.get(victim2)
            if holders is not None:
                holders.discard(core_id)
                if not holders:
                    del holders_map[victim2]
                    holders = None
            if holders is None:
                holders_map[victim2] = {l3_holder}
            else:
                holders.add(l3_holder)
            if victim2 in l3d:
                l3_move(victim2)
                continue
            l3d[victim2] = None
            n3 += 1
            if n3 <= l3_cap:
                continue
            e3 += 1
            n3 -= 1
            victim3 = l3_pop(False)[0]
            holders = holders_map.get(victim3)
            if holders is not None:
                holders.discard(l3_holder)
                if not holders:
                    del holders_map[victim3]
            if publishing:
                bus.publish(CacheEvicted(line_now, core_id, "L3", victim3,
                                         self.op_obj[core_id]))
        if one_chip:
            ctrl.demand = ctl_demand
            ctrl.clock = ctl_clock
            ctrl.lines_served += ctl_lines
            ctrl.queued_cycles += ctl_queued
        counters.l1_hits += c1
        counters.l2_hits += c2
        counters.l3_hits += c3
        counters.remote_hits += cr
        counters.dram_loads += cd
        if e1:
            l1.evictions += e1
        if e2:
            l2.evictions += e2
        if e3:
            l3.evictions += e3
        counters.mem_cycles += total
        return total

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------

    def _load_line_fast(self, core_id: int, line: int, now: int,
                        sequential: bool) -> Tuple[int, int]:
        """Flattened :meth:`_load_line` for all-LRU cache hierarchies.

        Operates directly on the caches' ordered dicts and the directory's
        holder-set dict — the lookup, the hit bookkeeping, and the full
        L1 -> L2 -> L3 victim cascade run inline with zero intermediate
        method calls.  Mutations are identical to the generic path, so the
        two produce byte-identical event streams.
        """
        l1d = self._l1ds[core_id]
        if line in l1d:
            l1d.move_to_end(line)
            self.counters[core_id].l1_hits += 1
            return self._res_l1
        (counters, l1, _, l1_cap, l2, l2d, l2_cap, l3, l3d, l3_cap,
         chip, l3_holder, _) = self._core_state[core_id]
        holders_map = self._holders
        already_held = False
        if line in l2d:
            counters.l2_hits += 1
            del l2d[line]
            if l2.pinned:
                l2.pinned.discard(line)
            already_held = True
            result = self._res_l2
        elif line in l3d:
            # AMD K10's non-inclusive L3: on a hit, keep the L3 copy when
            # the line is shared (other private holders exist), so chip-
            # shared data keeps serving at 75 cycles; hand it over
            # exclusively when this requester is the only interested
            # party, so single-reader data (CoreTime-partitioned objects)
            # does not burn capacity twice.
            counters.l3_hits += 1
            holders = holders_map.get(line)
            if holders is not None and len(holders) > 1:
                l3d.move_to_end(line)
            else:
                del l3d[line]
                if l3.pinned:
                    l3.pinned.discard(line)
                if holders is not None:
                    holders.discard(l3_holder)
                    if not holders:
                        del holders_map[line]
            result = self._res_l3
        else:
            # Inlined _nearest_holder (shares the holder-set probe).
            holders = holders_map.get(line)
            holder = None
            if holders:
                holder_chips = self._holder_chip
                dist = self._dist[chip]
                best_d = 1 << 30
                for h in holders:
                    d = dist[holder_chips[h]]
                    if d < best_d:
                        holder, best_d = h, d
                        if d == 0:
                            break
            if holder is not None:
                counters.remote_hits += 1
                holder_chip = self._holder_chip[holder]
                if sequential:
                    # A remote fetch continuing a sequential stream is
                    # prefetch-pipelined like a streamed DRAM read.
                    latency = self.interconnect.remote_stream_latency(
                        chip, holder_chip)
                else:
                    latency = self.interconnect.remote_cache_latency(
                        chip, holder_chip)
                # Read-sharing: the remote copy stays put; we replicate.
                result = (latency, SRC_REMOTE)
            else:
                counters.dram_loads += 1
                result = (self.dram.load(line, chip, now, sequential),
                          SRC_DRAM)
        # --- inlined _insert_local over the flattened state ------------
        if not already_held:
            holders = holders_map.get(line)
            if holders is None:
                holders_map[line] = {core_id}
            else:
                holders.add(core_id)
        # L1 insert (MRU); the cascade below only runs on overflow.
        if line in l1d:
            l1d.move_to_end(line)
            return result
        l1d[line] = None
        if len(l1d) <= l1_cap:
            return result
        if not l1.pinned:
            l1.evictions += 1
            victim = l1d.popitem(False)[0]
        else:
            victim = l1._evict()
        # L2 insert.
        if victim in l2d:
            l2d.move_to_end(victim)
            return result
        l2d[victim] = None
        if len(l2d) <= l2_cap:
            return result
        if not l2.pinned:
            l2.evictions += 1
            victim2 = l2d.popitem(False)[0]
        else:
            victim2 = l2._evict()
        # Leaving the private hierarchy for the chip's shared L3.  One
        # probe serves both the discard and the add; the mutation history
        # (set emptied -> entry deleted -> fresh set created) matches the
        # generic path exactly, keeping holder-set iteration order — and
        # therefore event streams — byte-identical.
        holders = holders_map.get(victim2)
        if holders is not None:
            holders.discard(core_id)
            if not holders:
                del holders_map[victim2]
                holders = None
        if holders is None:
            holders_map[victim2] = {l3_holder}
        else:
            holders.add(l3_holder)
        if victim2 in l3d:
            l3d.move_to_end(victim2)
            return result
        l3d[victim2] = None
        if len(l3d) <= l3_cap:
            return result
        if not l3.pinned:
            l3.evictions += 1
            victim3 = l3d.popitem(False)[0]
        else:
            victim3 = l3._evict()
        # Clean drop: DRAM always has the data.
        holders = holders_map.get(victim3)
        if holders is not None:
            holders.discard(l3_holder)
            if not holders:
                del holders_map[victim3]
        bus = self._bus
        if bus is not None and bus.wants(CacheEvicted):
            bus.publish(CacheEvicted(now, core_id, "L3", victim3,
                                     self.op_obj[core_id]))
        return result

    def _load_line(self, core_id: int, line: int, now: int,
                   sequential: bool) -> Tuple[int, int]:
        """Load one line for ``core_id``; return (latency, source).

        Generic path, used when a custom ``cache_factory`` supplied
        non-LRU caches (the constructor rebinds ``self._load_line`` to
        :meth:`_load_line_fast` otherwise).
        """
        counters = self.counters[core_id]
        lat = self._lat
        l1 = self.l1s[core_id]
        if line in l1:
            l1.touch(line)
            counters.l1_hits += 1
            return lat.l1, SRC_L1
        l2 = self.l2s[core_id]
        if line in l2:
            counters.l2_hits += 1
            l2.remove(line)
            self._insert_local(core_id, line, now, already_held=True)
            return lat.l2, SRC_L2
        chip = self._chip_of[core_id]
        l3 = self.l3s[chip]
        if line in l3:
            # Same non-inclusive L3 hand-over rule as the fast path.
            counters.l3_hits += 1
            if self.directory.sharer_count(line) > 1:
                l3.touch(line)
            else:
                l3.remove(line)
                self.directory.discard(line, self.directory.l3_holder(chip))
            self._insert_local(core_id, line, now, already_held=False)
            return lat.l3, SRC_L3
        holder = self._nearest_holder(line, chip)
        if holder is not None:
            counters.remote_hits += 1
            holder_chip = self._holder_chip[holder]
            if sequential:
                latency = self.interconnect.remote_stream_latency(
                    chip, holder_chip)
            else:
                latency = self.interconnect.remote_cache_latency(
                    chip, holder_chip)
            # Read-sharing: the remote copy stays put; we replicate.
            self._insert_local(core_id, line, now, already_held=False)
            return latency, SRC_REMOTE
        counters.dram_loads += 1
        latency = self.dram.load(line, chip, now, sequential)
        self._insert_local(core_id, line, now, already_held=False)
        return latency, SRC_DRAM

    def _nearest_holder(self, line: int, from_chip: int) -> Optional[int]:
        """Closest holder of ``line`` by chip distance, or None."""
        holders = self._holders.get(line)
        if not holders:
            return None
        holder_chip = self._holder_chip
        dist = self._dist[from_chip]
        best = None
        best_d = 1 << 30
        for holder in holders:
            d = dist[holder_chip[holder]]
            if d < best_d:
                best, best_d = holder, d
                if d == 0:
                    break
        return best

    def _insert_local(self, core_id: int, line: int, now: int,
                      already_held: bool) -> None:
        """Insert ``line`` at the core's L1, cascading victims downward."""
        directory = self.directory
        if not already_held:
            directory.add(line, core_id)
        victim = self.l1s[core_id].insert(line)
        if victim is None:
            return
        victim2 = self.l2s[core_id].insert(victim)
        if victim2 is None:
            return
        # Leaving the private hierarchy for the chip's shared L3.
        directory.discard(victim2, core_id)
        chip = self._chip_of[core_id]
        l3_holder = directory.l3_holder(chip)
        directory.add(victim2, l3_holder)
        victim3 = self.l3s[chip].insert(victim2)
        if victim3 is not None:
            # Clean drop: DRAM always has the data.
            directory.discard(victim3, l3_holder)
            bus = self._bus
            if bus is not None and bus.wants(CacheEvicted):
                bus.publish(CacheEvicted(now, core_id, "L3", victim3,
                                         self.op_obj[core_id]))

    def _drop_from_holder(self, line: int, holder: int) -> None:
        """Remove ``line`` from ``holder``'s caches and the directory."""
        if self.directory.is_l3_holder(holder):
            self.l3s[holder - self.directory.n_cores].remove(line)
        else:
            self.l1s[holder].remove(line)
            self.l2s[holder].remove(line)
        self.directory.discard(line, holder)

    # ------------------------------------------------------------------
    # maintenance / inspection
    # ------------------------------------------------------------------

    def flush_line(self, line: int) -> None:
        """Remove a line from every cache (test/maintenance helper)."""
        for holder in list(self.directory.holders(line)):
            self._drop_from_holder(line, holder)

    def flush_all(self) -> None:
        for cache in self.l1s + self.l2s + self.l3s:
            cache.clear()
        # Clear in place: the fast path holds a reference to the
        # directory's holder dict, so the directory object must survive.
        self.directory.clear()

    def holder_caches(self, holder: int) -> List[LRUCache]:
        """The concrete cache objects behind a directory holder id."""
        if self.directory.is_l3_holder(holder):
            return [self.l3s[holder - self.directory.n_cores]]
        return [self.l1s[holder], self.l2s[holder]]

    def where_is(self, addr: int) -> List[str]:
        """Human-readable locations of the line containing ``addr``."""
        line = addr // self.line_size
        names = []
        for core_id in range(self.spec.n_cores):
            if line in self.l1s[core_id]:
                names.append(f"L1.{core_id}")
            if line in self.l2s[core_id]:
                names.append(f"L2.{core_id}")
        for chip in range(self.spec.n_chips):
            if line in self.l3s[chip]:
                names.append(f"L3.{chip}")
        return names

    def check_invariants(self) -> None:
        """Verify directory/cache consistency (test helper; O(total lines)).

        Raises :class:`~repro.errors.ConfigError` on violation.
        """
        for cache in self.l1s + self.l2s + self.l3s:
            if len(cache) > cache.capacity:
                raise ConfigError(
                    f"cache {cache.cache_id}: {len(cache)} lines exceed "
                    f"capacity {cache.capacity}")
        seen = {}
        for core_id in range(self.spec.n_cores):
            for cache in (self.l1s[core_id], self.l2s[core_id]):
                for line in cache.lines():
                    holders = seen.setdefault(line, set())
                    holders.add(core_id)
        for chip in range(self.spec.n_chips):
            holder = self.directory.l3_holder(chip)
            for line in self.l3s[chip].lines():
                seen.setdefault(line, set()).add(holder)
        for core_id in range(self.spec.n_cores):
            l1, l2 = self.l1s[core_id], self.l2s[core_id]
            both = set(l1.lines()) & set(l2.lines())
            if both:
                raise ConfigError(
                    f"core {core_id}: lines in both L1 and L2: {both}")
        for line, holders in seen.items():
            recorded = set(self.directory.holders(line))
            if holders != recorded:
                raise ConfigError(
                    f"line {line}: caches say {holders}, "
                    f"directory says {recorded}")
        for line in self.directory.cached_lines():
            if line not in seen:
                raise ConfigError(f"line {line}: directory entry with no copy")

"""Off-chip DRAM model: latency plus memory-controller bandwidth.

The paper's core prediction is that compute will outgrow off-chip
bandwidth, so the simulator makes bandwidth an explicit, contendable
resource.  Each chip owns one :class:`MemoryController`; every line
fetched from that chip's DRAM bank adds ``dram_occupancy`` cycles of
demand, and requests are delayed by an M/D/1-style queueing term derived
from the controller's recent utilisation — so 16 cores streaming from
DRAM slow each other down, exactly the saturation effect CoreTime's
partitioning avoids.

Utilisation is tracked as an exponentially decayed demand sum rather than
an absolute ``busy-until`` timestamp: cores' clocks are only loosely
synchronised (scans execute atomically — see DESIGN.md), and a stateful
absolute reservation would let one core's in-flight scan appear to block
another core thousands of cycles into its past.  The decayed-load model
is immune to that skew, deterministic, and has the right limits: zero
delay when idle, unbounded-ish delay approaching saturation.

Sequential streams get a ``dram_stream`` per-line cost instead of the
full ``dram_base`` latency, modelling the hardware prefetcher that makes
linear directory scans cheaper than pointer chasing.
"""

from __future__ import annotations

from math import exp as _exp
from typing import List

from repro.cpu.topology import LatencySpec, MachineSpec

#: Time constant (cycles) of the utilisation estimate's exponential decay.
UTILISATION_TAU = 4096.0
#: Utilisation is capped here so the queueing term stays finite; past
#: this point latency inflation throttles throughput to the controller's
#: capacity region.
UTILISATION_CAP = 0.97


class MemoryController:
    """One chip's memory controller / DRAM channel."""

    __slots__ = ("chip_id", "occupancy", "clock", "demand",
                 "lines_served", "queued_cycles")

    def __init__(self, chip_id: int, occupancy: int) -> None:
        self.chip_id = chip_id
        self.occupancy = occupancy
        #: Monotone internal clock (max request time seen).
        self.clock = 0
        #: Exponentially decayed demand, in cycles of occupancy.
        self.demand = 0.0
        self.lines_served = 0
        self.queued_cycles = 0

    def service(self, now: int, transfer_latency: int) -> int:
        """Serve one line at time ``now``; return total latency in cycles.

        ``transfer_latency`` is the raw access latency (base or stream);
        a queueing delay proportional to rho/(1-rho) is added when the
        controller is loaded.
        """
        if now > self.clock:
            self.demand *= _exp((self.clock - now) / UTILISATION_TAU)
            self.clock = now
        self.demand += self.occupancy
        rho = self.demand / UTILISATION_TAU
        if rho > UTILISATION_CAP:
            rho = UTILISATION_CAP
        queue_delay = int(self.occupancy * rho / (1.0 - rho) * 0.5)
        self.lines_served += 1
        self.queued_cycles += queue_delay
        return queue_delay + transfer_latency

    def utilisation(self, horizon: int) -> float:
        """Fraction of ``horizon`` cycles the controller was transferring."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.lines_served * self.occupancy / horizon)

    def reset(self) -> None:
        self.clock = 0
        self.demand = 0.0
        self.lines_served = 0
        self.queued_cycles = 0


class Dram:
    """All memory controllers plus the home-bank mapping.

    Lines are interleaved across chips' DRAM banks by line number, as
    commodity systems interleave physical pages across controllers.
    """

    __slots__ = ("spec", "latency", "controllers", "_n_chips", "_raw_base",
                 "_raw_stream")

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.latency: LatencySpec = spec.latency
        self.controllers: List[MemoryController] = [
            MemoryController(chip, spec.latency.dram_occupancy)
            for chip in range(spec.n_chips)
        ]
        # Raw (pre-queueing) access latencies depend only on the
        # (requesting chip, home bank) pair; precompute both the demand
        # and streamed variants so the miss path skips the hop-distance
        # arithmetic.
        self._n_chips = spec.n_chips
        latency = spec.latency
        self._raw_base = [
            [latency.dram_base + latency.dram_hop * spec.chip_distance(a, b)
             for b in range(spec.n_chips)] for a in range(spec.n_chips)]
        self._raw_stream = [
            [latency.dram_stream + latency.dram_hop * spec.chip_distance(a, b)
             for b in range(spec.n_chips)] for a in range(spec.n_chips)]

    def home_chip(self, line: int) -> int:
        """Chip whose DRAM bank holds ``line``."""
        return line % self.spec.n_chips

    def load(self, line: int, from_chip: int, now: int,
             sequential: bool) -> int:
        """Fetch ``line`` from DRAM for a core on ``from_chip``.

        Returns the latency in cycles, including hop distance to the home
        bank and any controller queueing delay.
        """
        bank = line % self._n_chips
        raw = (self._raw_stream if sequential
               else self._raw_base)[from_chip][bank]
        return self.controllers[bank].service(now, raw)

    @property
    def total_lines_served(self) -> int:
        return sum(c.lines_served for c in self.controllers)

    @property
    def total_queued_cycles(self) -> int:
        return sum(c.queued_cycles for c in self.controllers)

    def reset(self) -> None:
        for controller in self.controllers:
            controller.reset()

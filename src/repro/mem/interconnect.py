"""Inter-chip interconnect model.

The AMD machine's four chips sit on a square interconnect carrying
coherence broadcasts and point-to-point cache-line transfers.  We charge
hop-distance latencies (from :class:`repro.cpu.topology.LatencySpec`) and
count the messages per link so experiments can report coherence traffic —
the resource the paper warns "can saturate system interconnects".
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cpu.topology import MachineSpec


class Interconnect:
    """Latency oracle plus traffic accounting for chip-to-chip messages."""

    __slots__ = ("spec", "transfers", "invalidations", "context_transfers",
                 "_remote_cost", "_stream_cost", "_inval_cost")

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        #: (src_chip, dst_chip) -> cache-line transfers carried.
        self.transfers: Dict[Tuple[int, int], int] = {}
        #: (src_chip, dst_chip) -> invalidation messages carried.
        self.invalidations: Dict[Tuple[int, int], int] = {}
        #: (src_chip, dst_chip) -> thread-context lines carried
        #: (migration payload, kept separate from data coherence traffic).
        self.context_transfers: Dict[Tuple[int, int], int] = {}
        # Hop costs depend only on the chip pair; precompute every pair
        # once so the per-miss path is two list indexes, not a distance
        # computation plus latency-spec attribute chain.
        latency = spec.latency
        n = spec.n_chips
        self._remote_cost = [
            [latency.remote_same_chip
             + latency.remote_hop * spec.chip_distance(a, b)
             for b in range(n)] for a in range(n)]
        self._stream_cost = [
            [latency.remote_stream
             + latency.remote_hop * spec.chip_distance(a, b) // 3
             for b in range(n)] for a in range(n)]
        self._inval_cost = [
            [latency.invalidate
             + latency.remote_hop * spec.chip_distance(a, b)
             for b in range(n)] for a in range(n)]

    def remote_cache_latency(self, from_chip: int, holder_chip: int) -> int:
        """Latency to fetch a line from a cache on ``holder_chip``."""
        if from_chip != holder_chip:
            key = (holder_chip, from_chip)
            self.transfers[key] = self.transfers.get(key, 0) + 1
        return self._remote_cost[from_chip][holder_chip]

    def remote_stream_latency(self, from_chip: int, holder_chip: int) -> int:
        """Prefetch-pipelined cost of a remote fetch continuing a
        sequential stream (no per-line message accounting — the stream is
        one pipelined transfer, like a streamed DRAM read)."""
        return self._stream_cost[from_chip][holder_chip]

    def invalidate_latency(self, from_chip: int, holder_chip: int) -> int:
        """Latency contribution of invalidating a copy on ``holder_chip``."""
        if from_chip != holder_chip:
            key = (from_chip, holder_chip)
            self.invalidations[key] = self.invalidations.get(key, 0) + 1
        return self._inval_cost[from_chip][holder_chip]

    def count_migration(self, from_chip: int, to_chip: int,
                        context_lines: int = 4) -> None:
        """Account a thread-context transfer (a migration's payload —
        saved registers and hot stack lines) as interconnect traffic."""
        if from_chip != to_chip:
            key = (from_chip, to_chip)
            self.context_transfers[key] = \
                self.context_transfers.get(key, 0) + context_lines

    @property
    def total_transfers(self) -> int:
        return sum(self.transfers.values())

    @property
    def total_invalidations(self) -> int:
        return sum(self.invalidations.values())

    @property
    def total_context_lines(self) -> int:
        return sum(self.context_transfers.values())

    def data_messages(self) -> int:
        """Coherence traffic proper: line transfers and invalidations."""
        return self.total_transfers + self.total_invalidations

    def cross_chip_messages(self) -> int:
        """All messages that crossed chip boundaries."""
        return (self.total_transfers + self.total_invalidations
                + self.total_context_lines)

    def reset(self) -> None:
        self.transfers.clear()
        self.invalidations.clear()
        self.context_transfers.clear()

"""Benchmark-suite configuration.

Each benchmark regenerates one figure or ablation from DESIGN.md §4 using
the "quick" effort profile, times it once (these are multi-second
simulations — statistical repetition happens *inside* each figure's
measurement window, not by re-running it), asserts the paper's qualitative
shape, and writes the full text report to ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only

Longer, more detailed figures: ``python -m repro.bench all --full``.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.report import RESULTS_DIR


@pytest.fixture(autouse=True, scope="session")
def _results_dir():
    """Reports land in ``benchmarks/results/``, which is generated (and
    gitignored) — make sure it exists before any benchmark writes."""
    os.makedirs(RESULTS_DIR, exist_ok=True)


def run_once(benchmark, func, *args, **kwargs):
    """Time ``func`` exactly once through pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once

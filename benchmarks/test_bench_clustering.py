"""E6 — thread clustering does not help this workload (§2 claim)."""

from repro.bench.figures import clustering_comparison
from repro.bench.report import save_report


def test_thread_clustering_comparison(benchmark, once, capsys):
    result = once(benchmark, clustering_comparison,
                  n_dirs_list=(64, 160, 320))
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    thread = result.series_by_label("thread")
    clustering = result.series_by_label("thread-clustering")
    coretime = result.series_by_label("coretime")

    for t, cl, ct in zip(thread.points, clustering.points,
                         coretime.points):
        # §2: "Thread clustering will not improve performance since all
        # threads look up files in the same directories."
        assert cl.kops_per_sec < 1.25 * t.kops_per_sec, (
            f"clustering unexpectedly helped at {t.x} KB")
        # It should not be catastrophically worse either — it
        # degenerates to ordinary placement.
        assert cl.kops_per_sec > 0.7 * t.kops_per_sec
        # O2 scheduling is what actually helps.
        assert ct.kops_per_sec > 1.5 * max(t.kops_per_sec,
                                           cl.kops_per_sec)

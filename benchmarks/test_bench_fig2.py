"""E3 — Figure 2: cache contents under thread vs O2 scheduling.

Paper: the thread scheduler replicates a few directories everywhere and
leaves many off-chip; the O2 scheduler partitions, keeping (all) 20
directories on-chip.
"""

from repro.bench.figures import figure_2
from repro.bench.report import save_report


def _on_chip(residency) -> int:
    return sum(len(names) for location, names in residency.items()
               if location != "off-chip")


def test_figure_2(benchmark, once, capsys):
    result = once(benchmark, figure_2, n_dirs=20)
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    thread = result.details["thread scheduler"]
    o2 = result.details["O2 scheduler (CoreTime)"]

    # O2 keeps every directory on-chip (paper: all 20 in Figure 2b)...
    assert _on_chip(o2) == 20
    # ...the thread scheduler cannot (off-chip box is non-empty, 2a).
    assert _on_chip(thread) < 20
    assert "off-chip" in thread
    # O2 spreads directories over every core's cache (partitioning).
    o2_cores = [loc for loc in o2 if loc.startswith("core")]
    assert len(o2_cores) == 4

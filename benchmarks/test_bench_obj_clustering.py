"""E10 — object clustering (§6.2): objects used together are placed in
the same cache, halving migration traffic for paired operations."""

from repro.bench.figures import object_clustering_ablation
from repro.bench.report import save_report


def test_object_clustering(benchmark, once, capsys):
    result = once(benchmark, object_clustering_ablation, n_objects=64)
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    def migrations_per_op(label):
        point = result.series_by_label(label).points[0]
        return point.migrations / max(1, point.ops)

    plain = migrations_per_op("no clustering")
    learned = migrations_per_op("learned clusters")
    declared = migrations_per_op("declared clusters")

    # Co-location eliminates the second hop of most paired operations.
    assert declared < 0.75 * plain
    # The runtime learns the same clusters the programmer would declare.
    assert learned < 0.75 * plain
    # Throughput is not sacrificed for the traffic reduction.
    ys = {s.label: s.points[0].kops_per_sec for s in result.series}
    assert ys["declared clusters"] > 0.8 * ys["no clustering"]
    assert ys["learned clusters"] > 0.8 * ys["no clustering"]

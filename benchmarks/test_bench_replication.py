"""E8 — replicating hot read-only objects (§6.2).

The trade-off the paper sketches: replication helps while cache budget is
plentiful (shorter migrations, more parallelism on hot objects) and stops
helping when replicas displace distinct objects.
"""

from repro.bench.figures import replication_ablation
from repro.bench.report import save_report


def test_replication_tradeoff(benchmark, once, capsys):
    result = once(benchmark, replication_ablation,
                  n_objects_list=(96, 448))
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    plain = result.series_by_label("coretime")
    replicated = result.series_by_label("coretime+replication")

    small_gain = (replicated.points[0].kops_per_sec
                  / plain.points[0].kops_per_sec)
    large_gain = (replicated.points[1].kops_per_sec
                  / plain.points[1].kops_per_sec)

    # With few objects, replication pays.
    assert small_gain > 1.05, f"replication gain {small_gain:.2f}"
    # Under capacity pressure the advantage shrinks or reverses —
    # "other times it might be better to schedule more distinct objects".
    assert large_gain < small_gain
    # Replicas were actually created.
    assert replicated.points[0].scheduler_stats["replicas_created"] > 0

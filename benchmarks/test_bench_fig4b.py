"""E2 — Figure 4(b): oscillating directory popularity.

Paper: "CoreTime is able to rebalance directories across caches and
performs more than twice as fast for most data sizes."
"""

from repro.bench.figures import figure_4b
from repro.bench.report import save_report


def test_figure_4b(benchmark, once, capsys):
    result = once(benchmark, figure_4b, profile="quick")
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    thread = result.series_by_label("thread")
    coretime = result.series_by_label("coretime")

    wins = sum(
        c.kops_per_sec > 2.0 * t.kops_per_sec
        for t, c in zip(thread.points, coretime.points))
    # "More than twice as fast for most data sizes."
    assert wins >= (len(thread.points) + 1) // 2, (
        f"CoreTime >2x on only {wins}/{len(thread.points)} sizes")
    # The win comes from rebalancing: objects moved during the run.
    moves = [c.scheduler_stats.get("rebalance_moves", 0)
             for c in coretime.points]
    assert any(m > 0 for m in moves)

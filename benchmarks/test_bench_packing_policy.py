"""E11 — packing-policy ablation.

§4 chooses greedy first-fit *because* runtime rebalancing repairs its
pathologies ("cache packing might assign several popular objects to a
single core … our current solution is to detect performance pathologies
at runtime").  The ablation quantifies that design: first-fit without the
rebalancer loses roughly half its throughput; with it, first-fit is
competitive with explicitly balanced placement.
"""

from repro.bench.figures import packing_policy_ablation
from repro.bench.report import save_report


def test_packing_policy_ablation(benchmark, once, capsys):
    result = once(benchmark, packing_policy_ablation, n_dirs=320)
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    def kops(label):
        return result.series_by_label(label).points[0].kops_per_sec

    first_fit = kops("first-fit")
    no_rebalance = kops("first-fit-norebalance")
    balanced = kops("balanced")

    # The rebalancer is load-bearing for first-fit (§4's pathology
    # repair): without it, throughput drops dramatically.
    assert no_rebalance < 0.8 * first_fit
    # With rebalancing, the paper's simple first-fit is competitive
    # with explicitly balanced placement.
    assert first_fit > 0.7 * balanced
    assert balanced >= 0.9 * first_fit

"""E7 — future multicores (§6.1): scarcer off-chip bandwidth, larger
caches and cheap migration should widen O2 scheduling's advantage."""

from repro.bench.figures import future_multicore
from repro.bench.report import save_report


def test_future_multicore(benchmark, once, capsys):
    result = once(benchmark, future_multicore,
                  n_dirs_list=(160, 320, 512))
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    today = result.details["today"]["ratios"]
    future = result.details["future"]["ratios"]

    # CoreTime wins on both machines...
    assert all(r > 1.0 for r in today)
    assert all(r > 1.0 for r in future)
    # ...and the average advantage grows on the future machine (§6.1:
    # "these trends will result in processors where O2 scheduling might
    # be attractive for a larger number of workloads").
    assert sum(future) / len(future) > sum(today) / len(today)

"""E5 — migration-cost sensitivity (§4's pay-off condition, §5's
measured 2000 cycles, §6.1's cheap active-message migration)."""

from repro.bench.figures import migration_cost_sweep
from repro.bench.report import save_report


def test_migration_cost_sweep(benchmark, once, capsys):
    result = once(benchmark, migration_cost_sweep,
                  costs=(0, 250, 1000, 4000), n_dirs=320)
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    coretime = result.series[0]
    baseline = result.series[1].points[0].kops_per_sec

    # Cheaper migration can only help: the curve is (weakly) decreasing.
    ys = coretime.ys
    assert ys[0] >= ys[-1], "free migration slower than 4000-cycle one"
    # At the paper's scaled cost the win is clear.
    assert ys[1] > 1.5 * baseline
    # Migration cost erodes the advantage (§4's pay-off condition).
    assert ys[-1] < ys[0]

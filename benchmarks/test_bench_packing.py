"""E4 — cache-packing algorithm cost (the paper's Θ(n log n) claim).

This is the one genuinely wall-clock benchmark: pytest-benchmark times
the packing algorithm itself, and the scaling assertion checks that
doubling n never quadruples the time (i.e. it is sub-quadratic, as an
n log n algorithm must be).
"""

from repro.bench.figures import packing_complexity
from repro.bench.report import save_report
from repro.core.object_table import CtObject
from repro.core.packing import make_budgets, pack


def _objects(n):
    objs = []
    for index in range(n):
        obj = CtObject(f"o{index}", index * 4096,
                       2048 + (index % 7) * 512)
        obj.heat = float((index * 2654435761) % 1000)
        objs.append(obj)
    return objs


def test_pack_wall_clock(benchmark):
    objs = _objects(4000)

    def run():
        return pack(objs, make_budgets(1 << 20, 16))

    result = benchmark(run)
    assert len(result.placed) + len(result.unplaced) == 4000


def test_packing_scaling(benchmark, once, capsys):
    result = once(benchmark, packing_complexity,
                  ns=(4000, 8000, 16000), repeats=3)
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)
    # All three sizes are past the point where the budgets saturate (the
    # per-object cost regime change from 1 to n_cores budget probes), so
    # doubling n must no more than ~double-and-a-bit the time.  A
    # quadratic algorithm would quadruple it.
    seconds = result.details["seconds"]
    for smaller, larger in zip(seconds, seconds[1:]):
        assert larger < smaller * 3.0, (
            f"packing scaling looks super-linearithmic: {seconds}")

"""E1 — Figure 4(a): resolutions/s vs data size, uniform popularity.

Paper shape: both schedulers fast while the data fits on-chip, CoreTime
2-3x faster once it does not, both degrading toward the right edge.
"""

from repro.bench.figures import figure_4a
from repro.bench.report import save_report


def test_figure_4a(benchmark, once, capsys):
    result = once(benchmark, figure_4a, profile="quick")
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    thread = result.series_by_label("thread")
    coretime = result.series_by_label("coretime")

    # CoreTime never collapses below the thread scheduler anywhere...
    for t, c in zip(thread.points, coretime.points):
        assert c.kops_per_sec > 0.5 * t.kops_per_sec, (
            f"CoreTime collapsed at {t.x} KB")
    # ...and clearly wins in the partitioning regime (the middle points,
    # where data exceeds a chip's caches but fits on-chip overall).
    mid = len(thread.points) // 2
    ratio = (coretime.points[mid].kops_per_sec
             / thread.points[mid].kops_per_sec)
    assert ratio > 1.5, f"expected a clear CoreTime win mid-curve: {ratio}"
    # The thread scheduler's curve falls from its peak as data outgrows
    # the caches (the implicit-scheduling decline of §2).
    thread_peak = max(p.kops_per_sec for p in thread.points)
    assert thread.points[-1].kops_per_sec < 0.8 * thread_peak
    # CoreTime migrates in the winning regime.
    assert coretime.points[mid].migrations > 0

"""E9 — replacement policy for working sets beyond on-chip memory
(§6.2): keep the currently-frequent objects on-chip."""

from repro.bench.figures import replacement_ablation
from repro.bench.report import save_report


def test_lfu_replacement(benchmark, once, capsys):
    result = once(benchmark, replacement_ablation, n_dirs=1024)
    save_report(result.name, result.report)
    with capsys.disabled():
        print()
        print(result.report)

    firstfit = result.series_by_label("coretime-firstfit")
    lfu = result.series_by_label("coretime+lfu")

    # The LFU policy tracks the shifting hot set; frozen first-fit
    # cannot.
    assert (lfu.points[0].kops_per_sec
            > 1.15 * firstfit.points[0].kops_per_sec)
    # And evictions really happened.
    assert lfu.points[0].scheduler_stats["lfu_evictions"] > 0

"""Microbenchmarks of the simulator substrate itself.

Not a paper figure — these track the cost of the simulation machinery
(engine steps, cache-model line accesses, batched scans) so regressions
in the substrate don't silently stretch every figure's wall-clock.
"""

from repro.cpu.machine import Machine
from repro.cpu.topology import MachineSpec
from repro.sched.thread_sched import ThreadScheduler
from repro.sim.engine import Simulator
from repro.threads.program import Compute, Scan


def _machine():
    return Machine(MachineSpec.scaled(8))


def test_engine_step_rate(benchmark):
    """Compute-only steps: pure engine overhead."""
    def run():
        machine = _machine()
        sim = Simulator(machine, ThreadScheduler())
        def program():
            while True:
                yield Compute(100)
        for core in range(machine.n_cores):
            sim.spawn(program(), core_id=core)
        sim.run(until=200_000)
        return sim.total_steps
    steps = benchmark(run)
    # ~2000 computes per core; the horizon boundary allows one extra.
    assert abs(steps - 16 * 2000) <= 16 * 2


def test_cache_load_rate(benchmark):
    """Single-line loads through the full hierarchy."""
    def run():
        machine = _machine()
        memory = machine.memory
        for i in range(20_000):
            memory.load(i % 4, (i * 64) % (1 << 20), i)
        return memory.counters[0].loads
    loads = benchmark(run)
    assert loads > 0


def test_scan_throughput(benchmark):
    """Batched scans (the workload hot path)."""
    def run():
        machine = _machine()
        sim = Simulator(machine, ThreadScheduler())
        def program():
            while True:
                yield Scan(0, 64 * 64)     # 64 lines
        sim.spawn(program(), core_id=0)
        sim.run(max_steps=2000)
        return machine.memory.counters[0].loads
    lines = benchmark(run)
    assert lines == 2000 * 64

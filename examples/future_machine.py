#!/usr/bin/env python
"""Exploring §6.1: how future multicores change the O2 trade-off.

Builds three machines — the paper's AMD system (scaled), the same
machine with active-message-cheap migration, and a bandwidth-starved
future part — and sweeps the migration cost knob on each.  The point of
§6.1 in one plot: the scarcer off-chip bandwidth gets and the cheaper
migration gets, the more workloads O2 scheduling wins.

Run:  python examples/future_machine.py
"""

import dataclasses

from repro import (CoreTimeConfig, CoreTimeScheduler, DirWorkloadSpec,
                   DirectoryLookupWorkload, Machine, MachineSpec,
                   Simulator, ThreadScheduler)

N_DIRS = 320
WARMUP, MEASURE = 1_200_000, 1_200_000


def throughput(machine_spec, scheduler):
    machine = Machine(machine_spec)
    simulator = Simulator(machine, scheduler)
    workload = DirectoryLookupWorkload(
        machine, DirWorkloadSpec.scaled(8, n_dirs=N_DIRS))
    workload.spawn_all(simulator)
    simulator.run(until=WARMUP)
    before = simulator.total_ops
    simulator.run(until=WARMUP + MEASURE)
    return (simulator.total_ops - before) / machine_spec.seconds(MEASURE)


def main() -> None:
    today = MachineSpec.scaled(8)
    cheap_migration = MachineSpec.scaled(
        8, name="today+active-messages", migration_cost=50)
    starved = dataclasses.replace(
        MachineSpec.scaled(8), name="bandwidth-starved",
        latency=dataclasses.replace(
            today.latency, dram_base=460, dram_stream=160,
            dram_occupancy=32, remote_stream=140))

    print(f"Directory workload, {N_DIRS} directories "
          f"({N_DIRS * 4000 // 1024} KB)\n")
    print(f"{'machine':<24} {'thread':>10} {'coretime':>10} {'ratio':>7}")
    for machine_spec in (today, cheap_migration, starved):
        base = throughput(machine_spec, ThreadScheduler())
        core = throughput(machine_spec, CoreTimeScheduler(
            CoreTimeConfig(monitor_interval=100_000)))
        print(f"{machine_spec.name:<24} {base / 1e3:>10,.0f} "
              f"{core / 1e3:>10,.0f} {core / base:>6.2f}x")
    print("\n§6.1: cheaper migration and scarcer DRAM bandwidth both "
          "widen the O2 advantage.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Watching the rebalancer chase a moving hot set (Figure 4(b)).

The active set of directories oscillates between all 256 and a rotating
window of 16.  Every monitoring window, CoreTime's counters reveal which
cores went idle and which are saturated, and the rebalancer moves objects
toward the idle cores.  This script prints the live telemetry the
decisions are based on.

Run:  python examples/oscillating_rebalance.py
"""

from repro import (CoreTimeConfig, CoreTimeScheduler, DirWorkloadSpec,
                   DirectoryLookupWorkload, Machine, MachineSpec,
                   Simulator)

PHASES = 8
PERIOD = 800_000


def main() -> None:
    machine = Machine(MachineSpec.scaled(8))
    scheduler = CoreTimeScheduler(CoreTimeConfig(monitor_interval=100_000))
    simulator = Simulator(machine, scheduler)
    workload_spec = DirWorkloadSpec.scaled(
        8, n_dirs=256, popularity="oscillating",
        oscillation_period=PERIOD, oscillation_rotate=True)
    workload = DirectoryLookupWorkload(machine, workload_spec)
    workload.spawn_all(simulator)

    print("Oscillating directory popularity: 256 dirs <-> rotating "
          "window of 16")
    print(f"{'phase':>5} {'window':>12} {'kops/s':>8} {'assigned':>8} "
          f"{'moves':>6} {'idle%':>6}")
    previous_ops = 0
    previous_moves = 0
    previous_idle = 0
    for phase in range(PHASES):
        until = (phase + 1) * PERIOD
        simulator.run(until=until)
        ops = simulator.total_ops - previous_ops
        previous_ops = simulator.total_ops
        moves = scheduler.rebalancer.moves - previous_moves
        previous_moves = scheduler.rebalancer.moves
        idle = sum(bank.idle_cycles
                   for bank in machine.memory.counters) - previous_idle
        previous_idle += idle
        idle_frac = idle / (machine.n_cores * PERIOD)
        start, size = workload.popularity.active_window(until - 1)
        kops = ops / machine.spec.seconds(PERIOD) / 1e3
        print(f"{phase:>5} dirs[{start:>3}:{start + size:<4}] "
              f"{kops:>8,.0f} {len(scheduler.table):>8} {moves:>6} "
              f"{idle_frac:>5.1%}")

    print("\nRebalancer totals:",
          f"{scheduler.rebalancer.moves} object moves over",
          f"{scheduler.rebalancer.invocations} monitoring windows")
    hottest = scheduler.monitor.hottest(5)
    print("Hottest objects now:",
          ", ".join(f"{obj.name}@core{obj.home}" for obj in hottest))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A static web server on the simulated multicore (the §2 motivation).

Each request touches three kinds of object with different sharing
behaviour: a read/write connection table (coherence hot spot), a
directory lookup (the paper's annotated linear search), and a read-only
content stream.  One CoreTime runtime handles all three: the connection
table is pinned to a single core, directories are partitioned across
caches, and directory+content pairs are co-located via cluster keys.

Run:  python examples/webserver.py
"""

from repro import (CoreTimeConfig, CoreTimeScheduler, Machine,
                   MachineSpec, Simulator, ThreadScheduler)
from repro.workloads.webserver import WebServerSpec, WebServerWorkload

WARMUP = 1_200_000
MEASURE = 1_500_000


def serve(scheduler):
    machine = Machine(MachineSpec.scaled(8))
    simulator = Simulator(machine, scheduler)
    workload = WebServerWorkload(machine, WebServerSpec(n_dirs=96))
    workload.spawn_all(simulator)

    simulator.run(until=WARMUP)
    before = workload.requests_served
    invalidations_before = sum(
        bank.invalidations for bank in machine.memory.counters)
    simulator.run(until=WARMUP + MEASURE)

    requests = workload.requests_served - before
    seconds = machine.spec.seconds(MEASURE)
    invalidations = sum(
        bank.invalidations for bank in machine.memory.counters) \
        - invalidations_before
    print(f"  {scheduler.name:<10} {requests / seconds / 1e3:>9,.0f} k "
          f"requests/s   ({invalidations / max(1, requests):.2f} "
          "invalidations/request)")
    if scheduler.name == "coretime":
        table = scheduler.table
        conn_home = workload.conn_table.home
        print(f"             connection table pinned to core "
              f"{conn_home}; {len(table)} objects scheduled")
    return requests / seconds


def main() -> None:
    spec = WebServerSpec(n_dirs=96)
    print(f"Simulated static web server: {spec.n_dirs} directories, "
          f"{spec.files_per_dir} files each, Zipf URL popularity, "
          f"{spec.content_bytes} B responses\n")
    without = serve(ThreadScheduler())
    with_ct = serve(CoreTimeScheduler(
        CoreTimeConfig(monitor_interval=100_000)))
    print(f"\nCoreTime speedup: {with_ct / without:.2f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: the paper's directory-lookup benchmark, both schedulers.

This is Figures 1 and 3 in runnable form.  One simulated machine (the
16-core AMD system, scaled 8x so the run takes seconds), one workload
(threads resolving random file names in random directories), two
schedulers:

* ``ThreadScheduler``   — the traditional scheduler; annotations inert.
* ``CoreTimeScheduler`` — the O2 scheduler: directories get packed into
  caches and lookups migrate to their directory's core.

Run:  python examples/quickstart.py
"""

from repro import (CoreTimeConfig, CoreTimeScheduler, DirWorkloadSpec,
                   DirectoryLookupWorkload, Machine, MachineSpec,
                   Simulator, ThreadScheduler)

SCALE = 8
WARMUP = 1_500_000          # cycles: fill caches, let CoreTime learn
MEASURE = 1_500_000         # cycles: the measured window
N_DIRS = 256                # ~1 MB of directory entries (scaled)


def run(scheduler) -> float:
    """Throughput (thousands of resolutions/s) under ``scheduler``."""
    machine = Machine(MachineSpec.scaled(SCALE))
    simulator = Simulator(machine, scheduler)
    workload = DirectoryLookupWorkload(
        machine, DirWorkloadSpec.scaled(SCALE, n_dirs=N_DIRS))
    workload.spawn_all(simulator)

    simulator.run(until=WARMUP)
    ops_before = simulator.total_ops
    simulator.run(until=WARMUP + MEASURE)
    window_ops = simulator.total_ops - ops_before
    kops = window_ops / machine.spec.seconds(MEASURE) / 1e3
    print(f"  {scheduler.name:<10} {kops:>10,.0f} k resolutions/s   "
          f"({simulator.total_migrations:,} migrations, "
          f"{machine.memory.dram.total_lines_served:,} DRAM lines)")
    return kops


def main() -> None:
    spec = DirWorkloadSpec.scaled(SCALE, n_dirs=N_DIRS)
    print(f"Directory lookup benchmark: {N_DIRS} directories x "
          f"{spec.files_per_dir} entries "
          f"({spec.total_data_bytes // 1024} KB of 32-byte entries)")
    print(f"Machine: scaled AMD16 — 4 chips x 4 cores, "
          f"{MachineSpec.scaled(SCALE).onchip_bytes // 1024} KB on-chip\n")

    without = run(ThreadScheduler())
    with_ct = run(CoreTimeScheduler(
        CoreTimeConfig(monitor_interval=100_000)))

    print(f"\nCoreTime speedup: {with_ct / without:.2f}x  "
          "(paper, Figure 4(a): 2-3x in this regime)")


if __name__ == "__main__":
    main()

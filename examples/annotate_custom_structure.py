#!/usr/bin/env python
"""Annotating your own data structure with the CoreTime API.

The paper's interface is two annotations around an operation on an
object.  Here we build a sharded hash table from scratch — no file
system involved — declare each shard as a CoreTime object with
``ct_object``, and bracket probes with ``operation``.  Shards that miss
a lot get packed into caches and probes migrate to them.

Run:  python examples/annotate_custom_structure.py
"""

from repro import (CoreTimeConfig, CoreTimeScheduler, Machine,
                   MachineSpec, Simulator, ThreadScheduler, ct_object,
                   operation)
from repro.sim.rng import make_rng
from repro.threads.program import Compute, Scan

N_SHARDS = 32
SHARD_BYTES = 8 * 1024          # each shard is a bucket array
PROBE_BYTES = 1024              # a probe walks part of one bucket chain
WARMUP, MEASURE = 1_200_000, 1_200_000


def build_table(machine):
    """Allocate the shards and declare them as schedulable objects."""
    shards = []
    for index in range(N_SHARDS):
        region = machine.address_space.alloc(f"shard{index}", SHARD_BYTES)
        shards.append(ct_object(f"shard{index}", region.base,
                                SHARD_BYTES, read_only=True))
    return shards


def probe_body(shard, offset):
    """The memory work of one probe (what goes inside the brackets)."""
    yield Scan(shard.addr + offset, PROBE_BYTES, per_line_compute=3)


def worker(machine, shards, core_id):
    rng = make_rng(99, core_id)
    def program():
        while True:
            yield Compute(40)                       # hash the key
            shard = shards[rng.randrange(N_SHARDS)]
            offset = rng.randrange(SHARD_BYTES - PROBE_BYTES)
            yield from operation(shard, probe_body(shard, offset))
    return program()


def run(scheduler):
    machine = Machine(MachineSpec.scaled(8))
    simulator = Simulator(machine, scheduler)
    shards = build_table(machine)
    for core in range(machine.n_cores):
        for lane in range(4):
            simulator.spawn(worker(machine, shards, core * 4 + lane),
                            core_id=core)
    simulator.run(until=WARMUP)
    before = simulator.total_ops
    simulator.run(until=WARMUP + MEASURE)
    kops = ((simulator.total_ops - before)
            / machine.spec.seconds(MEASURE) / 1e3)
    print(f"  {scheduler.name:<10} {kops:>10,.0f} k probes/s")
    return kops, scheduler


def main() -> None:
    print(f"Sharded hash table: {N_SHARDS} shards x {SHARD_BYTES} B "
          f"({N_SHARDS * SHARD_BYTES // 1024} KB total)\n")
    baseline, _ = run(ThreadScheduler())
    with_ct, scheduler = run(CoreTimeScheduler(
        CoreTimeConfig(monitor_interval=100_000)))
    print(f"\nCoreTime speedup: {with_ct / baseline:.2f}x")
    print("Shard placement:",
          {obj.name: obj.home for obj in scheduler.table.objects()})


if __name__ == "__main__":
    main()

"""Tests for repro.mem.interconnect."""

from repro.cpu.topology import MachineSpec
from repro.mem.interconnect import Interconnect


def make():
    return Interconnect(MachineSpec.amd16())


class TestLatency:
    def test_same_chip_remote_matches_paper(self):
        interconnect = make()
        assert interconnect.remote_cache_latency(0, 0) == 127

    def test_hop_penalty(self):
        interconnect = make()
        one_hop = interconnect.remote_cache_latency(0, 1)
        two_hops = interconnect.remote_cache_latency(0, 3)
        assert 127 < one_hop < two_hops

    def test_invalidate_cost_grows_with_distance(self):
        interconnect = make()
        assert interconnect.invalidate_latency(0, 3) > \
            interconnect.invalidate_latency(0, 0)


class TestTraffic:
    def test_same_chip_transfer_not_counted_as_cross_chip(self):
        interconnect = make()
        interconnect.remote_cache_latency(0, 0)
        assert interconnect.total_transfers == 0

    def test_cross_chip_transfers_counted(self):
        interconnect = make()
        interconnect.remote_cache_latency(0, 1)
        interconnect.remote_cache_latency(0, 1)
        assert interconnect.total_transfers == 2

    def test_invalidations_counted(self):
        interconnect = make()
        interconnect.invalidate_latency(0, 2)
        assert interconnect.total_invalidations == 1
        assert interconnect.cross_chip_messages() == 1

    def test_reset(self):
        interconnect = make()
        interconnect.remote_cache_latency(0, 1)
        interconnect.reset()
        assert interconnect.cross_chip_messages() == 0

"""Tests for repro.workloads.popularity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.rng import make_rng
from repro.workloads.popularity import (OscillatingPopularity,
                                        UniformPopularity, ZipfPopularity,
                                        make_popularity)


class TestUniform:
    def test_in_range(self):
        pop = UniformPopularity(10)
        rng = make_rng(0)
        assert all(0 <= pop.pick(rng, 0) < 10 for _ in range(200))

    def test_covers_all(self):
        pop = UniformPopularity(4)
        rng = make_rng(0)
        seen = {pop.pick(rng, 0) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            UniformPopularity(0)


class TestOscillating:
    def test_square_wave_phases(self):
        pop = OscillatingPopularity(32, period_cycles=1000, shrink=16)
        assert pop.active_window(0) == (0, 32)
        assert pop.active_window(999) == (0, 32)
        assert pop.active_window(1000) == (0, 2)
        assert pop.active_window(2000) == (0, 32)

    def test_contracted_picks_stay_in_window(self):
        pop = OscillatingPopularity(32, period_cycles=1000, shrink=16)
        rng = make_rng(1)
        picks = {pop.pick(rng, 1500) for _ in range(100)}
        assert picks <= {0, 1}

    def test_rotation_moves_the_window(self):
        pop = OscillatingPopularity(32, period_cycles=1000, shrink=16,
                                    rotate=True)
        first = pop.active_window(1000)
        second = pop.active_window(3000)
        assert first[1] == second[1] == 2
        assert first[0] != second[0]

    def test_rotation_wraps(self):
        pop = OscillatingPopularity(4, period_cycles=10, shrink=2,
                                    rotate=True)
        rng = make_rng(2)
        for phase in range(20):
            index = pop.pick(rng, phase * 10)
            assert 0 <= index < 4

    def test_paper_shrink_is_sixteenth(self):
        pop = OscillatingPopularity(640, period_cycles=100)
        assert pop.small == 40

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            OscillatingPopularity(0, 100)
        with pytest.raises(ConfigError):
            OscillatingPopularity(4, 1)
        with pytest.raises(ConfigError):
            OscillatingPopularity(4, 100, shrink=0)


class TestZipf:
    def test_in_range(self):
        pop = ZipfPopularity(20, s=1.0)
        rng = make_rng(3)
        assert all(0 <= pop.pick(rng, 0) < 20 for _ in range(500))

    def test_skew_concentrates_mass(self):
        pop = ZipfPopularity(50, s=1.2, seed=0)
        rng = make_rng(4)
        counts = {}
        for _ in range(5000):
            index = pop.pick(rng, 0)
            counts[index] = counts.get(index, 0) + 1
        top = max(counts.values())
        assert top / 5000 > 3 / 50            # far above uniform share

    def test_weights_sum_to_one(self):
        pop = ZipfPopularity(10, s=1.0)
        total = sum(pop.weight(i) for i in range(10))
        assert total == pytest.approx(1.0)

    def test_s_zero_is_uniformish(self):
        pop = ZipfPopularity(10, s=0.0)
        weights = [pop.weight(i) for i in range(10)]
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_rank_shuffle_depends_on_seed(self):
        a = ZipfPopularity(30, s=1.0, seed=1)
        b = ZipfPopularity(30, s=1.0, seed=2)
        assert a._order != b._order


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_popularity("uniform", 4),
                          UniformPopularity)
        assert isinstance(make_popularity("oscillating", 4,
                                          period_cycles=100),
                          OscillatingPopularity)
        assert isinstance(make_popularity("zipf", 4, s=1.0),
                          ZipfPopularity)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_popularity("exponential", 4)


@settings(max_examples=30)
@given(n=st.integers(min_value=1, max_value=100),
       now=st.integers(min_value=0, max_value=10**9),
       seed=st.integers(min_value=0, max_value=1000))
def test_every_distribution_picks_in_range(n, now, seed):
    rng = make_rng(seed)
    for pop in (UniformPopularity(n),
                OscillatingPopularity(n, period_cycles=1000, rotate=True),
                ZipfPopularity(n, s=1.1, seed=seed)):
        for _ in range(5):
            assert 0 <= pop.pick(rng, now) < n

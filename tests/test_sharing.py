"""Tests for repro.mem.sharing (coherence directory)."""

from repro.mem.sharing import SharingDirectory


class TestHolderIds:
    def test_core_and_l3_ids_distinct(self):
        directory = SharingDirectory(n_cores=4)
        assert directory.core_holder(0) == 0
        assert directory.l3_holder(0) == 4
        assert directory.is_l3_holder(4)
        assert not directory.is_l3_holder(3)

    def test_chip_of_holder(self):
        directory = SharingDirectory(n_cores=4)
        # 2 cores per chip: cores 0,1 on chip 0; l3 holder 4 is chip 0.
        assert directory.chip_of_holder(0, 2) == 0
        assert directory.chip_of_holder(3, 2) == 1
        assert directory.chip_of_holder(4, 2) == 0
        assert directory.chip_of_holder(5, 2) == 1


class TestMembership:
    def test_add_and_holders(self):
        directory = SharingDirectory(4)
        directory.add(10, 0)
        directory.add(10, 2)
        assert directory.holders(10) == frozenset({0, 2})
        assert directory.sharer_count(10) == 2

    def test_discard(self):
        directory = SharingDirectory(4)
        directory.add(10, 0)
        directory.discard(10, 0)
        assert directory.holders(10) == frozenset()
        assert not directory.is_cached(10)
        assert len(directory) == 0

    def test_discard_absent_is_noop(self):
        directory = SharingDirectory(4)
        directory.discard(10, 0)
        directory.add(10, 1)
        directory.discard(10, 0)
        assert directory.holders(10) == frozenset({1})

    def test_holders_excluding(self):
        directory = SharingDirectory(4)
        directory.add(7, 0)
        directory.add(7, 1)
        directory.add(7, 2)
        assert sorted(directory.holders_excluding(7, 1)) == [0, 2]
        assert directory.holders_excluding(8, 0) == []

    def test_any_holder(self):
        directory = SharingDirectory(4)
        assert directory.any_holder(5) is None
        directory.add(5, 3)
        assert directory.any_holder(5) == 3

    def test_cached_lines(self):
        directory = SharingDirectory(4)
        directory.add(1, 0)
        directory.add(2, 1)
        assert sorted(directory.cached_lines()) == [1, 2]

    def test_holders_view_is_immutable_snapshot(self):
        directory = SharingDirectory(4)
        directory.add(1, 0)
        view = directory.holders(1)
        directory.add(1, 2)
        assert view == frozenset({0})

"""Shared fixtures: small machines that keep tests fast."""

from __future__ import annotations

import pytest

from repro.cpu.machine import Machine
from repro.cpu.topology import MachineSpec

from tests.helpers import tiny_spec


@pytest.fixture
def spec() -> MachineSpec:
    return tiny_spec()


@pytest.fixture
def machine(spec) -> Machine:
    return Machine(spec)


@pytest.fixture
def one_core_machine() -> Machine:
    return Machine(tiny_spec(n_chips=1, cores_per_chip=1))


@pytest.fixture
def quad_machine() -> Machine:
    """One chip, four cores — the Figure 2 topology."""
    return Machine(tiny_spec(n_chips=1, cores_per_chip=4))

"""Tests for repro.obs (event bus, metrics, exporters, flight recorder)."""

import json
import time

import pytest

from repro.cpu.machine import Machine
from repro.errors import ConfigError, DeadlockError
from repro.obs import Observability
from repro.obs.bus import EventBus, EventLog
from repro.obs.events import (ALL_EVENTS, CONTROL_EVENTS, EVENT_KINDS,
                              MEMORY_EVENTS, Event, MigrationStarted,
                              OperationFinished, RunMarker, ThreadSpawned)
from repro.obs.export import (SCHEMA_VERSION, ascii_timeline, chrome_trace,
                              events_to_jsonl)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (Histogram, MetricsRegistry)
from repro.sched.base import SchedulerRuntime
from repro.sched.thread_sched import ThreadScheduler
from repro.sim.engine import Simulator
from repro.sim.trace import RecordingTracer
from repro.threads.program import Compute, CtEnd, CtStart, OpDone
from repro.workloads.dirlookup import DirectoryLookupWorkload, DirWorkloadSpec

from tests.helpers import tiny_spec


class _Obj:
    """Minimal ct_start target (the engine only reads ``name``)."""

    def __init__(self, name):
        self.name = name


def annotated_program(n_ops=3, cycles=100, obj=None):
    obj = obj or _Obj("obj:test")
    def program():
        for _ in range(n_ops):
            yield CtStart(obj)
            yield Compute(cycles)
            yield CtEnd()
            yield OpDone()
    return program()


def run_workload(obs=None, tracer=None, until=150_000, scale=4):
    machine = Machine(tiny_spec())
    sim = Simulator(machine, ThreadScheduler(), tracer=tracer, obs=obs)
    spec = DirWorkloadSpec(n_dirs=8, files_per_dir=16, think_cycles=10,
                           threads_per_core=2)
    DirectoryLookupWorkload(machine, spec).spawn_all(sim)
    return sim.run(until=until)


# ---------------------------------------------------------------------------
# event bus
# ---------------------------------------------------------------------------

class TestEventBus:
    def test_subscribe_specific_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, ThreadSpawned)
        bus.publish(ThreadSpawned(10, 0, "t0"))
        bus.publish(OperationFinished(20, 0, "t0", "obj", 5))
        assert [type(e) for e in seen] == [ThreadSpawned]

    def test_subscribe_all(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish(ThreadSpawned(10, 0, "t0"))
        bus.publish(RunMarker(0, "x"))
        assert len(seen) == 2
        assert bus.wants(MigrationStarted)

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        handler = seen.append
        bus.subscribe(handler, ThreadSpawned)
        assert bus.wants(ThreadSpawned)
        bus.unsubscribe(handler)
        assert not bus.wants(ThreadSpawned)
        bus.publish(ThreadSpawned(10, 0, "t0"))
        assert seen == []

    def test_wants_is_exact_per_type(self):
        bus = EventBus()
        bus.subscribe(lambda e: None, ThreadSpawned)
        assert bus.wants(ThreadSpawned)
        assert not bus.wants(OperationFinished)

    def test_publish_counts(self):
        bus = EventBus()
        bus.subscribe(lambda e: None, ThreadSpawned)
        bus.publish(ThreadSpawned(1, 0, "a"))
        bus.publish(RunMarker(0, "unwanted"))
        assert bus.published == 1
        assert bus.dropped_unwanted == 1

    def test_event_log_bound(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.record(ThreadSpawned(i, 0, f"t{i}"))
        assert len(log.events) == 3
        assert log.dropped == 2


class TestEvents:
    def test_as_dict_round_trips_fields(self):
        event = MigrationStarted(100, 1, "t3", 2, 350)
        data = event.as_dict()
        assert data == {"kind": "migrate", "ts": 100, "core": 1,
                        "thread": "t3", "target": 2, "arrive_ts": 350}

    def test_equality(self):
        assert ThreadSpawned(1, 0, "a") == ThreadSpawned(1, 0, "a")
        assert ThreadSpawned(1, 0, "a") != ThreadSpawned(1, 0, "b")

    def test_kind_registry_covers_all_events(self):
        assert set(EVENT_KINDS.values()) == set(ALL_EVENTS)
        assert set(CONTROL_EVENTS) | set(MEMORY_EVENTS) == set(ALL_EVENTS)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = Histogram("h", (10, 20, 40))
        for value in (10, 11, 20, 21, 40, 41):
            hist.observe(value)
        # counts: <=10, <=20, <=40, overflow
        assert hist.counts == [1, 2, 2, 1]
        assert hist.count == 6
        assert hist._min == 10 and hist._max == 41

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ConfigError):
            Histogram("bad", (10, 10, 20))
        with pytest.raises(ConfigError):
            Histogram("bad", ())

    def test_summary_percentiles(self):
        hist = Histogram("h", (10, 20, 40))
        for value in (5, 5, 15, 15, 15, 30):
            hist.observe(value)
        summary = hist.summary()
        assert summary.count == 6
        assert summary.mean == pytest.approx(85 / 6)
        assert summary.percentile(0.5) == 20
        assert summary.percentile(1.0) == 40
        assert summary.buckets[-1][0] == float("inf")
        data = summary.as_dict()
        assert data["count"] == 6 and "p95" in data

    def test_empty_summary(self):
        summary = Histogram("h", (10,)).summary()
        assert summary.count == 0
        assert summary.percentile(0.5) is None
        assert summary.mean == 0.0

    def test_empty_percentile_is_none_for_every_quantile(self):
        summary = Histogram("h", (10, 20)).summary()
        for p in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert summary.percentile(p) is None
        assert summary.min is None and summary.max is None
        data = summary.as_dict()
        assert data["p50"] is None and data["p95"] is None

    def test_single_bucket_percentiles(self):
        hist = Histogram("h", (100,))
        for value in (1, 50, 100):      # all inside the only bucket
            hist.observe(value)
        summary = hist.summary()
        for p in (0.25, 0.5, 0.95, 1.0):
            assert summary.percentile(p) == 100
        assert summary.percentile(0.0) == 100   # rank 0 -> first bucket

    def test_single_bucket_overflow_reports_observed_max(self):
        hist = Histogram("h", (100,))
        hist.observe(5000)              # lands in the overflow bucket
        summary = hist.summary()
        # The overflow bucket's bound is inf; the estimate must fall
        # back to the observed maximum, never return inf.
        assert summary.percentile(0.5) == 5000
        assert summary.percentile(1.0) == 5000

    def test_percentile_range_is_validated(self):
        summary = Histogram("h", (10,)).summary()
        with pytest.raises(ConfigError):
            summary.percentile(-0.1)
        with pytest.raises(ConfigError):
            summary.percentile(1.1)


class TestMetricsRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", (1, 2)) is \
            registry.histogram("h", (1, 2))

    def test_histogram_bucket_conflict(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ConfigError):
            registry.histogram("h", (1, 2, 3))

    def test_cross_type_name_collision(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigError):
            registry.gauge("x")
        with pytest.raises(ConfigError):
            registry.gauge_fn("x", lambda: 0)

    def test_gauge_fn_pull(self):
        registry = MetricsRegistry()
        state = {"v": 1}
        registry.gauge_fn("pull", lambda: state["v"])
        state["v"] = 7
        assert registry.snapshot()["pull"] == 7

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", (10,)).observe(4)
        text = json.dumps(registry.snapshot())
        assert json.loads(text)["c"] == 3
        assert "h" in registry.render_text()


# ---------------------------------------------------------------------------
# simulator integration
# ---------------------------------------------------------------------------

class TestSimulatorIntegration:
    def test_run_result_exposes_summaries(self):
        obs = Observability()
        result = run_workload(obs=obs)
        assert result.op_latency is not None
        assert result.op_latency.count > 0
        assert result.migration_latency is not None
        assert result.metrics["sim.ops"] == result.op_latency.count
        assert "sim.runqueue_depth" in result.metrics
        assert "mem.dram_lines" in result.metrics

    def test_without_obs_summaries_absent(self):
        result = run_workload()
        assert result.op_latency is None
        assert result.migration_latency is None
        assert result.metrics == {}

    def test_disabled_path_constructs_no_events(self, monkeypatch):
        def boom(self, *args, **kwargs):
            raise AssertionError("event constructed with obs disabled")
        # Concrete event __init__s are flattened (no super() chain), so
        # every class must be patched, not just the Event base.
        for klass in (Event,) + ALL_EVENTS:
            monkeypatch.setattr(klass, "__init__", boom)
        result = run_workload()          # no tracer, no obs
        assert result.ops > 0

    def test_legacy_tracer_bridge(self):
        tracer = RecordingTracer()
        run_workload(tracer=tracer)
        counts = tracer.counts()
        assert counts["spawn"] > 0
        assert counts["done"] >= 0
        migrates = tracer.of_kind("migrate")
        if migrates:
            assert isinstance(migrates[0].detail, int)

    def test_tracer_and_obs_can_coexist(self):
        tracer = RecordingTracer()
        obs = Observability()
        run_workload(obs=obs, tracer=tracer)
        spawns = [e for e in obs.events() if type(e) is ThreadSpawned]
        assert len(spawns) == len(tracer.of_kind("spawn"))

    def test_run_markers_split_runs(self):
        obs = Observability()
        run_workload(obs=obs)
        run_workload(obs=obs)
        markers = [e for e in obs.events() if type(e) is RunMarker]
        assert len(markers) == 2
        assert obs.runs == ["thread", "thread"]

    def test_memory_events_opt_in(self):
        quiet = Observability()
        run_workload(obs=quiet)
        assert not any(type(e).__name__ == "CacheInvalidated"
                       for e in quiet.events())
        chatty = Observability(capture_memory=True)
        run_workload(obs=chatty)
        assert any(type(e).__name__ == "CacheInvalidated"
                   for e in chatty.events())

    def test_enabled_overhead_bounded(self):
        # Guard against pathological regressions; the strict <15% budget
        # is checked on the larger fig2 run where fixed costs amortise.
        def timed(obs_factory):
            best = float("inf")
            for _ in range(3):
                obs = obs_factory()
                start = time.perf_counter()
                run_workload(obs=obs, until=300_000)
                best = min(best, time.perf_counter() - start)
            return best
        disabled = timed(lambda: None)
        enabled = timed(Observability)
        assert enabled <= disabled * 1.5 + 0.05


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

class TestChromeTrace:
    def test_trace_is_valid_and_monotonic(self, tmp_path):
        obs = Observability()
        run_workload(obs=obs)
        path = tmp_path / "run.trace.json"
        obs.write_chrome_trace(str(path))
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events, "empty trace"
        for entry in events:
            assert entry["ph"] in ("M", "X", "i", "s", "f")
            assert "pid" in entry
            if entry["ph"] != "M":
                assert "ts" in entry
        # one named track per core, plus process names
        meta = [e for e in events if e["ph"] == "M"]
        track_names = {e["args"]["name"] for e in meta
                       if e["name"] == "thread_name"}
        n_cores = tiny_spec().n_cores
        assert {f"core {i}" for i in range(n_cores)} <= track_names
        # per-track slice timestamps never go backwards
        slices = {}
        for entry in events:
            if entry["ph"] == "X":
                slices.setdefault(
                    (entry["pid"], entry["tid"]), []).append(entry["ts"])
        assert slices
        for ts_list in slices.values():
            assert ts_list == sorted(ts_list)

    def test_migration_flow_pairs(self):
        class PingPong(ThreadScheduler):
            # Every annotated operation runs on the *other* core.
            def on_ct_start(self, thread, obj, core, now):
                return 1 - core.core_id

        obs = Observability()
        machine = Machine(tiny_spec(n_chips=1))
        sim = Simulator(machine, PingPong(), obs=obs)
        sim.spawn(annotated_program(n_ops=4), core_id=0)
        sim.run(until=200_000)
        events = chrome_trace(obs.events())["traceEvents"]
        starts = {e["id"] for e in events if e["ph"] == "s"}
        finishes = {e["id"] for e in events if e["ph"] == "f"}
        assert starts and starts == finishes
        # the flow lands on the migration's target track at arrive time
        for finish in (e for e in events if e["ph"] == "f"):
            assert finish["bp"] == "e"

    def test_two_runs_become_two_processes(self):
        obs = Observability()
        run_workload(obs=obs)
        run_workload(obs=obs)
        events = chrome_trace(obs.events())["traceEvents"]
        assert {e["pid"] for e in events} == {0, 1}

    def test_jsonl_round_trip(self):
        obs = Observability()
        run_workload(obs=obs)
        lines = events_to_jsonl(obs.events()).splitlines()
        # one meta header line + one line per event
        assert len(lines) == len(obs.events()) + 1
        meta = json.loads(lines[0])
        assert meta["kind"] == "meta"
        assert meta["schema_version"] == SCHEMA_VERSION
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "spawn" in kinds

    def test_ascii_timeline_smoke(self):
        obs = Observability()
        run_workload(obs=obs)
        art = obs.ascii_timeline(width=40)
        assert "core   0" in art
        assert ascii_timeline([], width=40) == "(no operations recorded)"


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

class _CrashOnOpScheduler(ThreadScheduler):
    """Injects a DeadlockError from inside the run loop."""

    def on_ct_end(self, thread, core, now):
        raise DeadlockError("injected for the flight-recorder test")


class TestFlightRecorder:
    def test_ring_keeps_newest(self):
        flight = FlightRecorder(capacity=2)
        for i in range(4):
            flight.record(ThreadSpawned(i, 0, f"t{i}"))
        assert flight.recorded == 4
        assert [e.ts for e in flight.events()] == [2, 3]
        assert "t3" in flight.dump_text("why")

    def test_crash_dumps_flight_to_file(self, tmp_path):
        path = tmp_path / "postmortem.txt"
        obs = Observability(flight_path=str(path))
        machine = Machine(tiny_spec())
        sim = Simulator(machine, _CrashOnOpScheduler(), obs=obs)
        sim.spawn(annotated_program(), core_id=0)
        with pytest.raises(DeadlockError):
            sim.run(until=100_000)
        text = path.read_text()
        assert "DeadlockError" in text
        assert "injected" in text
        assert "spawn" in text              # pre-crash events preserved

    def test_no_flight_no_dump(self, tmp_path):
        path = tmp_path / "postmortem.txt"
        obs = Observability(flight=0, flight_path=str(path))
        machine = Machine(tiny_spec())
        sim = Simulator(machine, _CrashOnOpScheduler(), obs=obs)
        sim.spawn(annotated_program(), core_id=0)
        with pytest.raises(DeadlockError):
            sim.run(until=100_000)
        assert not path.exists()


# ---------------------------------------------------------------------------
# observability facade
# ---------------------------------------------------------------------------

class TestObservability:
    def test_events_disabled_still_runs(self):
        obs = Observability(events=False, metrics=False, flight=0)
        result = run_workload(obs=obs)
        assert result.ops > 0
        assert obs.events() == []
        assert obs.metrics_snapshot() == {}

    def test_scheduler_attr_set_before_bind(self):
        class Probe(SchedulerRuntime):
            name = "probe"
            bound_with_obs = None
            def _on_bind(self):
                Probe.bound_with_obs = self.obs
            def place_thread(self, thread):
                return 0
        obs = Observability()
        Simulator(Machine(tiny_spec()), Probe(), obs=obs)
        assert Probe.bound_with_obs is obs

"""Behavioral tests for the time-sharing policies (rr/cfs/sjf/mlfq)."""

from __future__ import annotations

import pytest

from repro.cpu.machine import Machine
from repro.errors import ConfigError
from repro.sched.cfs import CFSScheduler
from repro.sched.mlfq import MLFQScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.sjf import ShortestJobFirstScheduler
from repro.sched.timeshare import TimeSharingScheduler
from repro.sim.engine import Simulator
from repro.threads.program import Compute
from repro.threads.thread import SimThread
from repro.workloads.synthetic import ObjectOpsSpec, ObjectOpsWorkload

from tests.helpers import tiny_spec


def dummy():
    yield Compute(1)


def make_thread(name="t"):
    return SimThread(dummy(), name)


class TestConfigValidation:
    def test_quantum_must_be_positive(self):
        with pytest.raises(ConfigError):
            RoundRobinScheduler(quantum=0)
        with pytest.raises(ConfigError):
            TimeSharingScheduler(quantum=-5)

    def test_sjf_alpha_range(self):
        with pytest.raises(ConfigError):
            ShortestJobFirstScheduler(alpha=0.0)
        with pytest.raises(ConfigError):
            ShortestJobFirstScheduler(alpha=1.5)
        assert ShortestJobFirstScheduler(alpha=1.0).alpha == 1.0

    def test_mlfq_knobs(self):
        with pytest.raises(ConfigError):
            MLFQScheduler(levels=0)
        with pytest.raises(ConfigError):
            MLFQScheduler(decay=1.0)
        with pytest.raises(ConfigError):
            MLFQScheduler(decay_interval=0)


class TestNextBoundary:
    @pytest.mark.parametrize("scheduler", [
        RoundRobinScheduler(quantum=100),
        CFSScheduler(granularity=100),
        ShortestJobFirstScheduler(quantum=100),
        MLFQScheduler(quantum=100, decay_interval=50_000),
    ])
    def test_quantum_grid_and_strict_progress(self, scheduler):
        assert scheduler.next_boundary(0) == 100
        assert scheduler.next_boundary(250) == 300
        # Strictly ahead of now even on the grid: a zero-length batched
        # macro-step would wedge the batched kernel.
        assert scheduler.next_boundary(300) == 400
        # Pure: the batched kernel calls it at times the generic loop
        # never does, so repeated calls must not drift state.
        assert scheduler.next_boundary(250) == 300

    def test_mlfq_caps_at_decay_epoch_too(self):
        scheduler = MLFQScheduler(quantum=30_000, decay_interval=50_000)
        assert scheduler.next_boundary(0) == 30_000
        # Between quantum grid points the epoch boundary is nearer.
        assert scheduler.next_boundary(45_000) == 50_000


class TestPreemptionMechanics:
    def setup_pair(self, scheduler):
        machine = Machine(tiny_spec())
        scheduler.bind(machine)
        core = machine.cores[0]
        running, waiting = make_thread("running"), make_thread("waiting")
        core.current = running
        core.runqueue.push(waiting)
        return core, running, waiting

    def test_exhausted_slice_requeues_at_tail(self):
        scheduler = RoundRobinScheduler(quantum=100)
        core, running, waiting = self.setup_pair(scheduler)
        running.ct_started_at = 0
        scheduler.on_ct_end(running, core, 150)  # 150 >= quantum
        assert core.current is None
        assert list(core.runqueue) == [waiting, running]
        assert scheduler.preemptions == 1
        assert scheduler._slice_used[running.tid] == 0  # slice reset

    def test_unexpired_slice_keeps_running(self):
        scheduler = RoundRobinScheduler(quantum=1000)
        core, running, waiting = self.setup_pair(scheduler)
        running.ct_started_at = 0
        scheduler.on_ct_end(running, core, 150)
        assert core.current is running
        assert scheduler.preemptions == 0

    def test_empty_queue_never_preempts(self):
        scheduler = RoundRobinScheduler(quantum=10)
        machine = Machine(tiny_spec())
        scheduler.bind(machine)
        core = machine.cores[0]
        running = make_thread("running")
        core.current = running
        running.ct_started_at = 0
        scheduler.on_ct_end(running, core, 10_000)
        assert core.current is running

    def test_slice_accumulates_across_short_ops(self):
        scheduler = RoundRobinScheduler(quantum=100)
        core, running, waiting = self.setup_pair(scheduler)
        for start in (0, 60):
            running.ct_started_at = start
            scheduler.on_ct_end(running, core, start + 60)
            if core.current is None:  # re-dispatch by hand
                core.runqueue.remove(running)
                core.current = running
        # 60 + 60 crossed the quantum on the second boundary.
        assert scheduler.preemptions == 1


class TestCFS:
    def test_late_arrival_starts_at_pack_minimum(self):
        scheduler = CFSScheduler()
        scheduler._vruntime = {1: 500, 2: 900}
        assert scheduler._vrt(99) == 500

    def test_pick_next_prefers_minimum_vruntime(self):
        scheduler = CFSScheduler(granularity=100)
        core, running, waiting = TestPreemptionMechanics().setup_pair(
            scheduler)
        hungry = make_thread("hungry")
        core.runqueue.push(hungry)
        scheduler._vruntime = {running.tid: 500, waiting.tid: 400,
                               hungry.tid: 10}
        running.ct_started_at = 0
        scheduler.on_ct_end(running, core, 200)  # vrt 700 > 10 + 100
        assert core.current is None
        assert list(core.runqueue)[0] is hungry

    def test_done_thread_forgotten(self):
        scheduler = CFSScheduler()
        machine = Machine(tiny_spec())
        scheduler.bind(machine)
        thread = make_thread()
        scheduler._vruntime[thread.tid] = 123
        scheduler.on_thread_done(thread, machine.cores[0], 0)
        assert thread.tid not in scheduler._vruntime


class TestSJF:
    def test_first_observation_seeds_the_estimate(self):
        scheduler = ShortestJobFirstScheduler(alpha=0.5)
        thread = make_thread()
        scheduler._account(thread, None, 100, 400)
        assert scheduler._estimate[thread.tid] == 400.0

    def test_ewma_update(self):
        scheduler = ShortestJobFirstScheduler(alpha=0.25)
        thread = make_thread()
        scheduler._account(thread, None, 0, 400)
        scheduler._account(thread, None, 0, 800)
        assert scheduler._estimate[thread.tid] == pytest.approx(
            0.25 * 800 + 0.75 * 400)

    def test_pick_next_prefers_shortest_estimate(self):
        scheduler = ShortestJobFirstScheduler(quantum=10)
        core, running, waiting = TestPreemptionMechanics().setup_pair(
            scheduler)
        quick = make_thread("quick")
        core.runqueue.push(quick)
        scheduler._estimate = {running.tid: 500.0, waiting.tid: 300.0,
                               quick.tid: 50.0}
        running.ct_started_at = 0
        scheduler.on_ct_end(running, core, 100)
        assert list(core.runqueue)[0] is quick


class TestMLFQ:
    def test_levels_bucket_by_penalty(self):
        scheduler = MLFQScheduler(quantum=100, levels=3)
        thread = make_thread()
        tid = thread.tid
        assert scheduler._level(tid) == 0
        scheduler._penalty[tid] = 450  # >= 4 * quantum
        assert scheduler._level(tid) == 1
        scheduler._penalty[tid] = 10_000  # clamped to levels - 1
        assert scheduler._level(tid) == 2

    def test_penalty_decays_per_epoch(self):
        scheduler = MLFQScheduler(decay=0.5, decay_interval=1000)
        thread = make_thread()
        scheduler._penalty[thread.tid] = 800.0
        scheduler._apply_decay(2000)  # two epochs at once
        assert scheduler._penalty[thread.tid] == pytest.approx(200.0)
        assert scheduler._decay_epoch == 2
        scheduler._apply_decay(2000)  # idempotent within an epoch
        assert scheduler._penalty[thread.tid] == pytest.approx(200.0)

    def test_lower_level_waiter_preempts_immediately(self):
        scheduler = MLFQScheduler(quantum=1000, decay_interval=10**9)
        core, running, waiting = TestPreemptionMechanics().setup_pair(
            scheduler)
        scheduler._penalty[running.tid] = 5 * 1000 * 4  # deep level
        running.ct_started_at = 0
        scheduler.on_ct_end(running, core, 10)  # slice tiny, level wins
        assert core.current is None
        assert list(core.runqueue)[0] is waiting

    def test_lower_levels_get_longer_slices(self):
        scheduler = MLFQScheduler(quantum=100, levels=3,
                                  decay_interval=10**9)
        core, running, waiting = TestPreemptionMechanics().setup_pair(
            scheduler)
        # Same level (both demoted once): slice is quantum << 1.
        scheduler._penalty[running.tid] = 500.0
        scheduler._penalty[waiting.tid] = 500.0
        scheduler._slice_used[running.tid] = 150  # > 100, < 200
        assert not scheduler._should_preempt(running, core, 0)
        scheduler._slice_used[running.tid] = 200
        assert scheduler._should_preempt(running, core, 0)


class TestPlacement:
    def test_timeshare_places_round_robin(self):
        scheduler = RoundRobinScheduler()
        scheduler.bind(Machine(tiny_spec()))
        cores = [scheduler.place_thread(make_thread()) for _ in range(5)]
        assert cores == [0, 1, 2, 3, 0]

    def test_cfs_places_least_loaded(self):
        machine = Machine(tiny_spec())
        scheduler = CFSScheduler()
        sim = Simulator(machine, scheduler)
        sim.spawn(dummy(), core_id=0)
        sim.spawn(dummy(), core_id=0)
        sim.spawn(dummy(), core_id=1)
        # Cores 2 and 3 are empty; lowest id wins the tie.
        assert scheduler.place_thread(make_thread()) == 2


class TestEndToEnd:
    @pytest.mark.parametrize("name,factory", [
        ("rr", lambda: RoundRobinScheduler(quantum=2000)),
        ("cfs", lambda: CFSScheduler(granularity=2000)),
        ("sjf", lambda: ShortestJobFirstScheduler(quantum=2000)),
        ("mlfq", lambda: MLFQScheduler(quantum=2000)),
    ])
    def test_policies_actually_preempt_under_contention(self, name,
                                                        factory):
        machine = Machine(tiny_spec())
        scheduler = factory()
        sim = Simulator(machine, scheduler)
        spec = ObjectOpsSpec(n_objects=4, object_bytes=1024,
                             think_cycles=10, threads_per_core=2,
                             seed=5)
        ObjectOpsWorkload(machine, spec).spawn_all(sim)
        sim.run(until=120_000)
        stats = scheduler.stats()
        assert stats["preemptions"] > 0, f"{name} never preempted"

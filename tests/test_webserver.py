"""Tests for repro.workloads.webserver."""

import pytest

from repro.bench.harness import SCHEDULERS
from repro.cpu.machine import Machine
from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.threads.program import (Acquire, Compute, CtEnd, CtStart,
                                   Release, Store)
from repro.workloads.webserver import WebServerSpec, WebServerWorkload

from tests.helpers import tiny_spec


def tiny_server(**overrides):
    fields = dict(n_dirs=4, files_per_dir=16, content_bytes=256,
                  threads_per_core=1, cluster_bytes=512)
    fields.update(overrides)
    return WebServerSpec(**fields)


class TestConstruction:
    def test_objects_cover_all_tiers(self):
        machine = Machine(tiny_spec())
        workload = WebServerWorkload(machine, tiny_server())
        objects = workload.objects()
        names = {obj.name for obj in objects}
        assert "conn-table" in names
        assert any(name.startswith("dir:") for name in names)
        assert any(name.startswith("content:") for name in names)

    def test_conn_table_is_writable_object(self):
        machine = Machine(tiny_spec())
        workload = WebServerWorkload(machine, tiny_server())
        assert not workload.conn_table.read_only
        assert all(obj.read_only for obj in workload.content)

    def test_directory_and_content_share_cluster_key(self):
        machine = Machine(tiny_spec())
        workload = WebServerWorkload(machine, tiny_server())
        for directory, content in zip(workload.efsl.directories,
                                      workload.content):
            assert directory.object.cluster_key == content.cluster_key
            assert directory.object.cluster_key is not None

    def test_validation(self):
        with pytest.raises(ConfigError):
            WebServerSpec(n_dirs=0).validate()
        with pytest.raises(ConfigError):
            WebServerSpec(content_bytes=0).validate()

    def test_validation_edge_values(self):
        # The boundary cases on either side of every limit.
        WebServerSpec(n_dirs=1, files_per_dir=1, content_bytes=1,
                      conn_table_bytes=1).validate()
        with pytest.raises(ConfigError):
            WebServerSpec(files_per_dir=0).validate()
        with pytest.raises(ConfigError):
            WebServerSpec(conn_table_bytes=0).validate()
        with pytest.raises(ConfigError):
            WebServerSpec(n_dirs=-3).validate()
        # The workload constructor must enforce the same rules.
        with pytest.raises(ConfigError):
            WebServerWorkload(Machine(tiny_spec()),
                              tiny_server(files_per_dir=0))

    def test_replace_returns_modified_copy(self):
        base = tiny_server()
        changed = base.replace(n_dirs=9, zipf_s=1.4)
        assert changed.n_dirs == 9 and changed.zipf_s == 1.4
        assert changed.files_per_dir == base.files_per_dir
        assert base.n_dirs == 4                # original untouched
        assert changed.replace() == changed    # no-op replace

    def test_replace_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            tiny_server().replace(banana=1)


class TestRequestStream:
    def test_request_item_sequence(self):
        machine = Machine(tiny_spec())
        workload = WebServerWorkload(machine, tiny_server())
        program = workload.make_program(0)
        items = []
        # One full request = everything up to the second CtStart run of
        # the *next* request; collect generously and inspect the head.
        for _ in range(14):
            items.append(next(program))
        kinds = [type(item) for item in items]
        # Connection op first (bracketed store under the table lock)...
        assert kinds[0] is CtStart
        assert kinds[1] is Acquire
        assert kinds[2] is Store
        assert kinds[3] is Release
        assert kinds[4] is CtEnd
        # ...then parse, then the annotated lookup begins.
        assert kinds[5] is Compute
        assert kinds[6] is CtStart

    def test_end_to_end_under_both_schedulers(self):
        for name in ("thread", "coretime"):
            machine = Machine(tiny_spec())
            sim = Simulator(machine, SCHEDULERS[name]())
            workload = WebServerWorkload(machine, tiny_server())
            workload.spawn_all(sim)
            sim.run(until=400_000)
            assert workload.requests_served > 0, name

    def test_same_seed_spawn_all_is_deterministic(self):
        def run(seed):
            machine = Machine(tiny_spec())
            sim = Simulator(machine, SCHEDULERS["coretime"]())
            workload = WebServerWorkload(machine,
                                         tiny_server(seed=seed))
            threads = workload.spawn_all(sim)
            names = [thread.name for thread in threads]
            sim.run(until=250_000)
            counters = [(machine.memory.counters[c].loads,
                         machine.memory.counters[c].stores)
                        for c in range(machine.n_cores)]
            return names, workload.requests_served, counters

        first = run(seed=21)
        second = run(seed=21)
        assert first == second
        assert first[1] > 0
        # A different seed must actually change the request stream.
        other = run(seed=22)
        assert first[1:] != other[1:]

    def test_stores_hit_connection_table(self):
        machine = Machine(tiny_spec())
        sim = Simulator(machine, SCHEDULERS["thread"]())
        workload = WebServerWorkload(machine, tiny_server())
        workload.spawn_all(sim)
        sim.run(until=200_000)
        stores = sum(machine.memory.counters[c].stores
                     for c in range(machine.n_cores))
        # One table store plus two lock stores per request, per tier.
        assert stores >= workload.requests_served

"""Tests for repro.core.coretime (the O2 scheduler runtime)."""

import pytest

from repro.core.coretime import CoreTimeConfig, CoreTimeScheduler
from repro.core.object_table import CtObject
from repro.cpu.machine import Machine
from repro.errors import SchedulerError
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.threads.program import Compute, CtEnd, CtStart, Scan

from tests.helpers import tiny_spec


def fast_config(**changes):
    base = dict(monitor_interval=20_000, min_samples=1.5,
                miss_threshold=4.0)
    base.update(changes)
    return CoreTimeConfig(**base)


def build(config=None, **spec_overrides):
    machine = Machine(tiny_spec(**spec_overrides))
    scheduler = CoreTimeScheduler(config or fast_config())
    simulator = Simulator(machine, scheduler)
    return machine, scheduler, simulator


def scan_workload(machine, objects, seed=0):
    """One thread per core scanning random objects, annotated."""
    def make(core_id):
        rng = make_rng(seed, core_id)
        def program():
            while True:
                yield Compute(20)
                obj = objects[rng.randrange(len(objects))]
                yield CtStart(obj)
                yield Scan(obj.addr, obj.size, 2)
                yield CtEnd()
        return program()
    return make


def alloc_objects(machine, count, size=4096):
    objects = []
    for index in range(count):
        region = machine.address_space.alloc(f"obj{index}", size)
        objects.append(CtObject(f"obj{index}", region.base, size))
    return objects


class TestAssignment:
    def test_expensive_objects_get_assigned(self):
        # 16 objects x 4 KB = 64 KB, far beyond the tiny machine's
        # private caches: sustained misses, objects must be assigned.
        machine, scheduler, sim = build()
        objects = alloc_objects(machine, 16)
        sim.spawn_per_core(scan_workload(machine, objects))
        sim.run(until=2_000_000)
        assert len(scheduler.table) > 0
        assert sim.total_migrations > 0

    def test_cheap_objects_left_to_hardware(self):
        # One tiny object per core: everything L1-resident after warmup.
        machine, scheduler, sim = build()
        objects = alloc_objects(machine, 2, size=128)
        sim.spawn_per_core(scan_workload(machine, objects))
        sim.run(until=2_000_000)
        assert len(scheduler.table) == 0
        assert sim.total_migrations == 0

    def test_ops_on_assigned_objects_run_at_home(self):
        machine, scheduler, sim = build()
        objects = alloc_objects(machine, 16)
        sim.spawn_per_core(scan_workload(machine, objects))
        sim.run(until=3_000_000)
        obj = next(iter(scheduler.table.objects()))
        home = obj.home
        # The object's lines live overwhelmingly in the home core's
        # private caches or its chip's L3.
        memory = machine.memory
        resident = 0
        home_resident = 0
        for line in range(obj.addr // 64, (obj.addr + obj.size) // 64):
            holders = memory.directory.holders(line)
            resident += bool(holders)
            l3 = memory.directory.l3_holder(machine.spec.chip_of(home))
            if home in holders or l3 in holders:
                home_resident += 1
        assert resident > 0
        assert home_resident >= resident * 0.8

    def test_budget_respected(self):
        machine, scheduler, sim = build()
        objects = alloc_objects(machine, 40)     # 160 KB >> budgets
        sim.spawn_per_core(scan_workload(machine, objects))
        sim.run(until=3_000_000)
        for budget in scheduler.budgets:
            assert budget.used_bytes <= budget.capacity_bytes
        assert scheduler.declined_assignments > 0

    def test_rejects_non_ct_objects(self):
        machine, scheduler, sim = build()
        def program():
            yield CtStart("not-an-object")
            yield CtEnd()
        sim.spawn(program(), core_id=0)
        with pytest.raises(SchedulerError):
            sim.run(until=100_000)

    def test_lookup_cost_charged(self):
        machine, scheduler, sim = build(fast_config(lookup_cost=1000))
        objects = alloc_objects(machine, 1, size=64)
        def program():
            yield CtStart(objects[0])
            yield CtEnd()
        sim.spawn(program(), core_id=0)
        sim.run(until=100_000)
        assert machine.cores[0].counters.busy_cycles >= 1000


class TestReturnHome:
    def _migrating_setup(self, **config_changes):
        machine, scheduler, sim = build(fast_config(**config_changes))
        objects = alloc_objects(machine, 16)
        sim.spawn_per_core(scan_workload(machine, objects))
        return machine, scheduler, sim

    def test_return_home_brings_threads_back(self):
        machine, scheduler, sim = self._migrating_setup(return_home=True)
        sim.run(until=3_000_000)
        # Each op that migrated also migrated back: roughly two
        # migrations per remote op, and threads sit at/near home.
        assert sim.total_migrations > 0
        remote_ops = sum(
            machine.memory.counters[c].migrations_in
            for c in range(machine.n_cores))
        assert remote_ops == sim.total_migrations

    def test_stay_put_halves_migrations(self):
        m1, s1, sim1 = self._migrating_setup(return_home=True)
        sim1.run(until=2_000_000)
        m2, s2, sim2 = self._migrating_setup(return_home=False)
        sim2.run(until=2_000_000)
        per_op_1 = sim1.total_migrations / max(1, sim1.total_ops)
        per_op_2 = sim2.total_migrations / max(1, sim2.total_ops)
        assert per_op_2 < per_op_1


class TestMonitoringWindow:
    def test_windows_close_at_interval(self):
        machine, scheduler, sim = build()
        objects = alloc_objects(machine, 8)
        sim.spawn_per_core(scan_workload(machine, objects))
        sim.run(until=1_000_000)
        assert scheduler.monitor.windows_closed >= 10

    def test_rebalance_disabled(self):
        machine, scheduler, sim = build(fast_config(rebalance=False))
        objects = alloc_objects(machine, 16)
        sim.spawn_per_core(scan_workload(machine, objects))
        sim.run(until=1_000_000)
        assert scheduler.rebalancer.invocations == 0

    def test_stats_keys(self):
        machine, scheduler, sim = build()
        stats = scheduler.stats()
        for key in ("objects_tracked", "objects_assigned", "assignments",
                    "rebalance_moves", "table_lookups"):
            assert key in stats


class TestRepack:
    def test_repack_reassigns_expensive_objects(self):
        machine, scheduler, sim = build()
        objects = alloc_objects(machine, 16)
        sim.spawn_per_core(scan_workload(machine, objects))
        sim.run(until=2_000_000)
        assigned_before = len(scheduler.table)
        assert assigned_before > 0
        scheduler.repack()
        assert len(scheduler.table) > 0
        for budget in scheduler.budgets:
            assert budget.used_bytes <= budget.capacity_bytes


class TestConfig:
    def test_replace(self):
        config = CoreTimeConfig()
        changed = config.replace(miss_threshold=99.0)
        assert changed.miss_threshold == 99.0
        assert config.miss_threshold == 8.0

    def test_defaults_follow_paper_preliminary_design(self):
        config = CoreTimeConfig()
        assert config.packing == "first_fit"
        assert not config.replicate_read_only
        assert not config.lfu_replacement
        assert not config.auto_cluster
        assert config.rebalance

"""Tests for the baseline schedulers (repro.sched)."""

import pytest

from repro.cpu.machine import Machine
from repro.errors import SchedulerError
from repro.sched.thread_clustering import (ThreadClusteringScheduler,
                                           cosine_similarity)
from repro.sched.thread_sched import ThreadScheduler
from repro.sched.work_stealing import WorkStealingScheduler
from repro.sim.engine import Simulator
from repro.threads.program import Compute, CtEnd, CtStart
from repro.threads.thread import SimThread

from tests.helpers import tiny_spec


def dummy():
    yield Compute(1)


class TestThreadScheduler:
    def test_round_robin(self):
        scheduler = ThreadScheduler()
        scheduler.bind(Machine(tiny_spec()))
        cores = [scheduler.place_thread(SimThread(dummy()))
                 for _ in range(5)]
        assert cores == [0, 1, 2, 3, 0]

    def test_annotations_are_inert(self):
        scheduler = ThreadScheduler()
        machine = Machine(tiny_spec())
        scheduler.bind(machine)
        thread = SimThread(dummy())
        assert scheduler.on_ct_start(thread, object(), machine.cores[0],
                                     0) is None
        assert scheduler.on_ct_end(thread, machine.cores[0], 0) is None

    def test_unbound_scheduler_rejects_placement(self):
        with pytest.raises(SchedulerError):
            ThreadScheduler()._check_core(0)

    def test_stats(self):
        scheduler = ThreadScheduler()
        scheduler.bind(Machine(tiny_spec()))
        scheduler.place_thread(SimThread(dummy()))
        assert scheduler.stats()["placements"] == 1


class TestWorkStealing:
    def test_idle_core_steals_from_deep_queue(self):
        machine = Machine(tiny_spec())
        scheduler = WorkStealingScheduler()
        sim = Simulator(machine, scheduler)
        def busy():
            for _ in range(20):
                yield Compute(100)
        # Pile three threads on core 0; cores 1-3 idle.
        for _ in range(3):
            sim.spawn(busy(), core_id=0)
        sim.run(until=10_000)
        assert scheduler.steals > 0
        # Stolen work ran elsewhere.
        others = sum(machine.cores[c].counters.busy_cycles
                     for c in range(1, 4))
        assert others > 0

    def test_no_steal_when_nothing_queued(self):
        machine = Machine(tiny_spec())
        scheduler = WorkStealingScheduler()
        sim = Simulator(machine, scheduler)
        sim.spawn(dummy(), core_id=0)
        sim.run(until=1000)
        assert scheduler.steals == 0


class TestCosineSimilarity:
    def test_identical_histograms(self):
        h = {1: 3, 2: 4}
        assert cosine_similarity(h, h) == pytest.approx(1.0)

    def test_disjoint_histograms(self):
        assert cosine_similarity({1: 5}, {2: 5}) == 0.0

    def test_empty(self):
        assert cosine_similarity({}, {1: 1}) == 0.0

    def test_symmetry(self):
        a, b = {1: 2, 2: 1}, {1: 1, 3: 4}
        assert cosine_similarity(a, b) == pytest.approx(
            cosine_similarity(b, a))


class TestThreadClustering:
    def _run(self, make_programs, recluster=64):
        machine = Machine(tiny_spec())
        scheduler = ThreadClusteringScheduler(
            recluster_every_ops=recluster)
        sim = Simulator(machine, scheduler)
        make_programs(sim)
        sim.run(until=3_000_000)
        return machine, scheduler, sim

    def test_uniform_sharing_spreads_threads(self):
        """When every thread shares everything (the paper's workload),
        clustering must not pile the whole load on one chip."""
        from repro.core.object_table import CtObject
        objs = [CtObject(f"o{i}", i * 4096, 64) for i in range(8)]
        from repro.sim.rng import make_rng
        def make(sim):
            def program(core_id):
                rng = make_rng(0, core_id)
                for _ in range(200):
                    yield CtStart(objs[rng.randrange(8)])
                    yield Compute(50)
                    yield CtEnd()
            for core in range(4):
                sim.spawn(program(core), core_id=core)
        machine, scheduler, sim = self._run(make)
        assert scheduler.reclusterings > 0
        chips = {}
        for thread in sim.threads:
            chip = scheduler._chip_of_thread.get(thread.tid)
            chips[chip] = chips.get(chip, 0) + 1
        # 4 threads over 2 chips: each chip gets exactly its share.
        assert chips.get(0, 0) == 2 and chips.get(1, 0) == 2

    def test_disjoint_sharing_groups_cluster_together(self):
        """Threads sharing a working set land on the same chip."""
        from repro.core.object_table import CtObject
        group_a = [CtObject(f"a{i}", i * 4096, 64) for i in range(4)]
        group_b = [CtObject(f"b{i}", (100 + i) * 4096, 64)
                   for i in range(4)]
        from repro.sim.rng import make_rng
        def make(sim):
            def program(core_id, objs):
                rng = make_rng(core_id, "p")
                for _ in range(300):
                    yield CtStart(objs[rng.randrange(4)])
                    yield Compute(50)
                    yield CtEnd()
            # Threads 0,2 share group A; threads 1,3 share group B,
            # placed so clustering has to move somebody.
            sim.spawn(program(0, group_a), core_id=0)
            sim.spawn(program(1, group_b), core_id=1)
            sim.spawn(program(2, group_a), core_id=2)
            sim.spawn(program(3, group_b), core_id=3)
        machine, scheduler, sim = self._run(make)
        by_tid = scheduler._chip_of_thread
        tids = [t.tid for t in sim.threads]
        assert by_tid[tids[0]] == by_tid[tids[2]]
        assert by_tid[tids[1]] == by_tid[tids[3]]
        assert by_tid[tids[0]] != by_tid[tids[1]]

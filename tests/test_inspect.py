"""Tests for repro.mem.inspect (Figure 2 residency analysis)."""

from repro.mem.inspect import (OFF_CHIP, dominant_location,
                               region_residency, residency_table)
from repro.mem.system import MemorySystem

from tests.helpers import tiny_spec


LINE = 64


def make():
    return MemorySystem(tiny_spec())


class TestRegionResidency:
    def test_uncached_region_is_off_chip(self):
        memory = make()
        counts = region_residency(memory, 0, 4 * LINE)
        assert counts == {OFF_CHIP: 4}

    def test_cached_region_counts_core(self):
        memory = make()
        for i in range(4):
            memory.load(0, i * LINE, 0)
        counts = region_residency(memory, 0, 4 * LINE)
        assert counts.get("core0") == 4
        assert OFF_CHIP not in counts

    def test_replication_counted_per_location(self):
        memory = make()
        memory.load(0, 0, 0)
        memory.load(1, 0, 0)
        counts = region_residency(memory, 0, LINE)
        assert counts.get("core0") == 1
        assert counts.get("core1") == 1


class TestDominantLocation:
    def test_off_chip_when_mostly_uncached(self):
        memory = make()
        memory.load(0, 0, 0)     # 1 of 8 lines cached
        assert dominant_location(memory, 0, 8 * LINE) == OFF_CHIP

    def test_core_dominates_when_resident(self):
        memory = make()
        for i in range(8):
            memory.load(1, i * LINE, 0)
        assert dominant_location(memory, 0, 8 * LINE) == "core1"

    def test_l3_location_label(self):
        memory = make()
        # Push lines through core 0's private caches into chip L3.
        for i in range(60):
            memory.load(0, i * LINE, 0)
        label = dominant_location(memory, 0, 8 * LINE)
        assert label in ("L3.0", "core0")


class TestResidencyTable:
    def test_groups_regions(self):
        memory = make()
        for i in range(4):
            memory.load(0, i * LINE, 0)
        table = residency_table(memory, [
            ("hot", 0, 4 * LINE),
            ("cold", 1 << 20, 4 * LINE),
        ])
        assert "hot" in table.get("core0", [])
        assert "cold" in table.get(OFF_CHIP, [])

    def test_names_sorted(self):
        memory = make()
        table = residency_table(memory, [
            ("b", 1 << 20, LINE), ("a", 2 << 20, LINE)])
        assert table[OFF_CHIP] == ["a", "b"]

"""Tests for the scheduler registry (repro.sched.registry)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sched import registry
from repro.sched.registry import SchedulerEntry
from repro.sched.thread_sched import ThreadScheduler


@pytest.fixture
def scratch_registry():
    """Snapshot/restore module state so registrations don't leak."""
    registry._ensure_builtins()
    snapshot = dict(registry._REGISTRY)
    yield registry
    registry._REGISTRY.clear()
    registry._REGISTRY.update(snapshot)


class TestBuiltins:
    def test_names_are_sorted_and_complete(self):
        names = registry.names()
        assert list(names) == sorted(names)
        for expected in ("thread", "work-stealing", "coretime",
                         "coretime-norebalance", "thread-clustering",
                         "cache-sharing", "rr", "cfs", "sjf", "mlfq"):
            assert expected in names

    def test_resolve_returns_zero_arg_factory(self):
        factory = registry.resolve("cfs")
        scheduler = factory()
        assert scheduler.describe().startswith("cfs(")

    def test_create_builds_an_instance(self):
        assert registry.create("thread").name == "thread"

    def test_entry_metadata(self):
        assert registry.entry("coretime").family == "object"
        assert registry.entry("rr").family == "timeshare"
        assert registry.entry("thread").family == "thread"
        assert registry.entry("coretime").summary

    def test_config_variant_is_excluded_from_fuzzing(self):
        # coretime-norebalance is an ablation knob on coretime, not a
        # distinct policy — fuzzing it would double-count coretime.
        fuzzable = registry.fuzzable_names()
        assert "coretime-norebalance" not in fuzzable
        assert "coretime" in fuzzable

    def test_entries_returns_entry_objects(self):
        entries = registry.entries()
        assert all(isinstance(e, SchedulerEntry) for e in entries)
        assert tuple(e.name for e in entries) == registry.names()


class TestRegistration:
    def test_register_and_resolve(self, scratch_registry):
        registry.register("custom", ThreadScheduler,
                          summary="test-only", family="thread")
        assert "custom" in registry.names()
        assert registry.create("custom").name == "thread"

    def test_duplicate_rejected(self, scratch_registry):
        with pytest.raises(ConfigError, match="already registered"):
            registry.register("thread", ThreadScheduler,
                              summary="dup", family="thread")

    def test_replace_allows_override(self, scratch_registry):
        registry.register("thread", ThreadScheduler,
                          summary="override", family="thread",
                          replace=True)
        assert registry.entry("thread").summary == "override"

    def test_user_registration_survives_builtin_population(
            self, scratch_registry):
        registry.register("thread", ThreadScheduler,
                          summary="mine now", family="thread",
                          replace=True)
        registry._builtins_registered = False
        names = registry.names()  # re-populates built-ins
        # Built-ins skip taken names: the user's entry stays.
        assert registry.entry("thread").summary == "mine now"
        assert "coretime" in names

    def test_bad_arguments_rejected(self):
        with pytest.raises(ConfigError):
            registry.register("", ThreadScheduler, summary="x",
                              family="thread")
        with pytest.raises(ConfigError):
            registry.register("notcallable", "nope",  # type: ignore
                              summary="x", family="thread")


class TestUnknownScheduler:
    def test_error_lists_every_registered_name(self):
        with pytest.raises(ConfigError) as excinfo:
            registry.entry("no-such-policy")
        message = str(excinfo.value)
        for name in registry.names():
            assert name in message

    def test_sweep_runner_resolves_via_registry(self):
        from repro.sweep.runner import _scheduler_factory
        assert _scheduler_factory("mlfq")().name == "mlfq"
        with pytest.raises(ConfigError) as excinfo:
            _scheduler_factory("no-such-policy")
        message = str(excinfo.value)
        for name in registry.names():
            assert name in message


class TestHarnessView:
    """The back-compat SCHEDULERS mapping in repro.bench.harness."""

    def test_mapping_protocol(self):
        from repro.bench.harness import SCHEDULERS
        assert "coretime" in SCHEDULERS
        assert "no-such-policy" not in SCHEDULERS
        assert set(SCHEDULERS) == set(registry.names())
        assert len(SCHEDULERS) == len(registry.names())

    def test_getitem_builds_schedulers(self):
        from repro.bench.harness import SCHEDULERS
        assert SCHEDULERS["sjf"]().name == "sjf"

    def test_unknown_name_raises_keyerror(self):
        # sweep() catches KeyError for its "unknown scheduler" message;
        # the view must keep that contract rather than leak ConfigError.
        from repro.bench.harness import SCHEDULERS
        with pytest.raises(KeyError):
            SCHEDULERS["no-such-policy"]

    def test_view_sees_late_registrations(self, scratch_registry):
        from repro.bench.harness import SCHEDULERS
        registry.register("late-bird", ThreadScheduler,
                          summary="registered after import",
                          family="thread")
        assert "late-bird" in SCHEDULERS
        assert SCHEDULERS["late-bird"]().name == "thread"

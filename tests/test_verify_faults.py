"""Mutation self-test for the invariant checker, plus coverage for the
flight-recorder crash-dump path it rides on.

The self-test is the checker's own verification: every
:class:`~repro.verify.FaultPlan` kind injected into a migration-heavy
simulation must trip its matching invariant (``EXPECTED_RULE``).  A
fault that passes silently is a checker blind spot and fails here.
"""

import pytest

from repro.cpu.machine import Machine
from repro.errors import ConfigError, SimulationError
from repro.obs import FlightRecorder, Observability, ThreadSpawned
from repro.sched.thread_sched import ThreadScheduler
from repro.sim.engine import Simulator, set_default_checker
from repro.verify import (EXPECTED_RULE, FAULT_KINDS, FaultPlan,
                          InvariantChecker, InvariantViolation,
                          run_mutation)
from repro.workloads.synthetic import ObjectOpsSpec, ObjectOpsWorkload

from tests.helpers import tiny_spec


class TestMutationSelfTest:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_each_fault_kind_trips_its_matching_invariant(self, kind):
        violation = run_mutation(kind)
        assert isinstance(violation, InvariantViolation)
        assert violation.rule == EXPECTED_RULE[kind]
        assert violation.ts >= 0
        assert violation.detail
        assert f"invariant '{violation.rule}'" in str(violation)

    def test_mutation_outcome_is_deterministic(self):
        first = run_mutation("evict_line")
        second = run_mutation("evict_line")
        assert (first.rule, first.ts, first.detail) \
            == (second.rule, second.ts, second.detail)

    def test_fault_event_precedes_violation_in_flight_dump(self):
        # The plan publishes FaultInjected *before* mutating, so the
        # recorder shows cause and effect side by side, in order.
        violation = run_mutation("corrupt_counter")
        kinds = [event["kind"] for event in violation.flight_events]
        assert "fault" in kinds
        assert "invariant" in kinds
        assert kinds.index("fault") < kinds.index("invariant")
        assert kinds[-1] == "invariant"

    def test_detection_needs_no_observability(self):
        # The checker must work on a bare sim (no bus, no recorder):
        # the violation still raises, just without flight evidence.
        machine = Machine(tiny_spec())
        sim = Simulator(machine, ThreadScheduler(),
                        checker=InvariantChecker(interval=1),
                        faults=FaultPlan.single("corrupt_counter",
                                                at_event=40))
        workload = ObjectOpsWorkload(machine, ObjectOpsSpec(
            n_objects=2, object_bytes=256, think_cycles=0, seed=3))
        workload.spawn_all(sim)
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run(until=200_000)
        assert excinfo.value.rule == "counters"
        assert excinfo.value.flight_events == []
        assert excinfo.value.flight_text == ""

    def test_expected_rule_covers_every_kind(self):
        assert set(EXPECTED_RULE) == set(FAULT_KINDS)


class TestConfigValidation:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(kinds=("explode",))

    def test_fault_plan_bounds_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(at_event=0)
        with pytest.raises(ConfigError):
            FaultPlan(count=-1)

    def test_unknown_invariant_rule_rejected(self):
        with pytest.raises(ConfigError):
            InvariantChecker(rules=("nonsense",))

    def test_checker_interval_must_be_positive(self):
        with pytest.raises(ConfigError):
            InvariantChecker(interval=0)

    def test_default_checker_factory_attaches_to_new_sims(self):
        created = []

        def factory():
            checker = InvariantChecker(interval=8)
            created.append(checker)
            return checker

        set_default_checker(factory)
        try:
            sim = Simulator(Machine(tiny_spec()), ThreadScheduler())
            assert sim.checker is created[0]
        finally:
            set_default_checker(None)
        assert Simulator(Machine(tiny_spec()),
                         ThreadScheduler()).checker is None


class TestFlightCrashDump:
    def _recorder_with(self, n, capacity=8):
        recorder = FlightRecorder(capacity=capacity)
        for i in range(n):
            recorder.record(ThreadSpawned(i * 10, 0, f"t{i}"))
        return recorder

    def test_tail_is_bounded_and_oldest_first(self):
        recorder = self._recorder_with(20)
        tail = recorder.tail(5)
        assert len(tail) == 5
        assert [event["ts"] for event in tail] == [150, 160, 170, 180, 190]
        assert all(event["kind"] == "spawn" for event in tail)

    def test_tail_edge_limits(self):
        recorder = self._recorder_with(20)
        assert recorder.tail(0) == []
        assert recorder.tail(-3) == []
        assert len(recorder.tail(100)) == 8  # capped by ring capacity

    def test_violation_drains_recorder_bounded(self):
        recorder = self._recorder_with(8)
        violation = InvariantViolation("heap", "boom", 99,
                                       flight=recorder, max_flight=3)
        assert len(violation.flight_events) == 3
        assert violation.flight_events[-1]["thread"] == "t7"
        assert "spawn" in violation.flight_text
        assert "boom" in str(violation)

    def test_violation_without_recorder_has_empty_flight(self):
        violation = InvariantViolation("heap", "boom", 7)
        assert violation.flight_events == []
        assert violation.flight_text == ""

    def test_on_crash_writes_dump_file(self, tmp_path):
        path = tmp_path / "crash.txt"
        obs = Observability(flight=16, flight_path=str(path))
        obs.bus.publish(ThreadSpawned(1, 0, "t0"))
        assert obs.on_crash(SimulationError("dead")) == str(path)
        text = path.read_text()
        assert "flight recorder" in text
        assert "SimulationError: dead" in text
        assert obs.flight.dumps == 1

    def test_on_crash_falls_back_to_stderr(self, capsys):
        obs = Observability(flight=16)
        obs.bus.publish(ThreadSpawned(1, 0, "t0"))
        assert obs.on_crash(SimulationError("dead")) is None
        assert "flight recorder" in capsys.readouterr().err

    def test_on_crash_noop_with_empty_ring(self):
        obs = Observability(flight=16)
        assert obs.on_crash(SimulationError("dead")) is None
        assert obs.flight.dumps == 0

    def test_engine_crash_dumps_flight_recorder(self, tmp_path):
        # End to end: a run that dies with SimulationError leaves a
        # post-mortem dump at flight_path before re-raising.
        path = tmp_path / "postmortem.txt"
        obs = Observability(flight=32, flight_path=str(path))
        sim = Simulator(Machine(tiny_spec()), ThreadScheduler(), obs=obs)

        def bad_program():
            yield object()  # not a simulator request -> SimulationError

        sim.spawn(bad_program(), "bad", core_id=0)
        with pytest.raises(SimulationError):
            sim.run(until=10_000)
        assert path.exists()
        assert obs.flight.dumps == 1
        assert "spawn" in path.read_text()

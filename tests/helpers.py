"""Shared test helpers (importable from any test module)."""

from __future__ import annotations

from repro.cpu.topology import MachineSpec


def tiny_spec(**overrides) -> MachineSpec:
    """The shared small-machine preset (see :meth:`MachineSpec.tiny`).

    Thin wrapper kept for import stability: the actual defaults live on
    the preset so the fuzzer (:mod:`repro.verify.fuzz`) and the test
    suite build identical machines.
    """
    return MachineSpec.tiny(**overrides)

"""Shared test helpers (importable from any test module)."""

from __future__ import annotations

from repro.cpu.topology import MachineSpec


def tiny_spec(**overrides) -> MachineSpec:
    """A 2-chip, 2-cores-per-chip machine with small caches.

    Small enough that capacity effects appear within a few hundred
    accesses, with the paper's latency structure intact.
    """
    fields = dict(
        name="tiny", n_chips=2, cores_per_chip=2,
        l1_bytes=512, l2_bytes=2048, l3_bytes=8192,
        migration_cost=200, spin_backoff=20,
    )
    fields.update(overrides)
    spec = MachineSpec(**fields)
    spec.validate()
    return spec

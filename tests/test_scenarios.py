"""The scenario catalog: registry semantics and per-scenario conformance.

The conformance half parametrizes over every registry entry so a newly
registered scenario is covered the moment it exists: same-seed
determinism, byte-identical generic/fast/batched event streams, and a
clean invariant-checker run all come from the fuzzer's
:func:`check_case` (the same three-way differential CI fuzz runs).
The ``phase_shift`` pin proves the scenario does what its name claims:
the rebalancer observes the migrating hot set and moves objects.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.coretime import CoreTimeConfig, CoreTimeScheduler
from repro.cpu.machine import Machine
from repro.cpu.topology import MachineSpec
from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.verify import check_case, generate_case
from repro.workloads import scenarios
from repro.workloads.scenarios import (ScenarioSpec, build, compile_spec,
                                       register)
from repro.workloads.synthetic import ObjectOpsSpec, ObjectOpsWorkload

ALL_NAMES = scenarios.names()


@pytest.fixture(autouse=True)
def _restore_registry():
    """Tests may register scenarios; leave the registry as found."""
    before = dict(scenarios._REGISTRY)
    flag = scenarios._builtins_registered
    yield
    scenarios._REGISTRY.clear()
    scenarios._REGISTRY.update(before)
    scenarios._builtins_registered = flag


class TestRegistry:
    def test_ships_the_promised_catalog(self):
        assert len(ALL_NAMES) >= 6
        assert {"zipf_kv", "pipeline", "rcu_read_mostly", "diurnal_burst",
                "phase_shift", "cpu_storm"} <= set(ALL_NAMES)

    def test_fuzzable_axis_is_a_subset(self):
        assert set(scenarios.fuzzable_names()) <= set(ALL_NAMES)

    def test_entries_carry_report_metadata(self):
        for item in scenarios.entries():
            assert item.summary
            assert item.stress

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ConfigError) as exc:
            scenarios.resolve("nope")
        message = str(exc.value)
        for name in ALL_NAMES:
            assert name in message

    def test_register_rejects_duplicates_unless_replace(self):
        compile = scenarios.entry("zipf_kv").compile
        with pytest.raises(ConfigError, match="already registered"):
            register("zipf_kv", compile)
        item = register("zipf_kv", compile, summary="override",
                        replace=True)
        assert scenarios.entry("zipf_kv") is item

    def test_user_registration_reaches_every_consumer(self):
        register("custom", lambda spec: ObjectOpsSpec(
            n_objects=2, object_bytes=256, seed=spec.seed))
        assert "custom" in scenarios.names()
        assert "custom" in scenarios.fuzzable_names()
        machine = Machine(MachineSpec.tiny())
        workload = build(machine, ScenarioSpec(name="custom"))
        assert isinstance(workload, ObjectOpsWorkload)


class TestScenarioSpec:
    def test_validate_rejects_unknown_name_with_registry_list(self):
        with pytest.raises(ConfigError) as exc:
            ScenarioSpec(name="nope").validate()
        assert "zipf_kv" in str(exc.value)

    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(ConfigError, match="scale"):
            ScenarioSpec(scale=0).validate()
        with pytest.raises(ConfigError, match="threads_per_core"):
            ScenarioSpec(threads_per_core=-1).validate()

    def test_scale_and_tpc_overrides_reach_the_compiled_spec(self):
        base = compile_spec(ScenarioSpec(name="zipf_kv"))
        scaled = compile_spec(ScenarioSpec(name="zipf_kv", scale=2.0,
                                           threads_per_core=3))
        assert scaled.n_objects == 2 * base.n_objects
        assert scaled.threads_per_core == 3
        assert base.threads_per_core != 3

    def test_seed_flows_into_the_compiled_spec(self):
        assert compile_spec(ScenarioSpec(name="zipf_kv", seed=99)).seed \
            == 99

    def test_total_data_bytes_matches_compiled_footprint(self):
        spec = ScenarioSpec(name="cpu_storm")
        assert spec.total_data_bytes == compile_spec(spec).total_bytes


@pytest.mark.parametrize("name", ALL_NAMES)
class TestScenarioConformance:
    def test_compile_is_deterministic(self, name):
        spec = ScenarioSpec(name=name, seed=13)
        assert compile_spec(spec) == compile_spec(spec)

    def test_build_is_seed_deterministic(self, name):
        # Two builds from the same spec must produce byte-identical
        # programs; check_case below proves the full event streams
        # match, here we pin the cheap structural part.
        machines = [Machine(MachineSpec.tiny()) for _ in range(2)]
        workloads = [build(machine, ScenarioSpec(name=name, seed=5))
                     for machine in machines]
        a, b = workloads
        assert a.spec == b.spec
        assert [obj.name for obj in a.objects] \
            == [obj.name for obj in b.objects]

    def test_kernels_reruns_and_invariants(self, name):
        # check_case = invariant checker + same-seed determinism + the
        # three-way generic/fast/batched kernel differential, with the
        # scenario workload swapped in for the raw knobs.
        case = generate_case(77).replace(
            scheduler="coretime", scenario=name, horizon=40_000)
        failure = check_case(case)
        assert failure is None, f"{name}: {failure}"


class TestPhaseShiftPin:
    def test_hot_set_migration_provokes_rebalancer_moves(self):
        # The scenario's contract: the rotating hot window must make
        # CoreTime's rebalancer actually reassign objects (≥1 move) —
        # otherwise "stresses the rebalancer" would be an empty claim.
        machine = Machine(MachineSpec.tiny())
        scheduler = CoreTimeScheduler(
            CoreTimeConfig(monitor_interval=10_000))
        sim = Simulator(machine, scheduler)
        build(machine, ScenarioSpec(name="phase_shift")).spawn_all(sim)
        sim.run(until=300_000)
        assert scheduler.stats()["rebalance_moves"] >= 1


class TestSweepIntegration:
    def test_scenario_kind_round_trips_through_case_json(self):
        from repro.sweep.spec import workload_from_dict, workload_to_dict
        spec = ScenarioSpec(name="pipeline", seed=3, scale=1.5)
        data = workload_to_dict("scenario", spec)
        assert workload_from_dict("scenario", data) == spec

    def test_unknown_scenario_fails_deserialization_with_names(self):
        from repro.sweep.spec import workload_from_dict
        with pytest.raises(ConfigError) as exc:
            workload_from_dict("scenario", {"name": "nope"})
        assert "zipf_kv" in str(exc.value)

    def test_preset_covers_catalog_and_registry(self):
        from repro.sched import registry
        from repro.sweep.presets import PRESETS
        spec = PRESETS["scenarios"]()
        assert tuple(w.label for w in spec.workloads) == ALL_NAMES
        assert set(spec.schedulers) == set(registry.names())
        assert spec.schedulers[:2] == ("thread", "coretime")
        # The measurement region must reach CoreTime's benchmark
        # monitor interval, or the rebalancer never acts (E12's trap).
        from repro.sched.registry import BENCH_MONITOR_INTERVAL
        assert (spec.warmup_cycles + spec.measure_cycles
                > 2 * BENCH_MONITOR_INTERVAL)

    def test_runner_executes_a_scenario_cell(self):
        from repro.sweep.presets import PRESETS
        from repro.sweep.runner import execute_case
        case = next(iter(PRESETS["scenarios"]().expand()))
        case = dataclasses.replace(case, warmup_cycles=2_000,
                                   measure_cycles=6_000)
        point = execute_case(case)
        assert point.ops > 0


class TestBenchIntegration:
    def test_run_scenario_reports_thread_vs_coretime(self):
        from repro.bench.figures import run_scenario
        result = run_scenario("zipf_kv", warmup_cycles=2_000,
                              measure_cycles=6_000)
        assert result.name == "scenario-zipf_kv"
        assert [series.label for series in result.series] \
            == ["thread", "coretime"]
        assert "zipf_kv" in result.report

    def test_unknown_scenario_raises_with_registry_list(self):
        from repro.bench.figures import run_scenario
        with pytest.raises(ConfigError) as exc:
            run_scenario("nope")
        assert "zipf_kv" in str(exc.value)

    def test_cli_lists_scenarios(self, capsys):
        from repro.bench.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_NAMES:
            assert name in out


class TestFuzzIntegration:
    def test_scenario_round_trips_through_case_json(self):
        from repro.verify.fuzz import FuzzCase
        case = FuzzCase(scenario="phase_shift")
        assert FuzzCase.from_json(case.to_json()).scenario == "phase_shift"

    def test_stored_cases_from_before_the_axis_still_load(self):
        from repro.verify.fuzz import FuzzCase
        case = FuzzCase.from_json('{"seed":9,"scheduler":"thread"}')
        assert case.scenario == ""

    def test_generator_draws_scenarios_from_the_fuzzable_axis(self):
        drawn = {generate_case(seed).scenario for seed in range(0, 60)}
        assert drawn - {""} <= set(scenarios.fuzzable_names())
        assert drawn - {""}, "no scenario drawn in 60 seeds"

    def test_shrink_drops_the_scenario_first(self):
        from repro.verify.fuzz import _shrink_candidates
        case = generate_case(12)
        assert case.scenario
        candidates = list(_shrink_candidates(case))
        assert any(c.scenario == "" for c in candidates)

    def test_scenario_case_builds_the_scenario_workload(self):
        from repro.verify.fuzz import build_workload
        machine = Machine(MachineSpec.tiny())
        case = generate_case(0).replace(scenario="pipeline")
        workload = build_workload(machine, case)
        assert type(workload).__name__ == "PipelineWorkload"
        # seed flows from the case into the scenario
        assert workload.spec.seed == case.seed

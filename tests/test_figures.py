"""Smoke tests for the experiment definitions (tiny profiles).

The real shape assertions live in benchmarks/; these verify every
experiment runs end to end, returns well-formed results, and that the
CLI plumbing works.
"""

import pytest

from repro.bench.figures import (EXPERIMENTS, PROFILES, FigureResult,
                                 Profile, _profile, figure_2, figure_4a)
from repro.errors import ConfigError

TINY = Profile((8, 24), warmup_cycles=100_000, measure_cycles=150_000)


class TestProfiles:
    def test_lookup_by_name(self):
        assert _profile("quick") is PROFILES["quick"]
        assert _profile(TINY) is TINY

    def test_unknown_profile(self):
        with pytest.raises(ConfigError):
            _profile("leisurely")

    def test_full_covers_paper_range(self):
        full = PROFILES["full"]
        # 640 scaled dirs = the paper's 20 MB right edge.
        assert max(full.n_dirs_list) == 640
        assert min(full.n_dirs_list) <= 4


class TestFigure4a:
    def test_tiny_run_shape(self):
        result = figure_4a(profile=TINY, scale=16)
        assert isinstance(result, FigureResult)
        assert [s.label for s in result.series] == ["thread", "coretime"]
        assert all(len(s.points) == 2 for s in result.series)
        assert "Figure 4(a)" in result.report
        assert result.series_by_label("thread").points[0].kops_per_sec > 0

    def test_unknown_series_label(self):
        result = figure_4a(profile=TINY, scale=16)
        with pytest.raises(KeyError):
            result.series_by_label("nonexistent")


class TestFigure2:
    def test_tiny_run(self):
        result = figure_2(n_dirs=8, run_cycles=400_000)
        assert "thread scheduler" in result.details
        assert "O2 scheduler (CoreTime)" in result.details
        assert "directories resident on-chip" in result.report


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {"fig4a", "fig4b", "fig2", "packing", "migration",
                    "clustering", "future", "replication", "replacement",
                    "objclustering", "packingpolicy"}
        assert set(EXPERIMENTS) == expected

    def test_cli_main_runs_one_experiment(self, tmp_path, monkeypatch,
                                          capsys):
        import repro.bench.report as report_module
        from repro.bench.__main__ import main

        monkeypatch.setattr(report_module, "RESULTS_DIR", str(tmp_path))
        # packing is the fastest experiment; run it through the CLI.
        exit_code = main(["packing", "--quiet"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "packing" in out
        assert (tmp_path / "packing_complexity.txt").exists()

"""Conformance suite: every registry scheduler obeys the runtime contract.

Parametrized over :func:`repro.sched.registry.names` so a newly
registered policy is tested the moment it exists, with no edits here.
The contract (DESIGN.md §14):

* every spawned thread runs to completion on finite programs — no
  thread is lost across placements, preemptions, or migrations;
* ``place_thread`` only ever returns a core the machine has, including
  through the engine's unpinned :meth:`Simulator.spawn` path;
* same-seed reruns are byte-identical, and the generic and batched
  engine kernels produce identical event streams and memory counters
  (delegated to the fuzzer's :func:`check_case`, which runs the
  three-way differential plus the invariant checker);
* ``describe()`` and ``stats()`` are report-ready (non-empty string,
  JSON-serializable dict with no run-relative identifiers).
"""

from __future__ import annotations

import json

import pytest

from repro.cpu.machine import Machine
from repro.sched import registry
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.threads.program import Compute
from repro.threads.thread import SimThread
from repro.verify import InvariantChecker, check_case, generate_case
from repro.workloads.synthetic import ObjectOpsSpec, ObjectOpsWorkload

from tests.helpers import tiny_spec

ALL_NAMES = registry.names()


def dummy():
    yield Compute(1)


def finite_workload(machine, n_ops: int = 12):
    """An :class:`ObjectOpsWorkload` wrapped into *finite* programs.

    The stock workload programs loop forever (benchmarks stop on a
    cycle horizon); completion conformance needs threads that actually
    finish, so each program runs ``n_ops`` operations and returns.
    """
    spec = ObjectOpsSpec(n_objects=4, object_bytes=512, think_cycles=10,
                         write_fraction=0.2, with_locks=True,
                         annotated=True, seed=11)
    workload = ObjectOpsWorkload(machine, spec)

    def make_program(core_id: int, lane: int = 0):
        rng = make_rng(spec.seed, "conformance", core_id, lane)

        def program():
            for _ in range(n_ops):
                yield Compute(spec.think_cycles)
                yield from workload._one_op(
                    rng.randrange(spec.n_objects), rng)

        return program()

    return make_program


class TestRegistryCoverage:
    def test_registry_is_a_real_zoo(self):
        # The acceptance bar: the tournament and this suite cover at
        # least eight distinct policies.
        assert len(ALL_NAMES) >= 8

    def test_fuzzable_axis_is_a_subset(self):
        assert set(registry.fuzzable_names()) <= set(ALL_NAMES)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestSchedulerConformance:
    def test_every_spawned_thread_completes(self, name):
        machine = Machine(tiny_spec())
        scheduler = registry.create(name)
        checker = InvariantChecker(interval=32)
        sim = Simulator(machine, scheduler, checker=checker)
        make_program = finite_workload(machine)
        # Unpinned spawns: the scheduler's own placement decides, and
        # two lanes per core keep run queues non-empty so preempting
        # policies actually preempt.
        threads = [
            sim.spawn(make_program(i % machine.n_cores, lane=i),
                      f"conf-{i}")
            for i in range(2 * machine.n_cores)
        ]
        sim.run(max_steps=5_000_000)
        assert len(sim.threads) == len(threads)
        assert all(thread.done for thread in threads), (
            f"{name}: unfinished threads "
            f"{[t.name for t in threads if not t.done]}")
        # Nothing left behind on any core: a lost thread would either
        # sit in a queue forever or still be "current" after the run.
        for core in machine.cores:
            assert core.current is None
            assert not core.runqueue
        assert checker.checks > 0
        assert checker.violations == 0

    def test_place_thread_stays_on_machine(self, name):
        machine = Machine(tiny_spec())
        scheduler = registry.create(name)
        scheduler.bind(machine)
        for _ in range(3 * machine.n_cores):
            core_id = scheduler.place_thread(SimThread(dummy()))
            assert 0 <= core_id < machine.n_cores

    def test_kernels_and_reruns_are_byte_identical(self, name):
        # check_case = invariants + same-seed determinism + the
        # three-way fast/generic/batched differential.  scenario="" pins
        # the raw workload knobs (threads_per_core=2 keeps run queues
        # non-empty); scenario coverage lives in test_scenarios.py.
        case = generate_case(901).replace(
            scheduler=name, threads_per_core=2, horizon=40_000,
            scenario="")
        failure = check_case(case)
        assert failure is None, f"{name}: {failure}"

    def test_describe_and_stats_are_report_ready(self, name):
        scheduler = registry.create(name)
        text = scheduler.describe()
        assert isinstance(text, str) and text

        machine = Machine(tiny_spec())
        scheduler = registry.create(name)
        sim = Simulator(machine, scheduler)
        make_program = finite_workload(machine, n_ops=4)
        for i in range(machine.n_cores):
            sim.spawn(make_program(i), f"stat-{i}")
        sim.run(max_steps=1_000_000)
        stats = scheduler.stats()
        assert isinstance(stats, dict)
        encoded = json.dumps(stats)  # must be JSON-serializable
        # Global thread ids must never leak into stats — they depend on
        # process history, which would break record byte-identity.
        for thread in sim.threads:
            assert f"tid{thread.tid}" not in encoded

"""Tests for repro.sim.rng and repro.sim.trace."""

import io

from repro.sim.rng import make_rng, stream_seed
from repro.sim.trace import (PrintTracer, RecordingTracer, TraceEvent)


class TestRng:
    def test_same_labels_same_stream(self):
        a = make_rng(1, "x", 2)
        b = make_rng(1, "x", 2)
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_labels_different_streams(self):
        a = make_rng(1, "x")
        b = make_rng(1, "y")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]

    def test_seed_changes_stream(self):
        assert stream_seed(1, "x") != stream_seed(2, "x")

    def test_label_order_matters(self):
        assert stream_seed(1, "a", "b") != stream_seed(1, "b", "a")

    def test_int_and_str_labels(self):
        assert stream_seed(1, 2) == stream_seed(1, "2")


class TestTracers:
    def test_recording(self):
        tracer = RecordingTracer()
        tracer.emit(TraceEvent(1, "spawn", "t0", 0))
        tracer.emit(TraceEvent(2, "migrate", "t0", 0, 3))
        assert tracer.counts()["spawn"] == 1
        assert tracer.of_kind("migrate")[0].detail == 3
        tracer.clear()
        assert tracer.events == []

    def test_print_tracer_formats(self):
        out = io.StringIO()
        tracer = PrintTracer(out)
        tracer.emit(TraceEvent(42, "migrate", "t1", 2, 5))
        text = out.getvalue()
        assert "migrate" in text and "t1" in text and "42" in text

"""Tests for repro.sim.engine (the discrete-event executor)."""

import pytest

from repro.cpu.machine import Machine
from repro.errors import SimulationError
from repro.sched.thread_sched import ThreadScheduler
from repro.sim.engine import Simulator
from repro.sim.trace import RecordingTracer
from repro.threads.program import (Acquire, Compute, CtEnd, CtStart, Load,
                                   OpDone, Release, Scan, Store, YieldCore)
from repro.threads.sync import SpinLock

from tests.helpers import tiny_spec


def make_sim(**spec_overrides):
    machine = Machine(tiny_spec(**spec_overrides))
    return Simulator(machine, ThreadScheduler())


class TestBasics:
    def test_compute_advances_core_clock(self):
        sim = make_sim()
        def program():
            yield Compute(100)
            yield Compute(50)
        sim.spawn(program(), core_id=0)
        sim.run(max_steps=10)
        assert sim.machine.cores[0].time == 150
        assert sim.machine.cores[0].counters.busy_cycles == 150

    def test_thread_completes(self):
        sim = make_sim()
        def program():
            yield Compute(1)
        thread = sim.spawn(program(), core_id=0)
        sim.run(until=1000)
        assert thread.done
        assert thread.finished_at == 1

    def test_run_needs_stop_condition(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.run()

    def test_load_and_store_charge_memory_latency(self):
        sim = make_sim()
        def program():
            yield Load(0)
            yield Store(0)
        sim.spawn(program(), core_id=0)
        sim.run(until=100_000)
        core = sim.machine.cores[0]
        assert core.time >= sim.machine.spec.latency.dram_base
        assert core.counters.stores == 1

    def test_scan_executes_in_one_step(self):
        sim = make_sim()
        def program():
            yield Scan(0, 64 * 6)
        sim.spawn(program(), core_id=0)
        result = sim.run(until=1_000_000)
        assert sim.machine.memory.counters[0].loads == 6
        assert result.steps == 1

    def test_round_robin_placement(self):
        sim = make_sim()
        def program():
            yield Compute(1)
        threads = [sim.spawn(program()) for _ in range(6)]
        homes = [t.home_core for t in threads]
        assert homes == [0, 1, 2, 3, 0, 1]

    def test_spawn_rejects_bad_core(self):
        sim = make_sim()
        def program():
            yield Compute(1)
        with pytest.raises(SimulationError):
            sim.spawn(program(), core_id=99)

    def test_until_pauses_and_resumes(self):
        sim = make_sim()
        def program():
            while True:
                yield Compute(100)
        sim.spawn(program(), core_id=0)
        sim.run(until=1000)
        t_mid = sim.machine.cores[0].time
        assert t_mid <= 1100
        sim.run(until=2000)
        assert sim.machine.cores[0].time > t_mid

    def test_max_ops_counts_this_call(self):
        sim = make_sim()
        def program():
            while True:
                yield CtStart(_obj())
                yield CtEnd()
                yield Compute(10)
        sim.spawn(program(), core_id=0)
        sim.run(max_ops=5)
        assert sim.total_ops >= 5
        before = sim.total_ops
        sim.run(max_ops=3)
        assert sim.total_ops >= before + 3

    def test_opdone_counts_operations(self):
        sim = make_sim()
        def program():
            for _ in range(4):
                yield Compute(1)
                yield OpDone()
        sim.spawn(program(), core_id=0)
        sim.run(until=10_000)
        assert sim.total_ops == 4

    def test_unknown_item_rejected(self):
        sim = make_sim()
        def program():
            yield "banana"
        sim.spawn(program(), core_id=0)
        with pytest.raises(SimulationError):
            sim.run(until=100)


def _obj():
    from repro.core.object_table import CtObject
    return CtObject("o", 0, 64)


class TestCooperativeScheduling:
    def test_yield_core_rotates_threads(self):
        sim = make_sim()
        order = []
        def program(tag):
            for _ in range(2):
                order.append(tag)
                yield Compute(10)
                yield YieldCore()
        sim.spawn(program("a"), core_id=0)
        sim.spawn(program("b"), core_id=0)
        sim.run(until=10_000)
        assert order == ["a", "b", "a", "b"]

    def test_threads_on_one_core_serialize(self):
        sim = make_sim()
        def program():
            yield Compute(100)
        sim.spawn(program(), core_id=0)
        sim.spawn(program(), core_id=0)
        sim.run(until=10_000)
        assert sim.machine.cores[0].time == 200

    def test_threads_on_two_cores_run_in_parallel(self):
        sim = make_sim()
        def program():
            yield Compute(100)
        sim.spawn(program(), core_id=0)
        sim.spawn(program(), core_id=1)
        sim.run(until=10_000)
        assert sim.machine.cores[0].time == 100
        assert sim.machine.cores[1].time == 100


class TestLocks:
    def test_uncontended_acquire_succeeds_immediately(self):
        sim = make_sim()
        lock = SpinLock.allocate(sim.machine.address_space, "l")
        def program():
            yield Acquire(lock)
            yield Compute(10)
            yield Release(lock)
        sim.spawn(program(), core_id=0)
        sim.run(until=100_000)
        assert not lock.held
        assert lock.acquires == 1
        assert sim.machine.memory.counters[0].lock_spins == 0

    def test_contended_lock_spins_then_hands_over(self):
        sim = make_sim()
        lock = SpinLock.allocate(sim.machine.address_space, "l")
        holds = []
        def program(tag):
            yield Acquire(lock)
            holds.append(tag)
            yield Compute(500)
            yield Release(lock)
        sim.spawn(program("a"), core_id=0)
        sim.spawn(program("b"), core_id=1)
        sim.run(until=1_000_000)
        assert sorted(holds) == ["a", "b"]
        counters = sim.machine.memory.counters
        assert counters[0].lock_spins + counters[1].lock_spins > 0

    def test_lock_is_mutual_exclusion(self):
        """No two threads are ever inside the critical section at once."""
        sim = make_sim()
        lock = SpinLock.allocate(sim.machine.address_space, "l")
        inside = [0]
        max_inside = [0]
        def program():
            for _ in range(5):
                yield Acquire(lock)
                inside[0] += 1
                max_inside[0] = max(max_inside[0], inside[0])
                yield Compute(100)
                inside[0] -= 1
                yield Release(lock)
        for core in range(4):
            sim.spawn(program(), core_id=core)
        sim.run(until=5_000_000)
        assert max_inside[0] == 1
        assert all(t.done for t in sim.threads)


class TestMigration:
    class RedirectingScheduler(ThreadScheduler):
        """Sends every operation to core 3."""
        name = "redirect"
        def on_ct_start(self, thread, obj, core, now):
            return 3

    def test_ct_start_migrates_thread(self):
        machine = Machine(tiny_spec())
        sim = Simulator(machine, self.RedirectingScheduler())
        def program():
            yield CtStart(_obj())
            yield Compute(10)
            yield CtEnd()
        thread = sim.spawn(program(), core_id=0)
        sim.run(until=1_000_000)
        assert thread.done
        assert thread.migrations == 1
        assert machine.cores[3].counters.migrations_in == 1
        assert machine.cores[0].counters.migrations_out == 1
        assert machine.cores[3].counters.ops_completed == 1

    def test_migration_charges_flight_time(self):
        machine = Machine(tiny_spec(migration_cost=500))
        sim = Simulator(machine, self.RedirectingScheduler())
        def program():
            yield CtStart(_obj())
            yield CtEnd()
        sim.spawn(program(), core_id=0)
        sim.run(until=1_000_000)
        # The op completed on core 3 no earlier than the flight time.
        assert machine.cores[3].time >= 500

    def test_poll_interval_quantises_arrival(self):
        machine = Machine(tiny_spec(migration_cost=500, poll_interval=300))
        sim = Simulator(machine, self.RedirectingScheduler())
        def program():
            yield CtStart(_obj())
            yield CtEnd()
        sim.spawn(program(), core_id=0)
        sim.run(until=1_000_000)
        # Arrival rounded up to the 600-cycle poll tick.
        assert machine.cores[3].time >= 600

    def test_origin_core_continues_with_other_threads(self):
        machine = Machine(tiny_spec())
        sim = Simulator(machine, self.RedirectingScheduler())
        def migrator():
            yield CtStart(_obj())
            yield Compute(1000)
            yield CtEnd()
        def worker():
            yield Compute(77)
        sim.spawn(migrator(), core_id=0)
        sim.spawn(worker(), core_id=0)
        sim.run(until=1_000_000)
        # The worker ran on core 0 while the migrator was away.
        assert machine.cores[0].counters.busy_cycles >= 77

    def test_invalid_migration_target_is_error(self):
        class BadScheduler(ThreadScheduler):
            def on_ct_start(self, thread, obj, core, now):
                return 42
        machine = Machine(tiny_spec())
        sim = Simulator(machine, BadScheduler())
        def program():
            yield CtStart(_obj())
            yield CtEnd()
        sim.spawn(program(), core_id=0)
        with pytest.raises(SimulationError):
            sim.run(until=1000)


class TestIdleAccounting:
    def test_idle_core_accumulates_idle_cycles(self):
        sim = make_sim()
        def program():
            yield Compute(100)
        sim.spawn(program(), core_id=0)
        sim.run(until=1000)
        # Core 1 never had work: idle for the whole horizon.
        assert sim.machine.cores[1].counters.idle_cycles == 1000
        # Core 0 idled after its thread finished.
        assert sim.machine.cores[0].counters.idle_cycles == 900

    def test_wakeup_ends_idle_period(self):
        machine = Machine(tiny_spec())

        class LateRedirect(ThreadScheduler):
            def on_ct_start(self, thread, obj, core, now):
                return 1
        sim = Simulator(machine, LateRedirect())
        def program():
            yield Compute(500)
            yield CtStart(_obj())
            yield Compute(100)
            yield CtEnd()
        sim.spawn(program(), core_id=0)
        sim.run(until=10_000)
        # Core 1 was idle until the migration arrived (500 + flight).
        idle = machine.cores[1].counters.idle_cycles
        assert idle >= 500 + machine.spec.migration_cost


class TestDeterminismAndTracing:
    def test_identical_runs_produce_identical_results(self):
        def build():
            sim = make_sim()
            from repro.sim.rng import make_rng
            def program(core_id):
                rng = make_rng(1, core_id)
                for _ in range(50):
                    yield Compute(rng.randrange(1, 100))
                    yield Load(rng.randrange(0, 4096))
            for core in range(4):
                sim.spawn(program(core), core_id=core)
            sim.run(until=100_000)
            return [core.time for core in sim.machine.cores], \
                sim.machine.memory.counters[0].as_dict()
        assert build() == build()

    def test_tracer_records_lifecycle(self):
        tracer = RecordingTracer()
        machine = Machine(tiny_spec())
        sim = Simulator(machine, ThreadScheduler(), tracer=tracer)
        def program():
            yield Compute(1)
        sim.spawn(program(), core_id=0)
        sim.run(until=100)
        kinds = tracer.counts()
        assert kinds["spawn"] == 1
        assert kinds["done"] == 1

    def test_tracer_records_migrations(self):
        tracer = RecordingTracer()
        machine = Machine(tiny_spec())
        sim = Simulator(machine, TestMigration.RedirectingScheduler(),
                        tracer=tracer)
        def program():
            yield CtStart(_obj())
            yield CtEnd()
        sim.spawn(program(), core_id=0)
        sim.run(until=10_000)
        assert len(tracer.of_kind("migrate")) == 1
        assert len(tracer.of_kind("arrive")) == 1


class TestRunResult:
    def test_result_reports_ops_and_throughput(self):
        sim = make_sim()
        def program():
            for _ in range(10):
                yield Compute(100)
                yield OpDone()
        sim.spawn(program(), core_id=0)
        result = sim.run(until=2000)
        assert result.ops > 0
        assert result.throughput_ops_per_sec > 0
        assert result.kops_per_sec == result.throughput_ops_per_sec / 1e3
        assert "RunResult" in str(result)

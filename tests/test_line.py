"""Tests for repro.mem.line (address arithmetic)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.mem.line import (align_up, iter_lines, line_addr, line_of,
                            line_range, lines_spanned)


class TestLineOf:
    def test_first_line(self):
        assert line_of(0, 64) == 0
        assert line_of(63, 64) == 0

    def test_second_line(self):
        assert line_of(64, 64) == 1

    def test_negative_address_rejected(self):
        with pytest.raises(AddressError):
            line_of(-1, 64)


class TestLinesSpanned:
    def test_within_one_line(self):
        assert lines_spanned(0, 64, 64) == 1
        assert lines_spanned(10, 20, 64) == 1

    def test_straddles_boundary(self):
        assert lines_spanned(60, 8, 64) == 2

    def test_exact_multiple(self):
        assert lines_spanned(0, 256, 64) == 4

    def test_zero_bytes(self):
        assert lines_spanned(100, 0, 64) == 0


class TestLineRange:
    def test_range_and_iter_agree(self):
        first, count = line_range(100, 300, 64)
        assert list(iter_lines(100, 300, 64)) == \
            list(range(first, first + count))


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(128, 64) == 128

    def test_rounds_up(self):
        assert align_up(129, 64) == 192

    def test_zero(self):
        assert align_up(0, 64) == 0


@given(addr=st.integers(min_value=0, max_value=1 << 40),
       nbytes=st.integers(min_value=1, max_value=1 << 20),
       shift=st.sampled_from([6, 7, 9]))
def test_spanned_covers_every_byte(addr, nbytes, shift):
    """Every byte in [addr, addr+nbytes) falls in a spanned line."""
    line_size = 1 << shift
    first, count = line_range(addr, nbytes, line_size)
    assert line_addr(first, line_size) <= addr
    last_byte = addr + nbytes - 1
    assert line_addr(first + count - 1, line_size) + line_size > last_byte
    # Tight: one fewer line would not cover the range.
    assert count == (last_byte // line_size) - (addr // line_size) + 1


@given(addr=st.integers(min_value=0, max_value=1 << 30),
       alignment=st.sampled_from([8, 64, 4096]))
def test_align_up_properties(addr, alignment):
    aligned = align_up(addr, alignment)
    assert aligned >= addr
    assert aligned % alignment == 0
    assert aligned - addr < alignment

"""Tests for repro.workloads.trace (record/replay)."""

import pytest

from repro.bench.harness import SCHEDULERS
from repro.cpu.machine import Machine
from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.workloads.popularity import ZipfPopularity
from repro.workloads.trace import OperationTrace, TraceReplayWorkload

from tests.helpers import tiny_spec


class TestOperationTrace:
    def test_synthesise_shape(self):
        trace = OperationTrace.synthesise(4, 10, n_dirs=8,
                                          files_per_dir=16)
        assert len(trace.lanes) == 4
        assert all(len(lane) == 10 for lane in trace.lanes)
        assert trace.total_ops == 40

    def test_synthesise_deterministic(self):
        a = OperationTrace.synthesise(2, 5, 4, 8, seed=3)
        b = OperationTrace.synthesise(2, 5, 4, 8, seed=3)
        assert a.lanes == b.lanes

    def test_synthesise_respects_popularity(self):
        pop = ZipfPopularity(16, s=2.0, seed=0)
        trace = OperationTrace.synthesise(2, 200, 16, 8, popularity=pop)
        picked = [d for lane in trace.lanes for d, _ in lane]
        top = max(set(picked), key=picked.count)
        assert picked.count(top) > 200 * 2 / 16

    def test_roundtrip_through_text(self):
        trace = OperationTrace.synthesise(3, 7, 5, 9, seed=1)
        restored = OperationTrace.loads(trace.dumps())
        assert restored.lanes == trace.lanes
        assert restored.n_dirs == 5

    def test_load_rejects_garbage(self):
        with pytest.raises(ConfigError):
            OperationTrace.loads("not a trace\n")

    def test_validate_rejects_out_of_range_ops(self):
        trace = OperationTrace(2, 2, [[(5, 0)]])
        with pytest.raises(ConfigError):
            trace.validate()

    def test_empty_lane_roundtrip(self):
        trace = OperationTrace(2, 2, [[], [(0, 1)]])
        assert OperationTrace.loads(trace.dumps()).lanes == trace.lanes


class TestReplay:
    def _replay(self, scheduler_name, trace):
        machine = Machine(tiny_spec())
        sim = Simulator(machine, SCHEDULERS[scheduler_name]())
        workload = TraceReplayWorkload(machine, trace)
        workload.spawn_all(sim)
        sim.run(until=50_000_000)
        return sim, workload

    def test_replay_executes_every_op(self):
        trace = OperationTrace.synthesise(8, 20, 8, 32, seed=2)
        sim, workload = self._replay("thread", trace)
        assert all(thread.done for thread in sim.threads)
        assert sim.total_ops == trace.total_ops

    def test_same_work_under_both_schedulers(self):
        trace = OperationTrace.synthesise(8, 25, 16, 32, seed=4)
        sim_a, wl_a = self._replay("thread", trace)
        sim_b, wl_b = self._replay("coretime", trace)
        assert sim_a.total_ops == sim_b.total_ops == trace.total_ops
        # Both replays are complete, so completion time is well-defined.
        assert wl_a.completion_cycles(sim_a) > 0
        assert wl_b.completion_cycles(sim_b) > 0

    def test_unfinished_replay_rejected(self):
        trace = OperationTrace.synthesise(2, 50, 8, 32, seed=5)
        machine = Machine(tiny_spec())
        sim = Simulator(machine, SCHEDULERS["thread"]())
        workload = TraceReplayWorkload(machine, trace)
        workload.spawn_all(sim)
        sim.run(until=100)   # nowhere near done
        with pytest.raises(ConfigError):
            workload.completion_cycles(sim)
